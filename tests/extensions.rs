//! Integration tests for the extension features (the paper's stated future
//! work): energy-budgeted mapping, and reliability approximation of general
//! (non series-parallel) RBDs without routing operations.

use pipelined_rt::algorithms::{
    run_energy_aware_heuristic, run_heuristic, EnergyAwareConfig, HeuristicConfig,
    IntervalHeuristic,
};
use pipelined_rt::model::{energy, Platform, PowerModel};
use pipelined_rt::rbd::{approx, exact as rbd_exact, mapping_rbd};
use pipelined_rt::workload::ChainSpec;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn base_config() -> HeuristicConfig {
    HeuristicConfig {
        interval_heuristic: IntervalHeuristic::MinPeriod,
        period_bound: 200.0,
        latency_bound: 600.0,
    }
}

/// Bounds loose enough to always be feasible for the given chain: the period
/// accommodates the largest task and the latency the whole chain plus every
/// boundary communication.
fn relative_config(chain: &pipelined_rt::model::TaskChain) -> HeuristicConfig {
    HeuristicConfig {
        interval_heuristic: IntervalHeuristic::MinPeriod,
        period_bound: chain.max_task_work() * 2.0,
        latency_bound: chain.total_work() * 1.5,
    }
}

#[test]
fn energy_budget_trades_reliability_for_power_on_generated_instances() {
    for seed in 0..3 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let chain = ChainSpec::paper_with_tasks(8).generate(&mut rng);
        let platform = Platform::homogeneous(8, 1.0, 1e-4, 1.0, 1e-5, 3).unwrap();
        let model = PowerModel::cubic();
        let config = relative_config(&chain);

        let unbudgeted = run_heuristic(&chain, &platform, &config).unwrap();
        let full = energy::energy_per_dataset(&chain, &platform, &unbudgeted.mapping, &model);

        // The cheapest possible mapping keeps one unit-speed replica per
        // interval, i.e. exactly the total work under the cubic model — any
        // budget at or above that is feasible.
        let skeleton = chain.total_work();
        let budgets = [skeleton, (skeleton + full) / 2.0, full];
        let mut previous_reliability = 0.0;
        let mut previous_energy = 0.0;
        for budget in budgets {
            let solution = run_energy_aware_heuristic(
                &chain,
                &platform,
                &EnergyAwareConfig {
                    base: config,
                    power_model: model,
                    energy_budget: budget,
                },
            )
            .unwrap();
            // Budget respected, bounds respected.
            assert!(solution.energy.energy_per_dataset <= budget + 1e-9);
            assert!(solution
                .evaluation
                .meets(config.period_bound, config.latency_bound));
            // More budget => at least as reliable and at least as much energy spent.
            assert!(solution.evaluation.reliability >= previous_reliability - 1e-15);
            assert!(solution.energy.energy_per_dataset >= previous_energy - 1e-9);
            previous_reliability = solution.evaluation.reliability;
            previous_energy = solution.energy.energy_per_dataset;
        }
        // The full-budget solution recovers the unbudgeted mapping.
        let full_budget = run_energy_aware_heuristic(
            &chain,
            &platform,
            &EnergyAwareConfig {
                base: config,
                power_model: model,
                energy_budget: full,
            },
        )
        .unwrap();
        assert_eq!(full_budget.mapping, unbudgeted.mapping);
    }
}

#[test]
fn general_rbd_bounds_and_monte_carlo_bracket_the_routing_model() {
    // Build a replicated mapping, derive its direct (non series-parallel) RBD
    // and check that: routing model <= exact(direct) and the Esary-Proschan
    // bounds bracket the exact value, with Monte-Carlo agreeing too.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let chain = ChainSpec::paper_with_tasks(6).generate(&mut rng);
    let platform = Platform::homogeneous(6, 1.0, 5e-4, 1.0, 2e-4, 2).unwrap();
    let solution = run_heuristic(&chain, &platform, &base_config()).unwrap();

    let direct = mapping_rbd::general_rbd(&chain, &platform, &solution.mapping);
    assert!(
        direct.num_blocks() <= 30,
        "test mapping must stay within exact-evaluation reach"
    );
    let exact = rbd_exact::factoring(&direct);
    let routed = mapping_rbd::routing_sp_expr(&chain, &platform, &solution.mapping).reliability();
    assert!(routed <= exact + 1e-12);

    let bounds = approx::esary_proschan_bounds(&direct);
    assert!(bounds.lower <= exact + 1e-12);
    assert!(exact <= bounds.upper + 1e-12);

    let mc = approx::monte_carlo_reliability(&direct, 100_000, 5);
    assert!((mc.estimate - exact).abs() < 3.0 * mc.confidence95 + 2e-3);
}
