//! Randomized property tests on the core invariants of the model, the RBD
//! substrate, the LP solver and the optimization algorithms.
//!
//! The original suite used `proptest`; the offline build cannot fetch it, so
//! the same properties run on a small hand-rolled harness: each property is
//! checked on [`CASES`] instances generated from a seeded ChaCha8 stream,
//! and failures report the case's seed for reproduction.

use pipelined_rt::algorithms::{
    algo_alloc, exhaustive_alloc, heur_l_partition, heur_p_partition,
    optimize_reliability_homogeneous, optimize_reliability_with_period_bound,
};
use pipelined_rt::lp::{solve_lp, ConstraintOp, LpStatus, Objective, Problem};
use pipelined_rt::model::{
    reliability, timing, Interval, IntervalPartition, MappedInterval, Mapping, MappingEvaluation,
    Platform, TaskChain,
};
use pipelined_rt::rbd::mapping_rbd;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of random cases per property (matches the proptest configuration
/// previously used).
const CASES: u64 = 64;

/// Runs `check` on `CASES` independently seeded generators; a failing case
/// re-panics with the seed that reproduces it.
fn for_random_cases(property: &str, mut check: impl FnMut(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let seed = 0x5eed_0000 + case;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            check(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property `{property}` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A random chain of 2..=7 tasks with works in [1, 100] and outputs in
/// [0, 10].
fn random_chain(rng: &mut ChaCha8Rng) -> TaskChain {
    let n = rng.gen_range(2usize..=7);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(0.0..10.0)))
        .collect();
    TaskChain::from_pairs(&pairs).expect("valid generated chain")
}

/// A homogeneous platform with 2..=6 processors and noticeable failure
/// rates.
fn random_hom_platform(rng: &mut ChaCha8Rng) -> Platform {
    let p = rng.gen_range(2usize..=6);
    let speed = rng.gen_range(1.0..4.0);
    let lambda = rng.gen_range(1e-5..1e-2);
    let lambda_link = rng.gen_range(1e-6..1e-3);
    let k = rng.gen_range(1usize..=3);
    Platform::homogeneous(p, speed, lambda, 1.0, lambda_link, k).expect("valid platform")
}

/// A heterogeneous platform with 2..=6 processors.
fn random_het_platform(rng: &mut ChaCha8Rng) -> Platform {
    let p = rng.gen_range(2usize..=6);
    let processors = (0..p)
        .map(|_| {
            pipelined_rt::model::Processor::new(rng.gen_range(1.0..10.0), rng.gen_range(1e-5..1e-2))
        })
        .collect();
    Platform::new(processors, 1.0, 1e-4, 3).expect("valid platform")
}

/// A valid random mapping of `chain` on `platform`: random contiguous
/// partition, processors dealt round-robin.
fn random_mapping(rng: &mut ChaCha8Rng, chain: &TaskChain, platform: &Platform) -> Mapping {
    let n = chain.len();
    let p = platform.num_processors();
    let m = rng.gen_range(1usize..=n.min(p));

    let mut cuts: Vec<usize> = Vec::new();
    while cuts.len() < m - 1 {
        let cut = rng.gen_range(0usize..n - 1);
        if !cuts.contains(&cut) {
            cuts.push(cut);
        }
    }
    cuts.sort_unstable();
    let partition = IntervalPartition::from_cut_points(&cuts, n).expect("valid cuts");

    // Deal the processors round-robin, at most K per interval.
    let k = platform.max_replication();
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); m];
    for processor in 0..p {
        let slot = processor % m;
        if sets[slot].len() < k {
            sets[slot].push(processor);
        }
    }
    Mapping::from_partition(&partition, sets, chain, platform)
        .expect("round-robin assignment is structurally valid")
}

/// Reliability is a probability and every latency/period value is positive,
/// with worst cases dominating expected values and the latency dominating
/// the period.
#[test]
fn evaluation_invariants() {
    for_random_cases("evaluation_invariants", |rng| {
        let chain = random_chain(rng);
        let platform = random_het_platform(rng);
        let mapping = random_mapping(rng, &chain, &platform);
        let eval = MappingEvaluation::evaluate(&chain, &platform, &mapping);
        assert!(eval.reliability > 0.0 && eval.reliability <= 1.0);
        assert!(eval.expected_latency > 0.0);
        assert!(eval.expected_period > 0.0);
        assert!(eval.worst_case_latency >= eval.expected_latency - 1e-9);
        assert!(eval.worst_case_period >= eval.expected_period - 1e-9);
        assert!(eval.worst_case_latency >= eval.worst_case_period - 1e-9);
        assert!(eval.expected_latency >= eval.expected_period - 1e-9);
    });
}

/// Eq. (9) equals the series-parallel routing RBD evaluation, for any
/// mapping on any platform.
#[test]
fn closed_form_reliability_equals_routing_rbd() {
    for_random_cases("closed_form_reliability_equals_routing_rbd", |rng| {
        let chain = random_chain(rng);
        let platform = random_het_platform(rng);
        let mapping = random_mapping(rng, &chain, &platform);
        let closed_form = reliability::mapping_reliability(&chain, &platform, &mapping);
        let expr = mapping_rbd::routing_sp_expr(&chain, &platform, &mapping);
        assert!((closed_form - expr.reliability()).abs() < 1e-12);
    });
}

/// Adding one more replica to any interval never decreases the mapping
/// reliability.
#[test]
fn replication_is_monotone() {
    for_random_cases("replication_is_monotone", |rng| {
        let chain = random_chain(rng);
        let platform = random_hom_platform(rng);
        let mapping = random_mapping(rng, &chain, &platform);
        let used: usize = mapping.processors_used();
        if used >= platform.num_processors() {
            return; // no spare processor: property vacuous for this case
        }
        let spare = platform.num_processors() - 1; // highest index is free iff used < p
        let before = reliability::mapping_reliability(&chain, &platform, &mapping);

        // Add the spare processor to each interval that still has room.
        for j in 0..mapping.num_intervals() {
            if mapping.interval(j).replication() >= platform.max_replication() {
                continue;
            }
            let mut intervals: Vec<MappedInterval> = mapping.intervals().to_vec();
            if intervals[j].processors.contains(&spare) {
                continue;
            }
            intervals[j].processors.push(spare);
            let augmented = Mapping::new(intervals, &chain, &platform).expect("still valid");
            let after = reliability::mapping_reliability(&chain, &platform, &augmented);
            assert!(after >= before - 1e-15);
        }
    });
}

/// Algo-Alloc (greedy) matches the exhaustive allocation on homogeneous
/// platforms (Theorem 4).
#[test]
fn algo_alloc_is_optimal() {
    for_random_cases("algo_alloc_is_optimal", |rng| {
        let chain = random_chain(rng);
        let platform = random_hom_platform(rng);
        let n = chain.len();
        let p = platform.num_processors();
        let m = rng.gen_range(1usize..=n.min(p));
        // Evenly spread cut points.
        let cuts: Vec<usize> = (1..m).map(|j| j * n / m - 1).collect();
        let partition = IntervalPartition::from_cut_points(&cuts, n).expect("valid cuts");
        if partition.len() > p {
            return;
        }

        let greedy = algo_alloc(&chain, &platform, &partition).expect("enough processors");
        let best = exhaustive_alloc(&chain, &platform, &partition).expect("enough processors");
        let rg = reliability::mapping_reliability(&chain, &platform, &greedy);
        let rb = reliability::mapping_reliability(&chain, &platform, &best);
        assert!((rg - rb).abs() < 1e-13);
    });
}

/// Algorithm 2 under a very large period bound coincides with Algorithm 1,
/// and its reliability is monotone in the bound.
#[test]
fn algorithm2_consistency() {
    for_random_cases("algorithm2_consistency", |rng| {
        let chain = random_chain(rng);
        let platform = random_hom_platform(rng);
        let unconstrained = optimize_reliability_homogeneous(&chain, &platform).unwrap();
        let loose = optimize_reliability_with_period_bound(&chain, &platform, 1e12).unwrap();
        assert!((unconstrained.reliability - loose.reliability).abs() < 1e-12);

        let tight_bound = chain.max_task_work() / platform.speed(0)
            + chain.max_boundary_output() / platform.bandwidth();
        if let Ok(tight) = optimize_reliability_with_period_bound(&chain, &platform, tight_bound) {
            assert!(tight.reliability <= loose.reliability + 1e-12);
            let eval = MappingEvaluation::evaluate(&chain, &platform, &tight.mapping);
            assert!(eval.worst_case_period <= tight_bound + 1e-9);
        }
    });
}

/// Both interval heuristics always produce valid partitions with the
/// requested number of intervals, and Heur-P's bottleneck never exceeds
/// Heur-L's.
#[test]
fn interval_heuristics_produce_valid_partitions() {
    for_random_cases("interval_heuristics_produce_valid_partitions", |rng| {
        let chain = random_chain(rng);
        let n = chain.len();
        let m = rng.gen_range(1usize..=n);
        let heur_l = heur_l_partition(&chain, m);
        let heur_p = heur_p_partition(&chain, m);
        assert_eq!(heur_l.len(), m);
        assert_eq!(heur_p.len(), m);
        assert_eq!(heur_l.chain_len(), n);

        let bottleneck = |partition: &IntervalPartition| {
            partition
                .intervals()
                .iter()
                .map(|itv| itv.work(&chain).max(itv.output_size(&chain)))
                .fold(0.0f64, f64::max)
        };
        assert!(bottleneck(&heur_p) <= bottleneck(&heur_l) + 1e-9);

        // Heur-L minimizes the total boundary communication by construction.
        assert!(
            heur_l.total_boundary_output(&chain) <= heur_p.total_boundary_output(&chain) + 1e-9
        );
    });
}

/// The per-interval period requirement is consistent with the worst-case
/// period of a single-interval mapping.
#[test]
fn interval_period_requirement_matches_evaluation() {
    for_random_cases("interval_period_requirement_matches_evaluation", |rng| {
        let chain = random_chain(rng);
        let platform = random_hom_platform(rng);
        let whole = Interval {
            first: 0,
            last: chain.len() - 1,
        };
        let requirement =
            timing::interval_period_requirement(&chain, &platform, whole, platform.speed(0));
        let mapping =
            Mapping::new(vec![MappedInterval::new(whole, vec![0])], &chain, &platform).unwrap();
        let eval = MappingEvaluation::evaluate(&chain, &platform, &mapping);
        assert!((requirement - eval.worst_case_period).abs() < 1e-9);
    });
}

/// The simplex solution of a random feasible LP is feasible and no worse
/// than any sampled feasible point (local optimality sanity check).
#[test]
fn lp_solutions_are_feasible_and_dominant() {
    for_random_cases("lp_solutions_are_feasible_and_dominant", |rng| {
        let coeffs: Vec<f64> = (0..3).map(|_| rng.gen_range(0.1..5.0)).collect();
        let bounds: Vec<f64> = (0..3).map(|_| rng.gen_range(1.0..20.0)).collect();

        let mut problem = Problem::new(Objective::Maximize, coeffs.clone());
        // x_i <= bound_i and sum x_i <= half the total bound.
        for (i, &b) in bounds.iter().enumerate() {
            problem.add_sparse_constraint(&[(i, 1.0)], ConstraintOp::Le, b);
        }
        let total: f64 = bounds.iter().sum();
        problem.add_constraint(vec![1.0; 3], ConstraintOp::Le, total / 2.0);

        let solution = solve_lp(&problem);
        assert_eq!(solution.status, LpStatus::Optimal);
        assert!(problem.is_feasible(&solution.x, 1e-6));
        // The origin and the per-axis extreme points never beat the optimum.
        assert!(solution.objective >= -1e-9);
        for i in 0..3 {
            let mut x = vec![0.0; 3];
            x[i] = bounds[i].min(total / 2.0);
            let value = problem.objective_value(&x);
            assert!(solution.objective >= value - 1e-6);
        }
    });
}
