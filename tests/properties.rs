//! Property-based tests (proptest) on the core invariants of the model, the
//! RBD substrate, the LP solver and the optimization algorithms.

use pipelined_rt::algorithms::{
    algo_alloc, exhaustive_alloc, heur_l_partition, heur_p_partition,
    optimize_reliability_homogeneous, optimize_reliability_with_period_bound,
};
use pipelined_rt::lp::{solve_lp, ConstraintOp, LpStatus, Objective, Problem};
use pipelined_rt::model::{
    reliability, timing, Interval, IntervalPartition, MappedInterval, Mapping, MappingEvaluation,
    Platform, TaskChain,
};
use pipelined_rt::rbd::mapping_rbd;
use proptest::prelude::*;

/// Strategy: a random chain of 2..=7 tasks with works in [1, 100] and outputs
/// in [0, 10].
fn chain_strategy() -> impl Strategy<Value = TaskChain> {
    prop::collection::vec((1.0f64..100.0, 0.0f64..10.0), 2..=7)
        .prop_map(|pairs| TaskChain::from_pairs(&pairs).expect("valid generated chain"))
}

/// Strategy: a homogeneous platform with 2..=6 processors and noticeable
/// failure rates.
fn hom_platform_strategy() -> impl Strategy<Value = Platform> {
    (2usize..=6, 1.0f64..4.0, 1e-5f64..1e-2, 1e-6f64..1e-3, 1usize..=3).prop_map(
        |(p, speed, lambda, lambda_link, k)| {
            Platform::homogeneous(p, speed, lambda, 1.0, lambda_link, k).expect("valid platform")
        },
    )
}

/// Strategy: a heterogeneous platform with 2..=6 processors.
fn het_platform_strategy() -> impl Strategy<Value = Platform> {
    prop::collection::vec((1.0f64..10.0, 1e-5f64..1e-2), 2..=6).prop_map(|procs| {
        let processors =
            procs.iter().map(|&(s, l)| pipelined_rt::model::Processor::new(s, l)).collect();
        Platform::new(processors, 1.0, 1e-4, 3).expect("valid platform")
    })
}

/// Builds a valid random mapping of `chain` on `platform`: random contiguous
/// partition, processors dealt round-robin.
fn mapping_strategy(
    chain: TaskChain,
    platform: Platform,
) -> impl Strategy<Value = (TaskChain, Platform, Mapping)> {
    let n = chain.len();
    let p = platform.num_processors();
    let max_intervals = n.min(p);
    (1..=max_intervals, any::<u64>()).prop_map(move |(m, shuffle_seed)| {
        // Deterministic pseudo-random cut points derived from the seed.
        let mut cuts: Vec<usize> = Vec::new();
        let mut value = shuffle_seed;
        while cuts.len() < m - 1 {
            value = value.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let cut = (value >> 33) as usize % (n - 1);
            if !cuts.contains(&cut) {
                cuts.push(cut);
            }
        }
        cuts.sort_unstable();
        let partition = IntervalPartition::from_cut_points(&cuts, n).expect("valid cuts");

        // Deal the processors round-robin, at most K per interval.
        let k = platform.max_replication();
        let mut sets: Vec<Vec<usize>> = vec![Vec::new(); m];
        for processor in 0..p {
            let slot = processor % m;
            if sets[slot].len() < k {
                sets[slot].push(processor);
            }
        }
        let mapping = Mapping::from_partition(&partition, sets, &chain, &platform)
            .expect("round-robin assignment is structurally valid");
        (chain.clone(), platform.clone(), mapping)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reliability is a probability and every latency/period value is
    /// positive, with worst cases dominating expected values and the latency
    /// dominating the period.
    #[test]
    fn evaluation_invariants(
        (chain, platform, mapping) in (chain_strategy(), het_platform_strategy())
            .prop_flat_map(|(c, p)| mapping_strategy(c, p))
    ) {
        let eval = MappingEvaluation::evaluate(&chain, &platform, &mapping);
        prop_assert!(eval.reliability > 0.0 && eval.reliability <= 1.0);
        prop_assert!(eval.expected_latency > 0.0);
        prop_assert!(eval.expected_period > 0.0);
        prop_assert!(eval.worst_case_latency >= eval.expected_latency - 1e-9);
        prop_assert!(eval.worst_case_period >= eval.expected_period - 1e-9);
        prop_assert!(eval.worst_case_latency >= eval.worst_case_period - 1e-9);
        prop_assert!(eval.expected_latency >= eval.expected_period - 1e-9);
    }

    /// Eq. (9) equals the series-parallel routing RBD evaluation, for any
    /// mapping on any platform.
    #[test]
    fn closed_form_reliability_equals_routing_rbd(
        (chain, platform, mapping) in (chain_strategy(), het_platform_strategy())
            .prop_flat_map(|(c, p)| mapping_strategy(c, p))
    ) {
        let closed_form = reliability::mapping_reliability(&chain, &platform, &mapping);
        let expr = mapping_rbd::routing_sp_expr(&chain, &platform, &mapping);
        prop_assert!((closed_form - expr.reliability()).abs() < 1e-12);
    }

    /// Adding one more replica to any interval never decreases the mapping
    /// reliability.
    #[test]
    fn replication_is_monotone(
        (chain, platform, mapping) in (chain_strategy(), hom_platform_strategy())
            .prop_flat_map(|(c, p)| mapping_strategy(c, p))
    ) {
        let used: usize = mapping.processors_used();
        prop_assume!(used < platform.num_processors());
        let spare = platform.num_processors() - 1; // highest index is free iff used < p
        let before = reliability::mapping_reliability(&chain, &platform, &mapping);

        // Add the spare processor to each interval that still has room.
        for j in 0..mapping.num_intervals() {
            if mapping.interval(j).replication() >= platform.max_replication() {
                continue;
            }
            let mut intervals: Vec<MappedInterval> = mapping.intervals().to_vec();
            if intervals[j].processors.contains(&spare) {
                continue;
            }
            intervals[j].processors.push(spare);
            let augmented = Mapping::new(intervals, &chain, &platform).expect("still valid");
            let after = reliability::mapping_reliability(&chain, &platform, &augmented);
            prop_assert!(after >= before - 1e-15);
        }
    }

    /// Algo-Alloc (greedy) matches the exhaustive allocation on homogeneous
    /// platforms (Theorem 4).
    #[test]
    fn algo_alloc_is_optimal(
        chain in chain_strategy(),
        platform in hom_platform_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let n = chain.len();
        let p = platform.num_processors();
        let m = 1 + (cut_seed as usize % n.min(p));
        // Evenly spread cut points.
        let cuts: Vec<usize> = (1..m).map(|j| j * n / m - 1).collect();
        let partition = IntervalPartition::from_cut_points(&cuts, n).expect("valid cuts");
        prop_assume!(partition.len() <= p);

        let greedy = algo_alloc(&chain, &platform, &partition).expect("enough processors");
        let best = exhaustive_alloc(&chain, &platform, &partition).expect("enough processors");
        let rg = reliability::mapping_reliability(&chain, &platform, &greedy);
        let rb = reliability::mapping_reliability(&chain, &platform, &best);
        prop_assert!((rg - rb).abs() < 1e-13);
    }

    /// Algorithm 2 under a very large period bound coincides with
    /// Algorithm 1, and its reliability is monotone in the bound.
    #[test]
    fn algorithm2_consistency(
        chain in chain_strategy(),
        platform in hom_platform_strategy(),
    ) {
        let unconstrained = optimize_reliability_homogeneous(&chain, &platform).unwrap();
        let loose = optimize_reliability_with_period_bound(&chain, &platform, 1e12).unwrap();
        prop_assert!((unconstrained.reliability - loose.reliability).abs() < 1e-12);

        let tight_bound = chain.max_task_work() / platform.speed(0)
            + chain.max_boundary_output() / platform.bandwidth();
        if let Ok(tight) = optimize_reliability_with_period_bound(&chain, &platform, tight_bound) {
            prop_assert!(tight.reliability <= loose.reliability + 1e-12);
            let eval = MappingEvaluation::evaluate(&chain, &platform, &tight.mapping);
            prop_assert!(eval.worst_case_period <= tight_bound + 1e-9);
        }
    }

    /// Both interval heuristics always produce valid partitions with the
    /// requested number of intervals, and Heur-P's bottleneck never exceeds
    /// Heur-L's.
    #[test]
    fn interval_heuristics_produce_valid_partitions(
        chain in chain_strategy(),
        m_seed in any::<u16>(),
    ) {
        let n = chain.len();
        let m = 1 + (m_seed as usize % n);
        let heur_l = heur_l_partition(&chain, m);
        let heur_p = heur_p_partition(&chain, m);
        prop_assert_eq!(heur_l.len(), m);
        prop_assert_eq!(heur_p.len(), m);
        prop_assert_eq!(heur_l.chain_len(), n);

        let bottleneck = |partition: &IntervalPartition| {
            partition
                .intervals()
                .iter()
                .map(|itv| itv.work(&chain).max(itv.output_size(&chain)))
                .fold(0.0f64, f64::max)
        };
        prop_assert!(bottleneck(&heur_p) <= bottleneck(&heur_l) + 1e-9);

        // Heur-L minimizes the total boundary communication by construction.
        prop_assert!(
            heur_l.total_boundary_output(&chain) <= heur_p.total_boundary_output(&chain) + 1e-9
        );
    }

    /// The per-interval period requirement is consistent with the worst-case
    /// period of a single-interval mapping.
    #[test]
    fn interval_period_requirement_matches_evaluation(
        chain in chain_strategy(),
        platform in hom_platform_strategy(),
    ) {
        let whole = Interval { first: 0, last: chain.len() - 1 };
        let requirement =
            timing::interval_period_requirement(&chain, &platform, whole, platform.speed(0));
        let mapping = Mapping::new(
            vec![MappedInterval::new(whole, vec![0])],
            &chain,
            &platform,
        )
        .unwrap();
        let eval = MappingEvaluation::evaluate(&chain, &platform, &mapping);
        prop_assert!((requirement - eval.worst_case_period).abs() < 1e-9);
    }

    /// The simplex solution of a random feasible LP is feasible and no worse
    /// than any sampled feasible point (local optimality sanity check).
    #[test]
    fn lp_solutions_are_feasible_and_dominant(
        coeffs in prop::collection::vec(0.1f64..5.0, 3),
        bounds in prop::collection::vec(1.0f64..20.0, 3),
    ) {
        let mut problem = Problem::new(Objective::Maximize, coeffs.clone());
        // x_i <= bound_i and sum x_i <= half the total bound.
        for (i, &b) in bounds.iter().enumerate() {
            problem.add_sparse_constraint(&[(i, 1.0)], ConstraintOp::Le, b);
        }
        let total: f64 = bounds.iter().sum();
        problem.add_constraint(vec![1.0; 3], ConstraintOp::Le, total / 2.0);

        let solution = solve_lp(&problem);
        prop_assert_eq!(solution.status, LpStatus::Optimal);
        prop_assert!(problem.is_feasible(&solution.x, 1e-6));
        // The origin and the per-axis extreme points never beat the optimum.
        prop_assert!(solution.objective >= -1e-9);
        for i in 0..3 {
            let mut x = vec![0.0; 3];
            x[i] = bounds[i].min(total / 2.0);
            let value = problem.objective_value(&x);
            prop_assert!(solution.objective >= value - 1e-6);
        }
    }
}
