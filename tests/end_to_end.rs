//! Cross-crate integration tests: generated workloads flow through the
//! algorithms, the evaluator, the RBD substrate and the simulator, and the
//! results stay mutually consistent.

use pipelined_rt::algorithms::{
    exact, optimize_reliability_homogeneous, optimize_reliability_with_period_bound, run_heuristic,
    HeuristicConfig, IntervalHeuristic,
};
use pipelined_rt::model::{MappingEvaluation, Platform, TaskChain};
use pipelined_rt::rbd::{exact as rbd_exact, mapping_rbd};
use pipelined_rt::sim::{monte_carlo, simulate_pipeline, MonteCarloConfig, PipelineConfig};
use pipelined_rt::workload::{ChainSpec, HeterogeneousPlatformSpec, InstanceGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small paper-style instance (fewer tasks so the exact solvers stay fast in
/// debug builds).
fn small_instance(seed: u64) -> (TaskChain, Platform) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let chain = ChainSpec::paper_with_tasks(8).generate(&mut rng);
    // Larger failure rates than the paper so reliabilities are not all ~1.
    let platform = Platform::homogeneous(6, 1.0, 1e-4, 1.0, 1e-4, 3).unwrap();
    (chain, platform)
}

#[test]
fn generated_instances_flow_through_the_whole_stack() {
    for seed in 0..5 {
        let (chain, platform) = small_instance(seed);

        // Exact optimum without bounds == Algorithm 1.
        let dp = optimize_reliability_homogeneous(&chain, &platform).unwrap();
        let exhaustive =
            exact::optimal_homogeneous(&chain, &platform, f64::INFINITY, f64::INFINITY).unwrap();
        assert!(
            (dp.reliability - exhaustive.reliability).abs() < 1e-12,
            "seed {seed}"
        );

        // The returned mapping's evaluation agrees with the reported value.
        let eval = MappingEvaluation::evaluate(&chain, &platform, &dp.mapping);
        assert!((eval.reliability - dp.reliability).abs() < 1e-12);

        // The serial-parallel RBD with routing operations gives the same
        // reliability as the closed form, and the exact factoring of that RBD
        // graph agrees too.
        let expr = mapping_rbd::routing_sp_expr(&chain, &platform, &dp.mapping);
        assert!((expr.reliability() - eval.reliability).abs() < 1e-12);
        let graph = mapping_rbd::routing_rbd(&chain, &platform, &dp.mapping);
        if graph.num_blocks() <= 24 {
            assert!((rbd_exact::factoring(&graph) - eval.reliability).abs() < 1e-12);
        }
    }
}

#[test]
fn heuristics_are_feasible_and_dominated_by_the_optimum() {
    for seed in 0..5 {
        let (chain, platform) = small_instance(seed);
        let period_bound = chain.max_task_work() * 1.5;
        let latency_bound = chain.total_work() * 1.2;

        let optimum = exact::optimal_homogeneous(&chain, &platform, period_bound, latency_bound);
        for heuristic in [IntervalHeuristic::MinLatency, IntervalHeuristic::MinPeriod] {
            let config = HeuristicConfig {
                interval_heuristic: heuristic,
                period_bound,
                latency_bound,
            };
            if let Ok(solution) = run_heuristic(&chain, &platform, &config) {
                assert!(solution.evaluation.meets(period_bound, latency_bound));
                let optimum = optimum
                    .as_ref()
                    .expect("heuristic feasible => optimum feasible");
                assert!(
                    solution.evaluation.reliability <= optimum.reliability + 1e-12,
                    "seed {seed}: {} beats the optimum",
                    heuristic.name()
                );
            }
        }
    }
}

#[test]
fn period_constrained_dp_agrees_with_profile_sweep() {
    let (chain, platform) = small_instance(11);
    let profiles = exact::ProfileSet::build(&chain, &platform).unwrap();
    for period in [
        chain.max_task_work(),
        chain.max_task_work() * 1.3,
        chain.total_work() / 2.0,
        chain.total_work(),
    ] {
        let dp = optimize_reliability_with_period_bound(&chain, &platform, period).unwrap();
        let profile = profiles
            .best_reliability_under(period, f64::INFINITY)
            .unwrap();
        assert!(
            (dp.reliability - profile).abs() < 1e-12,
            "period {period}: dp {} vs profiles {profile}",
            dp.reliability
        );
    }
}

#[test]
fn simulator_confirms_the_analytic_reliability_of_an_optimized_mapping() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let chain = ChainSpec::paper_with_tasks(6).generate(&mut rng);
    // Failure rates large enough to measure with 100k samples.
    let platform = Platform::homogeneous(6, 1.0, 2e-4, 1.0, 1e-4, 3).unwrap();
    let solution = optimize_reliability_homogeneous(&chain, &platform).unwrap();
    let analytic = MappingEvaluation::evaluate(&chain, &platform, &solution.mapping);

    let estimate = monte_carlo(
        &chain,
        &platform,
        &solution.mapping,
        &MonteCarloConfig {
            num_datasets: 100_000,
            seed: 9,
            chunk_size: 8192,
        },
    );
    let tolerance = 4.0 * estimate.reliability_confidence95().max(5e-4);
    assert!(
        (estimate.reliability - analytic.reliability).abs() < tolerance,
        "simulated {} vs analytic {}",
        estimate.reliability,
        analytic.reliability
    );

    // The pipelined simulation sustains (approximately) the analytic period.
    let report = simulate_pipeline(
        &chain,
        &platform,
        &solution.mapping,
        &PipelineConfig {
            num_datasets: 2_000,
            seed: 10,
            input_period: None,
        },
    );
    let relative =
        (report.achieved_period - analytic.expected_period).abs() / analytic.expected_period;
    assert!(
        relative < 0.05,
        "period {} vs {}",
        report.achieved_period,
        analytic.expected_period
    );
}

#[test]
fn heterogeneous_instances_are_solved_and_respect_bounds() {
    let generator = InstanceGenerator::paper_heterogeneous(123);
    let mut solved = 0;
    for instance in generator.batch(10) {
        let config = HeuristicConfig {
            interval_heuristic: IntervalHeuristic::MinPeriod,
            period_bound: 60.0,
            latency_bound: 200.0,
        };
        if let Ok(solution) = run_heuristic(&instance.chain, &instance.heterogeneous, &config) {
            assert!(solution.evaluation.meets(60.0, 200.0));
            solved += 1;
        }
    }
    assert!(
        solved > 0,
        "at least some paper-style heterogeneous instances must be solvable"
    );
}

#[test]
fn heterogeneous_platforms_from_the_generator_are_truly_heterogeneous() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let platform = HeterogeneousPlatformSpec::paper().generate(&mut rng);
    assert!(!platform.is_homogeneous());
    assert!(platform.max_speed() > platform.min_speed());
}

#[test]
fn ilp_solver_reproduces_the_exhaustive_optimum_on_a_generated_instance() {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let chain = ChainSpec::paper_with_tasks(5).generate(&mut rng);
    let platform = Platform::homogeneous(4, 1.0, 1e-4, 1.0, 1e-4, 2).unwrap();
    let period = chain.max_task_work() * 2.0;
    let latency = chain.total_work() * 1.1;
    let ilp = exact::optimal_by_ilp(&chain, &platform, period, latency).unwrap();
    let exhaustive = exact::optimal_homogeneous(&chain, &platform, period, latency).unwrap();
    assert!((ilp.reliability - exhaustive.reliability).abs() < 1e-9);
}
