//! Kernel-equivalence property suite: on hundreds of seeded random
//! instances, the lane-chunked DP kernel must agree with the scalar
//! reference sweep within `1e-12`, and the streaming Pareto front must equal
//! the batch-rebuilt front exactly.
//!
//! Reuses the ChaCha8 harness style of `tests/properties.rs`: each case is
//! generated from its own seed, and a failing case re-panics with the seed
//! that reproduces it.

use pipelined_rt::algorithms::{reliability_dp_with_kernel, DpKernel};
use pipelined_rt::model::{IntervalOracle, IntervalPartition, Mapping, Platform, TaskChain};
use pipelined_rt::portfolio::{CandidateMapping, ParetoFront, StreamingFront};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of random instances checked per property.
const CASES: u64 = 200;

fn for_random_cases(property: &str, mut check: impl FnMut(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let seed = 0x0C0D_E000 + case;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            check(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property `{property}` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A random chain of 2..=12 tasks with works in [1, 100] and outputs in
/// [0, 10].
fn random_chain(rng: &mut ChaCha8Rng) -> TaskChain {
    let n = rng.gen_range(2usize..=12);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(0.0..10.0)))
        .collect();
    TaskChain::from_pairs(&pairs).expect("valid generated chain")
}

/// A random homogeneous platform (the DP kernels require homogeneity).
fn random_homogeneous_platform(rng: &mut ChaCha8Rng) -> Platform {
    Platform::homogeneous(
        rng.gen_range(2usize..=8),
        rng.gen_range(1.0..4.0),
        rng.gen_range(1e-5..1e-2),
        rng.gen_range(0.5..4.0),
        rng.gen_range(0.0..1e-3),
        rng.gen_range(1usize..=3),
    )
    .expect("valid platform")
}

/// A valid random mapping: random contiguous partition, processors dealt
/// round-robin, at most K per interval.
fn random_mapping(rng: &mut ChaCha8Rng, chain: &TaskChain, platform: &Platform) -> Mapping {
    let n = chain.len();
    let p = platform.num_processors();
    let m = rng.gen_range(1usize..=n.min(p));

    let mut cuts: Vec<usize> = Vec::new();
    while cuts.len() < m - 1 {
        let cut = rng.gen_range(0usize..n - 1);
        if !cuts.contains(&cut) {
            cuts.push(cut);
        }
    }
    cuts.sort_unstable();
    let partition = IntervalPartition::from_cut_points(&cuts, n).expect("valid cuts");

    let k = platform.max_replication();
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); m];
    for processor in 0..p {
        let slot = processor % m;
        if sets[slot].len() < k {
            sets[slot].push(processor);
        }
    }
    Mapping::from_partition(&partition, sets, chain, platform)
        .expect("round-robin assignment is structurally valid")
}

/// A random period bound that keeps a healthy mix of feasible and
/// infeasible instances: between the largest single-task time (barely
/// feasible) and the whole chain on one processor (always feasible).
fn random_period_bound(rng: &mut ChaCha8Rng, chain: &TaskChain, platform: &Platform) -> f64 {
    let speed = platform.speed(0);
    let floor = chain.max_task_work() / speed;
    let ceiling = chain.total_work() / speed;
    rng.gen_range(0.8 * floor..1.2 * ceiling)
}

/// The chunked DP kernel and the scalar reference sweep agree — same
/// feasibility verdict, reliabilities within `1e-12`, identical reconstructed
/// mappings — on seeded instances of Algorithm 1 (no bound) and Algorithm 2
/// (random period bound).
#[test]
fn chunked_kernel_matches_scalar_reference() {
    for_random_cases("chunked_kernel_matches_scalar_reference", |rng| {
        let chain = random_chain(rng);
        let platform = random_homogeneous_platform(rng);
        let oracle = IntervalOracle::new(&chain, &platform);
        let bounds = [
            None,
            Some(random_period_bound(rng, &chain, &platform)),
            Some(random_period_bound(rng, &chain, &platform)),
        ];
        for bound in bounds {
            let chunked =
                reliability_dp_with_kernel(&oracle, &chain, &platform, bound, DpKernel::Chunked);
            let scalar =
                reliability_dp_with_kernel(&oracle, &chain, &platform, bound, DpKernel::Scalar);
            match (chunked, scalar) {
                (Some(a), Some(b)) => {
                    assert!(
                        (a.reliability - b.reliability).abs()
                            <= 1e-12 * a.reliability.abs().max(b.reliability.abs()),
                        "kernel reliabilities diverged: chunked {} vs scalar {} (bound {bound:?})",
                        a.reliability,
                        b.reliability
                    );
                    assert_eq!(
                        a.mapping, b.mapping,
                        "kernels reconstructed different mappings (bound {bound:?})"
                    );
                }
                (None, None) => {}
                (a, b) => panic!(
                    "kernel feasibility mismatch (bound {bound:?}): chunked={} scalar={}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    });
}

/// Streaming candidates into a [`StreamingFront`] — in any order, with the
/// oracle re-certification — yields **exactly** the front a batch rebuild
/// over the same candidates produces.
#[test]
fn streaming_front_equals_batch_rebuilt_front() {
    for_random_cases("streaming_front_equals_batch_rebuilt_front", |rng| {
        let chain = random_chain(rng);
        let platform = random_homogeneous_platform(rng);
        let oracle = IntervalOracle::new(&chain, &platform);

        let candidates: Vec<CandidateMapping> = (0..rng.gen_range(3usize..=12))
            .map(|_| {
                let mapping = random_mapping(rng, &chain, &platform);
                CandidateMapping::evaluate_with_oracle("stream-test", &oracle, mapping)
            })
            .collect();

        // Stream in reverse order (a schedule the batch rebuild never uses).
        let streaming = StreamingFront::new();
        for candidate in candidates.iter().rev().cloned() {
            streaming.offer(&oracle, candidate);
        }
        let streamed = streaming.into_front();
        let batch = ParetoFront::from_candidates(candidates);

        let key = |front: &ParetoFront| -> Vec<(f64, f64, f64, u64)> {
            front
                .points()
                .iter()
                .map(|p| {
                    (
                        p.evaluation.reliability,
                        p.evaluation.worst_case_period,
                        p.evaluation.worst_case_latency,
                        p.fingerprint(),
                    )
                })
                .collect()
        };
        assert_eq!(
            key(&streamed),
            key(&batch),
            "streaming front diverged from the batch-rebuilt front"
        );
    });
}
