//! The serving-layer contract: bounded-queue backpressure, deadline
//! shedding (never a stale solve), bit-identical duplicate coalescing, the
//! engine's deadline accounting underneath it all, and a 1k-request
//! loopback replay over real TCP.

use pipelined_rt::portfolio::{
    default_backends, Budget, PortfolioEngine, ProblemInstance, RunStatus,
};
use pipelined_rt::serve::{
    serve_lines, ResponseStatus, ServeConfig, ServeRequest, ServeResponse, SolverService, TcpServer,
};
use pipelined_rt::workload::{GeneratedRequest, InstanceGenerator, RequestSpec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dresses a generated request as a wire request (homogeneous platform).
fn to_wire(generated: &GeneratedRequest, deadline_ms: Option<f64>) -> ServeRequest {
    ServeRequest {
        id: generated.index as u64,
        tenant: generated.tenant,
        deadline_ms,
        chain: generated.instance.chain.clone(),
        platform: generated.instance.homogeneous.clone(),
        period_bound: Some(generated.period_bound).filter(|bound| bound.is_finite()),
        latency_bound: Some(generated.latency_bound).filter(|bound| bound.is_finite()),
    }
}

/// A `workers: 0` service processed manually — fully deterministic.
fn manual_service(queue_capacity: usize) -> SolverService {
    let engine = Arc::new(PortfolioEngine::default().with_threads(1));
    SolverService::start(
        engine,
        ServeConfig {
            workers: 0,
            queue_capacity,
            default_deadline: None,
            ..ServeConfig::default()
        },
    )
}

#[test]
fn bounded_queue_sheds_overflow_with_typed_rejections() {
    let service = manual_service(4);
    let spec = RequestSpec {
        duplicate_fraction: 0.0,
        ..RequestSpec::serve_replay(100)
    };
    let requests: Vec<GeneratedRequest> = spec.stream(10).collect();
    let tickets: Vec<_> = requests
        .iter()
        .map(|request| {
            let ticket = service.submit(to_wire(request, None));
            // Property: the bounded queue never exceeds its capacity, no
            // matter how many submissions pile up.
            assert!(service.queue_depth() <= 4);
            ticket
        })
        .collect();
    assert_eq!(service.queue_depth(), 4);

    let mut responses: Vec<ServeResponse> = Vec::new();
    let mut overloaded = 0;
    let mut queued = Vec::new();
    for ticket in tickets {
        match ticket.try_get() {
            // Overflow rejections are immediate and typed.
            Some(response) => {
                assert_eq!(response.status, ResponseStatus::Overloaded);
                assert!(response.error.is_some());
                overloaded += 1;
                responses.push(response);
            }
            None => queued.push(ticket),
        }
    }
    assert_eq!(overloaded, 6);
    assert_eq!(queued.len(), 4);

    // Draining the queue answers every admitted request.
    for _ in 0..4 {
        assert!(service.process_one());
    }
    assert!(!service.process_one(), "queue should be empty");
    for ticket in queued {
        let response = ticket.wait();
        assert!(matches!(
            response.status,
            ResponseStatus::Ok | ResponseStatus::Infeasible
        ));
    }
    let stats = service.stats();
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.overloaded, 6);
    assert_eq!(stats.solved, 4);
    service.shutdown();
}

#[test]
fn expired_deadlines_shed_without_solving() {
    let service = manual_service(16);
    let spec = RequestSpec::serve_replay(200);
    let requests: Vec<GeneratedRequest> = spec.stream(2).collect();

    // Already expired at admission: shed immediately, never queued.
    let dead_on_arrival = service.submit(to_wire(&requests[0], Some(0.0)));
    let response = dead_on_arrival.wait();
    assert_eq!(response.status, ResponseStatus::Shed);
    assert_eq!(service.queue_depth(), 0);
    assert_eq!(service.stats().solved, 0);

    // Expires while queued: shed at dequeue, the solve itself is skipped.
    let queued = service.submit(to_wire(&requests[1], Some(5.0)));
    assert_eq!(service.queue_depth(), 1);
    std::thread::sleep(Duration::from_millis(20));
    assert!(service.process_one());
    let response = queued.wait();
    assert_eq!(response.status, ResponseStatus::Shed);
    let stats = service.stats();
    assert_eq!(stats.solved, 0, "shed requests must never be solved");
    assert_eq!(stats.shed, 2);
    service.shutdown();
}

#[test]
fn coalesced_duplicates_are_bit_identical() {
    let service = manual_service(16);
    let spec = RequestSpec::serve_replay(300);
    let requests: Vec<GeneratedRequest> = spec.stream(1).collect();

    let first = service.submit(to_wire(&requests[0], None));
    let second = service.submit(ServeRequest {
        id: 999,
        ..to_wire(&requests[0], None)
    });
    // The duplicate coalesces onto the queued solve: no extra queue slot.
    assert_eq!(service.queue_depth(), 1);
    let stats = service.stats();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.coalesced, 1);

    assert!(service.process_one());
    let a = first.wait();
    let b = second.wait();
    assert_eq!(service.stats().solved, 1, "one solve served both");
    assert_eq!(a.status, ResponseStatus::Ok);
    assert_eq!(b.status, ResponseStatus::Ok);
    assert!(!a.coalesced);
    assert!(b.coalesced);
    // Bit-identical: same solve, same front, same reliability bits.
    assert_eq!(
        a.reliability.unwrap().to_bits(),
        b.reliability.unwrap().to_bits()
    );
    assert_eq!(a.mapping, b.mapping);

    // A later identical request hits the tenant shard without a new solve.
    let third = service.submit(ServeRequest {
        id: 1000,
        ..to_wire(&requests[0], None)
    });
    let c = third.wait();
    assert!(c.cached);
    assert_eq!(service.stats().cache_hits, 1);
    assert_eq!(service.stats().solved, 1);
    assert_eq!(
        a.reliability.unwrap().to_bits(),
        c.reliability.unwrap().to_bits()
    );
    service.shutdown();
}

#[test]
fn draining_service_rejects_new_requests_but_finishes_queued_work() {
    let service = manual_service(16);
    // Distinct instances: a duplicate would be answered from the tenant
    // shard before the draining check ever fires.
    let spec = RequestSpec {
        duplicate_fraction: 0.0,
        ..RequestSpec::serve_replay(400)
    };
    let requests: Vec<GeneratedRequest> = spec.stream(2).collect();
    let queued = service.submit(to_wire(&requests[0], None));
    // Shutdown drains: the queued request is answered, not dropped.
    let stats = service.shutdown();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.solved, 1);
    assert!(matches!(
        queued.wait().status,
        ResponseStatus::Ok | ResponseStatus::Infeasible
    ));
    // New submissions after the drain get a typed rejection.
    let late = service.submit(to_wire(&requests[1], None));
    assert_eq!(late.wait().status, ResponseStatus::Draining);
    assert_eq!(service.stats().drained, 1);
}

#[test]
fn engine_deadline_expiry_is_reported_and_not_cached() {
    let generator = InstanceGenerator::paper_homogeneous(77);
    let generated = generator.instance(0);
    let instance = ProblemInstance::unbounded(generated.chain, generated.homogeneous);

    // A deadline in the past: every runnable backend is shed before
    // dispatch and the outcome says so.
    let engine = PortfolioEngine::default().with_threads(1);
    let expired = engine.solve_until(&instance, 1, Some(Instant::now() - Duration::from_secs(1)));
    assert!(expired.deadline_expired);
    assert!(!expired.from_cache);
    assert!(
        expired
            .runs
            .iter()
            .filter(|run| !matches!(run.status, RunStatus::Skipped(_)))
            .all(|run| run.status == RunStatus::DeadlineExpired),
        "all runnable backends must be marked DeadlineExpired"
    );
    assert!(!expired.is_feasible(), "nothing ran, nothing found");

    // The partial (here: empty) front was not cached — the next solve runs
    // fresh and succeeds.
    let fresh = engine.solve(&instance);
    assert!(!fresh.from_cache, "expired solve must not poison the cache");
    assert!(!fresh.deadline_expired);
    assert!(fresh.is_feasible());

    // A budget-derived zero time limit behaves the same way.
    let strangled =
        PortfolioEngine::new(default_backends(), Budget::with_time_limit(Duration::ZERO))
            .with_threads(1);
    let outcome = strangled.solve(&instance);
    assert!(outcome.deadline_expired);
}

#[test]
fn loopback_replay_of_a_seeded_1k_request_stream() {
    let engine = Arc::new(PortfolioEngine::default().with_threads(1));
    let service = Arc::new(SolverService::start(
        engine,
        ServeConfig {
            workers: 2,
            queue_capacity: 1024,
            default_deadline: Some(Duration::from_secs(30)),
            ..ServeConfig::default()
        },
    ));
    let server = TcpServer::spawn(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");

    let spec = RequestSpec::serve_replay(4242);
    let requests: Vec<GeneratedRequest> = spec.stream(1000).collect();

    let stream = TcpStream::connect(server.local_addr()).expect("connect loopback");
    let mut writer = stream.try_clone().expect("clone socket");
    // Read concurrently with writing so neither side of the socket can
    // fill up and deadlock the replay.
    let reader = std::thread::spawn(move || {
        let mut responses = Vec::with_capacity(1000);
        for line in BufReader::new(stream).lines() {
            let line = line.expect("response line");
            let response: ServeResponse =
                serde_json::from_str(&line).expect("response line parses");
            responses.push(response);
            if responses.len() == 1000 {
                break;
            }
        }
        responses
    });
    for request in &requests {
        // A generous deadline: the replay asserts protocol behaviour, not
        // timing; the bench gate covers latency.
        let line = serde_json::to_string(&to_wire(request, Some(30_000.0))).unwrap();
        writeln!(writer, "{line}").expect("write request");
    }
    writer.flush().expect("flush requests");
    let responses = reader.join().expect("reader thread");
    drop(writer);

    // Exactly one response per request, correlated by id.
    assert_eq!(responses.len(), 1000);
    let mut by_id: HashMap<u64, &ServeResponse> = HashMap::new();
    for response in &responses {
        assert!(
            by_id.insert(response.id, response).is_none(),
            "duplicate response for id {}",
            response.id
        );
    }
    assert_eq!(by_id.len(), 1000);

    // With generous deadlines and a deep queue, everything resolves.
    for response in &responses {
        assert!(
            matches!(
                response.status,
                ResponseStatus::Ok | ResponseStatus::Infeasible
            ),
            "unexpected status {:?} for id {}",
            response.status,
            response.id
        );
    }

    // Duplicate requests (≥ 30% of the stream by construction) return
    // bit-identical solutions to their originals, whether they were
    // coalesced, cache-answered, or re-solved through the engine cache.
    let mut duplicates = 0;
    for request in &requests {
        if let Some(original_unique) = request.duplicate_of {
            duplicates += 1;
            let original = requests
                .iter()
                .find(|r| r.duplicate_of.is_none() && r.instance.index == original_unique)
                .expect("original request exists");
            let a = by_id[&(request.index as u64)];
            let b = by_id[&(original.index as u64)];
            assert_eq!(a.status, b.status);
            if let (Some(x), Some(y)) = (a.reliability, b.reliability) {
                assert_eq!(x.to_bits(), y.to_bits(), "duplicate diverged");
            }
            assert_eq!(a.mapping, b.mapping);
        }
    }
    assert!(
        duplicates >= 300,
        "stream not duplicate-heavy: {duplicates}"
    );

    // Duplicate traffic never pays for a fresh solve: it is coalesced onto
    // an in-flight solve, answered from a tenant shard, or absorbed by the
    // engine's instance cache — the response says which.
    let absorbed = responses
        .iter()
        .filter(|response| response.coalesced || response.cached)
        .count();
    assert!(absorbed >= 300, "only {absorbed} duplicates absorbed");

    server.stop();
    let stats = service.shutdown();
    assert_eq!(
        stats.admitted + stats.coalesced + stats.cache_hits,
        1000,
        "every request admitted, coalesced, or cache-answered"
    );
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.overloaded, 0);
}

#[test]
fn stdio_style_serve_lines_round_trip() {
    let service = SolverService::start(
        Arc::new(PortfolioEngine::default().with_threads(1)),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let spec = RequestSpec::serve_replay(888);
    let requests: Vec<GeneratedRequest> = spec.stream(8).collect();
    let mut input = String::new();
    for request in &requests {
        input.push_str(&serde_json::to_string(&to_wire(request, Some(30_000.0))).unwrap());
        input.push('\n');
    }
    input.push_str("this is not json\n\n");

    let output: Arc<std::sync::Mutex<Vec<u8>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    #[derive(Clone)]
    struct SharedSink(Arc<std::sync::Mutex<Vec<u8>>>);
    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    serve_lines(&service, input.as_bytes(), SharedSink(Arc::clone(&output))).expect("serve loop");
    service.shutdown();

    let bytes = output.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf8 responses");
    let responses: Vec<ServeResponse> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("response parses"))
        .collect();
    assert_eq!(responses.len(), 9, "8 requests + 1 invalid line");
    let invalid = responses
        .iter()
        .filter(|r| r.status == ResponseStatus::Invalid)
        .count();
    assert_eq!(invalid, 1);
}
