//! The differential solver battery: one seeded ChaCha8 harness that pits
//! **every solver pair sharing a contract** against each other, so every
//! future solver lands against the same oracle battery.
//!
//! | pair | contract | instances |
//! |---|---|---|
//! | `algo_het_lat` vs `exhaustive_het_lat` | identical reliability and feasibility | n ≤ 8, p ≤ 6, K_c ≤ 3, latency-bounded |
//! | `algo_het_lat` vs `greedy_het_lat` | never less reliable, same-or-better feasibility | paper-scale 3-class, latency-bounded |
//! | `algo2` vs `ILP` | identical reliability and feasibility | small homogeneous, period-bounded |
//! | analytic Eq. 9 vs Monte-Carlo (`rpo-sim`) | within 3σ of the binomial estimate | every returned mapping |
//!
//! Reuses the ChaCha8 harness style of `tests/properties.rs`: each case is
//! generated from its own seed, and a failing case re-panics with the seed
//! that reproduces it (the dedicated CI step runs with `--nocapture`, so the
//! seed lands in the log).

use pipelined_rt::algorithms::{
    algo_het_lat_with_oracle, algo_het_with_oracle, exact, exhaustive_het_lat,
    greedy_het_lat_with_oracle, het_dp_applicable, optimize_reliability_with_period_bound,
    run_heuristic, AlgoError, DpScratch, HetLatMethod, HeuristicConfig, IntervalHeuristic,
};
use pipelined_rt::model::{
    IntervalOracle, Mapping, MappingEvaluation, Platform, PlatformBuilder, Processor, TaskChain,
};
use pipelined_rt::portfolio::SolverBackend;
use pipelined_rt::portfolio::{backends::HetDpLatBackend, Budget, ProblemInstance, SolveContext};
use pipelined_rt::sim::{monte_carlo, MonteCarloConfig};
use pipelined_rt::workload::InstanceGenerator;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 40;

fn for_random_cases(property: &str, base_seed: u64, mut check: impl FnMut(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let seed = base_seed + case;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            check(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property `{property}` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A random chain of `2..=max_tasks` tasks with works in [1, 100] and
/// outputs in [0, 10].
fn random_chain(rng: &mut ChaCha8Rng, max_tasks: usize) -> TaskChain {
    let n = rng.gen_range(2usize..=max_tasks);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(0.0..10.0)))
        .collect();
    TaskChain::from_pairs(&pairs).unwrap()
}

/// A random class-structured platform: `classes ≤ 3` distinct
/// `(speed, failure rate)` classes over `2..=max_processors` processors.
fn random_class_platform(rng: &mut ChaCha8Rng, max_processors: usize) -> Platform {
    let p = rng.gen_range(2usize..=max_processors);
    let classes = rng.gen_range(1usize..=3.min(p));
    let class_specs: Vec<(f64, f64)> = (0..classes)
        .map(|_| {
            (
                rng.gen_range(1.0..8.0),
                10f64.powf(rng.gen_range(-5.0..-2.0)),
            )
        })
        .collect();
    let processors: Vec<Processor> = (0..p)
        .map(|u| {
            let (speed, rate) = class_specs[u % classes];
            Processor::new(speed, rate)
        })
        .collect();
    Platform::new(
        processors,
        rng.gen_range(0.5..4.0),
        10f64.powf(rng.gen_range(-6.0..-3.0)),
        rng.gen_range(2usize..=3),
    )
    .unwrap()
}

#[test]
fn algo_het_lat_matches_exhaustive_on_small_latency_bounded_instances() {
    for_random_cases("algo_het_lat == exhaustive_het_lat", 0xD1FF_0000, |rng| {
        let chain = random_chain(rng, 8);
        let platform = random_class_platform(rng, 6);
        let oracle = IntervalOracle::new(&chain, &platform);
        assert!(het_dp_applicable(&oracle), "3 classes over ≤ 6 processors");
        let period = if rng.gen_bool(0.3) {
            None
        } else {
            Some(rng.gen_range(0.5..1.3) * chain.total_work() / platform.max_speed())
        };
        // Latency slacks spanning infeasible (below the floor), tight, and
        // loose regimes.
        let latency = rng.gen_range(0.9..2.5) * oracle.latency_floor();
        let dp = algo_het_lat_with_oracle(&oracle, &chain, &platform, period, latency);
        let brute = exhaustive_het_lat(&chain, &platform, period, latency);
        match (dp, brute) {
            (Ok(dp), Ok(brute)) => {
                assert!(
                    (dp.reliability - brute.reliability).abs()
                        <= 1e-12 * brute.reliability.max(dp.reliability),
                    "bounds ({period:?}, {latency}): algo_het_lat {} vs exhaustive {}",
                    dp.reliability,
                    brute.reliability
                );
                // The DP's mapping respects both bounds exactly.
                let eval = MappingEvaluation::evaluate(&chain, &platform, &dp.mapping);
                assert!(eval.worst_case_latency <= latency);
                if let Some(period) = period {
                    assert!(eval.worst_case_period <= period);
                }
                assert_eq!(dp.reliability, eval.reliability);
                assert_eq!(dp.worst_case_latency, eval.worst_case_latency);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (dp, brute) => panic!(
                "feasibility mismatch under ({period:?}, {latency}): algo_het_lat {} vs \
                 exhaustive {}",
                dp.is_ok(),
                brute.is_ok()
            ),
        }
    });
}

#[test]
fn algo_het_lat_never_trails_greedy_on_paper_scale_instances() {
    // Paper-scale latency-bounded class-structured instances (n = 15,
    // p = 10, 3 classes): too big for the exhaustive reference, but the
    // ≥-greedy invariant and both bounds must hold everywhere.
    for (index, bounded) in
        InstanceGenerator::paper_het_lat_stream(0xD1FF_1000, CASES as usize).enumerate()
    {
        let chain = &bounded.instance.chain;
        let platform = &bounded.instance.heterogeneous;
        let oracle = IntervalOracle::new(chain, platform);
        let dp = algo_het_lat_with_oracle(
            &oracle,
            chain,
            platform,
            Some(bounded.period_bound),
            bounded.latency_bound,
        );
        let greedy = greedy_het_lat_with_oracle(
            &oracle,
            chain,
            platform,
            Some(bounded.period_bound),
            bounded.latency_bound,
        );
        match (&dp, &greedy) {
            (Ok(dp), Ok(greedy)) => {
                assert!(
                    dp.reliability >= greedy.reliability,
                    "instance {index}: algo_het_lat {} below greedy {}",
                    dp.reliability,
                    greedy.reliability
                );
                assert_eq!(dp.greedy_reliability, Some(greedy.reliability));
            }
            (Err(_), Ok(_)) => {
                panic!("instance {index}: greedy solved but algo_het_lat did not")
            }
            _ => {}
        }
        if let Ok(dp) = &dp {
            // The paper-regime stream (n = 15, p = 10, 3 classes, the tight
            // paper_het_lat bounds) must be answered by the exact label DP
            // itself — never the Lagrangian fallback or the greedy: a silent
            // path downgrade would keep the ≥-greedy invariant while losing
            // the exactness this regime is benchmarked on.
            assert_eq!(
                dp.method,
                HetLatMethod::LatDp,
                "instance {index}: paper-regime solve left the label-DP path"
            );
            let eval = MappingEvaluation::evaluate(chain, platform, &dp.mapping);
            assert!(
                eval.worst_case_latency <= bounded.latency_bound,
                "instance {index}: latency {} exceeds bound {}",
                eval.worst_case_latency,
                bounded.latency_bound
            );
            assert!(
                eval.worst_case_period <= bounded.period_bound,
                "instance {index}: period {} exceeds bound {}",
                eval.worst_case_period,
                bounded.period_bound
            );
            assert_eq!(dp.reliability, eval.reliability);
        }
    }
}

#[test]
fn algo2_matches_the_ilp_on_small_homogeneous_instances() {
    for_random_cases("algo2 == ILP", 0xD1FF_2000, |rng| {
        let chain = random_chain(rng, 7);
        let platform = Platform::homogeneous(
            rng.gen_range(2usize..=5),
            rng.gen_range(1.0..4.0),
            10f64.powf(rng.gen_range(-5.0..-3.0)),
            rng.gen_range(0.5..2.0),
            10f64.powf(rng.gen_range(-6.0..-4.0)),
            rng.gen_range(2usize..=3),
        )
        .unwrap();
        let bound = rng.gen_range(0.4..1.5) * chain.total_work() / platform.speed(0);
        let algo2 = optimize_reliability_with_period_bound(&chain, &platform, bound);
        let ilp = exact::optimal_by_ilp(&chain, &platform, bound, f64::INFINITY);
        match (algo2, ilp) {
            (Ok(algo2), Ok(ilp)) => assert!(
                (algo2.reliability - ilp.reliability).abs()
                    <= 1e-9 * ilp.reliability.max(algo2.reliability),
                "bound {bound}: algo2 {} vs ILP {}",
                algo2.reliability,
                ilp.reliability
            ),
            (Err(_), Err(_)) => {}
            (algo2, ilp) => panic!(
                "feasibility mismatch under bound {bound}: algo2 {} vs ILP {}",
                algo2.is_ok(),
                ilp.is_ok()
            ),
        }
    });
}

/// Asserts the Monte-Carlo reliability estimate of `mapping` lies within 3σ
/// (binomial normal approximation) of the analytic Eq. 9 value. The
/// simulation streams are seeded, so the check is deterministic.
fn assert_monte_carlo_within_3_sigma(
    label: &str,
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    seed: u64,
) {
    let config = MonteCarloConfig {
        num_datasets: 20_000,
        seed,
        chunk_size: 4096,
    };
    let analytic = MappingEvaluation::evaluate(chain, platform, mapping).reliability;
    let estimate = monte_carlo(chain, platform, mapping, &config);
    let sigma = (analytic * (1.0 - analytic) / config.num_datasets as f64).sqrt();
    assert!(
        (estimate.reliability - analytic).abs() <= 3.0 * sigma + 1e-12,
        "{label}: Monte-Carlo {} vs analytic {analytic} (3σ = {})",
        estimate.reliability,
        3.0 * sigma
    );
}

#[test]
fn monte_carlo_agrees_with_eq9_for_every_returned_mapping() {
    // Failure rates high enough that the failure probability is measurable
    // with 20k samples; every solver's returned mapping is simulated.
    for case in 0..6u64 {
        let seed = 0xD1FF_3000 + case;
        let outcome = std::panic::catch_unwind(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(3usize..=6);
            let pairs: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(10.0..60.0), rng.gen_range(0.0..8.0)))
                .collect();
            let chain = TaskChain::from_pairs(&pairs).unwrap();
            let mut builder = PlatformBuilder::new()
                .bandwidth(rng.gen_range(0.5..2.0))
                .link_failure_rate(10f64.powf(rng.gen_range(-4.0..-3.0)))
                .max_replication(rng.gen_range(2usize..=3));
            let classes: Vec<(f64, f64)> = (0..2)
                .map(|_| {
                    (
                        rng.gen_range(1.0..4.0),
                        10f64.powf(rng.gen_range(-3.0..-2.0)),
                    )
                })
                .collect();
            for u in 0..4 {
                let (speed, rate) = classes[u % 2];
                builder = builder.processor(speed, rate);
            }
            let platform = builder.build().unwrap();
            let oracle = IntervalOracle::new(&chain, &platform);
            let floor = oracle.latency_floor();

            let mut mappings: Vec<(&'static str, Mapping)> = Vec::new();
            if let Ok(sol) = algo_het_with_oracle(&oracle, &chain, &platform, None) {
                mappings.push(("algo_het", sol.mapping));
            }
            if let Ok(sol) = algo_het_lat_with_oracle(&oracle, &chain, &platform, None, 1.5 * floor)
            {
                mappings.push(("algo_het_lat", sol.mapping));
            }
            if let Ok(sol) =
                greedy_het_lat_with_oracle(&oracle, &chain, &platform, None, 2.0 * floor)
            {
                mappings.push(("greedy_het_lat", sol.mapping));
            }
            assert!(
                !mappings.is_empty(),
                "at least one heterogeneous solver must succeed"
            );
            for (label, mapping) in &mappings {
                assert_monte_carlo_within_3_sigma(label, &chain, &platform, mapping, seed ^ 0xA5);
            }

            // One homogeneous mapping through Algorithm 2 for coverage of
            // the homogeneous stack.
            let hom = Platform::homogeneous(4, 1.5, 5e-3, 1.0, 1e-4, 2).unwrap();
            let bound = rng.gen_range(0.5..1.2) * chain.total_work() / 1.5;
            if let Ok(sol) = optimize_reliability_with_period_bound(&chain, &hom, bound) {
                assert_monte_carlo_within_3_sigma("algo2", &chain, &hom, &sol.mapping, seed ^ 0x5A);
            }
        });
        if outcome.is_err() {
            panic!("property `monte-carlo within 3σ` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A fixed two-class fixture for the latency edge cases.
fn edge_fixture() -> (TaskChain, Platform) {
    let chain =
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap();
    let platform = PlatformBuilder::new()
        .processor(4.0, 1e-3)
        .processor(4.0, 1e-3)
        .processor(4.0, 1e-3)
        .processor(1.0, 1e-4)
        .processor(1.0, 1e-4)
        .processor(1.0, 1e-4)
        .bandwidth(1.0)
        .link_failure_rate(1e-5)
        .max_replication(3)
        .build()
        .unwrap();
    (chain, platform)
}

/// Runs the `Het-Dp-Lat` backend alone on one instance.
fn solve_het_dp_lat(instance: &ProblemInstance) -> Vec<pipelined_rt::portfolio::CandidateMapping> {
    let oracle = instance.build_oracle();
    let mut scratch = DpScratch::new();
    let mut ctx = SolveContext {
        scratch: &mut scratch,
        front: None,
    };
    HetDpLatBackend.solve(instance, &oracle, &Budget::default(), &mut ctx)
}

#[test]
fn latency_bound_below_the_floor_is_cleanly_infeasible_everywhere() {
    let (chain, platform) = edge_fixture();
    let oracle = IntervalOracle::new(&chain, &platform);
    let below = 0.5 * oracle.latency_floor();

    // algo_het_lat: clean error, no panic.
    assert_eq!(
        algo_het_lat_with_oracle(&oracle, &chain, &platform, None, below).unwrap_err(),
        AlgoError::NoFeasibleMapping
    );
    // The Section 7 heuristics: clean error, no panic.
    for heuristic in [IntervalHeuristic::MinLatency, IntervalHeuristic::MinPeriod] {
        assert_eq!(
            run_heuristic(
                &chain,
                &platform,
                &HeuristicConfig {
                    interval_heuristic: heuristic,
                    period_bound: 1e6,
                    latency_bound: below,
                },
            )
            .unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }
    // The Het-Dp-Lat portfolio backend: no candidates, no panic.
    let instance =
        ProblemInstance::new(chain.clone(), platform.clone(), f64::INFINITY, below).unwrap();
    assert!(solve_het_dp_lat(&instance).is_empty());
}

#[test]
fn latency_bound_exactly_at_the_floor_is_feasible() {
    let (chain, platform) = edge_fixture();
    let oracle = IntervalOracle::new(&chain, &platform);
    let floor = oracle.latency_floor();

    let sol = algo_het_lat_with_oracle(&oracle, &chain, &platform, None, floor).unwrap();
    assert_eq!(sol.worst_case_latency, floor);

    let instance =
        ProblemInstance::new(chain.clone(), platform.clone(), f64::INFINITY, floor).unwrap();
    let candidates = solve_het_dp_lat(&instance);
    assert_eq!(candidates.len(), 1);
    assert!(candidates[0].evaluation.worst_case_latency <= floor);
}

#[test]
fn invalid_latency_bounds_are_rejected_across_the_stack() {
    let (chain, platform) = edge_fixture();
    let oracle = IntervalOracle::new(&chain, &platform);
    for bad in [0.0, -3.0, f64::NAN] {
        assert_eq!(
            algo_het_lat_with_oracle(&oracle, &chain, &platform, None, bad).unwrap_err(),
            AlgoError::InvalidBound("latency bound")
        );
        assert_eq!(
            greedy_het_lat_with_oracle(&oracle, &chain, &platform, None, bad).unwrap_err(),
            AlgoError::InvalidBound("latency bound")
        );
        assert_eq!(
            exhaustive_het_lat(&chain, &platform, None, bad).unwrap_err(),
            AlgoError::InvalidBound("latency bound")
        );
        assert_eq!(
            run_heuristic(
                &chain,
                &platform,
                &HeuristicConfig {
                    interval_heuristic: IntervalHeuristic::MinPeriod,
                    period_bound: 1e6,
                    latency_bound: bad,
                },
            )
            .unwrap_err(),
            AlgoError::InvalidBound("latency bound")
        );
        // The portfolio rejects the instance before any backend runs.
        assert!(ProblemInstance::new(chain.clone(), platform.clone(), 1e6, bad).is_err());
    }
    // An infinite latency bound is "no bound" for the portfolio (the
    // backend skips), but algo_het_lat demands a real one.
    assert_eq!(
        algo_het_lat_with_oracle(&oracle, &chain, &platform, None, f64::INFINITY).unwrap_err(),
        AlgoError::InvalidBound("latency bound")
    );
}
