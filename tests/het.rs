//! Heterogeneous class-DP property suite: on seeded random class-structured
//! instances, `algo_het` must be exact (equal to the brute-force
//! heterogeneous reference) on small instances, never below the greedy
//! Section 7.2 pipeline anywhere, and its class-level solutions must lower
//! to mappings that round-trip through the oracle's exact evaluator.
//!
//! Reuses the ChaCha8 harness style of `tests/properties.rs`: each case is
//! generated from its own seed, and a failing case re-panics with the seed
//! that reproduces it.

use pipelined_rt::algorithms::{
    algo_het, algo_het_with_oracle, class_dp_with_kernel, exhaustive_het, greedy_het_with_oracle,
    het_dp_applicable, DpKernel, HetMethod,
};
use pipelined_rt::model::{
    ClassAssignment, IntervalOracle, IntervalPartition, MappingEvaluation, Platform, Processor,
    TaskChain,
};
use pipelined_rt::workload::InstanceGenerator;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 60;

fn for_random_cases(property: &str, mut check: impl FnMut(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let seed = 0x0C1A_5500 + case;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            check(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property `{property}` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A random chain of `2..=max_tasks` tasks with works in [1, 100] and
/// outputs in [0, 10].
fn random_chain(rng: &mut ChaCha8Rng, max_tasks: usize) -> TaskChain {
    let n = rng.gen_range(2usize..=max_tasks);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(0.0..10.0)))
        .collect();
    TaskChain::from_pairs(&pairs).unwrap()
}

/// A random class-structured platform: `classes ≤ 3` distinct
/// `(speed, failure rate)` classes over `2..=max_processors` processors.
fn random_class_platform(rng: &mut ChaCha8Rng, max_processors: usize) -> Platform {
    let p = rng.gen_range(2usize..=max_processors);
    let classes = rng.gen_range(1usize..=3.min(p));
    let class_specs: Vec<(f64, f64)> = (0..classes)
        .map(|_| {
            (
                rng.gen_range(1.0..8.0),
                10f64.powf(rng.gen_range(-5.0..-2.0)),
            )
        })
        .collect();
    let processors: Vec<Processor> = (0..p)
        .map(|u| {
            let (speed, rate) = class_specs[u % classes];
            Processor::new(speed, rate)
        })
        .collect();
    Platform::new(
        processors,
        rng.gen_range(0.5..4.0),
        10f64.powf(rng.gen_range(-6.0..-3.0)),
        rng.gen_range(2usize..=3),
    )
    .unwrap()
}

/// A period bound keeping a healthy feasibility mix: slack × the whole
/// chain on the fastest processor (slack < 1 forces splitting or fast-class
/// placement; on heterogeneous platforms the largest *task* is far too
/// tight a yardstick because cuts cost communication).
fn period_bound(rng: &mut ChaCha8Rng, chain: &TaskChain, platform: &Platform) -> f64 {
    rng.gen_range(0.5..1.3) * chain.total_work() / platform.max_speed()
}

#[test]
fn algo_het_matches_the_exhaustive_reference_on_small_instances() {
    for_random_cases("algo_het == exhaustive_het", |rng| {
        let chain = random_chain(rng, 8);
        let platform = random_class_platform(rng, 6);
        let oracle = IntervalOracle::new(&chain, &platform);
        assert!(het_dp_applicable(&oracle), "3 classes over ≤ 6 processors");
        let bound = if rng.gen_bool(0.3) {
            None
        } else {
            Some(period_bound(rng, &chain, &platform))
        };
        let dp = algo_het_with_oracle(&oracle, &chain, &platform, bound);
        let brute = exhaustive_het(&chain, &platform, bound);
        match (dp, brute) {
            (Ok(dp), Ok(brute)) => {
                assert!(
                    (dp.reliability - brute.reliability).abs()
                        <= 1e-12 * brute.reliability.max(dp.reliability),
                    "bound {bound:?}: algo_het {} vs exhaustive {}",
                    dp.reliability,
                    brute.reliability
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (dp, brute) => panic!(
                "feasibility mismatch under bound {bound:?}: algo_het {} vs exhaustive {}",
                dp.is_ok(),
                brute.is_ok()
            ),
        }
    });
}

#[test]
fn algo_het_is_never_below_greedy_and_respects_the_bound() {
    // Paper-scale class-structured instances (n = 15, p = 10, 3 classes):
    // too big for the exhaustive reference, but the ≥-greedy invariant and
    // the bound must hold everywhere.
    let generator = InstanceGenerator::paper_heterogeneous_classes(0x0C1A55);
    for (index, instance) in generator.batch(CASES as usize).into_iter().enumerate() {
        let chain = &instance.chain;
        let platform = &instance.heterogeneous;
        let oracle = IntervalOracle::new(chain, platform);
        let mut rng = ChaCha8Rng::seed_from_u64(0x0C1A_5600 + index as u64);
        let bound = period_bound(&mut rng, chain, platform);
        let greedy = greedy_het_with_oracle(&oracle, chain, platform, Some(bound));
        let dp = algo_het_with_oracle(&oracle, chain, platform, Some(bound));
        match (&dp, &greedy) {
            (Ok(dp), Ok(greedy)) => {
                assert!(
                    dp.reliability >= greedy.reliability,
                    "instance {index}: algo_het {} below greedy {}",
                    dp.reliability,
                    greedy.reliability
                );
            }
            (Err(_), Ok(_)) => {
                panic!("instance {index}: greedy solved but algo_het did not")
            }
            _ => {}
        }
        if let Ok(dp) = &dp {
            let eval = MappingEvaluation::evaluate(chain, platform, &dp.mapping);
            assert!(
                eval.worst_case_period <= bound,
                "instance {index}: period {} exceeds bound {bound}",
                eval.worst_case_period
            );
            // The reported reliability is the exact Eq. 9 value.
            assert_eq!(dp.reliability, eval.reliability);
        }
    }
}

#[test]
fn the_exact_dp_wins_strictly_on_some_instances() {
    // The gain is the point of the refactor: across the paper-scale batch,
    // the exact DP must beat the greedy strictly at least once.
    let generator = InstanceGenerator::paper_heterogeneous_classes(0x0C1A55);
    let mut strict_wins = 0;
    let mut exact_solves = 0;
    for instance in generator.batch(30) {
        let oracle = IntervalOracle::new(&instance.chain, &instance.heterogeneous);
        let bound = 0.7 * instance.chain.total_work() / instance.heterogeneous.max_speed();
        let dp = algo_het(&instance.chain, &instance.heterogeneous, Some(bound));
        let greedy = greedy_het_with_oracle(
            &oracle,
            &instance.chain,
            &instance.heterogeneous,
            Some(bound),
        );
        if let Ok(dp) = &dp {
            if dp.method == HetMethod::ClassDp {
                exact_solves += 1;
            }
        }
        if let (Ok(dp), Ok(greedy)) = (dp, greedy) {
            if dp.reliability > greedy.reliability {
                strict_wins += 1;
            }
        }
    }
    assert!(
        exact_solves > 0,
        "the class DP never ran on 3-class platforms"
    );
    assert!(
        strict_wins > 0,
        "the exact DP never strictly beat the greedy across 30 instances"
    );
}

#[test]
fn chunked_class_dp_matches_the_scalar_kernel_mapping_for_mapping() {
    // The chunked het kernel maximizes over bit-identical candidate values
    // and recovers the scalar kernel's first-winner choices post hoc, so
    // feasibility verdicts, reliabilities (well within the 1e-12 contract)
    // and lowered mappings must all be identical — with and without the
    // greedy-incumbent pruning cut, bounded and unbounded.
    for_random_cases("chunked class DP == scalar class DP", |rng| {
        let chain = random_chain(rng, 12);
        let platform = random_class_platform(rng, 8);
        let oracle = IntervalOracle::new(&chain, &platform);
        assert!(
            het_dp_applicable(&oracle),
            "≤ 3 classes over ≤ 8 processors"
        );
        let bound = if rng.gen_bool(0.3) {
            None
        } else {
            Some(period_bound(rng, &chain, &platform))
        };
        let greedy_incumbent = greedy_het_with_oracle(&oracle, &chain, &platform, bound)
            .map(|g| g.reliability)
            .unwrap_or(0.0);
        for incumbent in [0.0, greedy_incumbent] {
            let scalar = class_dp_with_kernel(
                &oracle,
                &chain,
                &platform,
                bound,
                incumbent,
                DpKernel::Scalar,
            );
            let chunked = class_dp_with_kernel(
                &oracle,
                &chain,
                &platform,
                bound,
                incumbent,
                DpKernel::Chunked,
            );
            match (scalar, chunked) {
                (Some(scalar), Some(chunked)) => {
                    assert!(
                        (scalar.reliability - chunked.reliability).abs()
                            <= 1e-12 * scalar.reliability.max(chunked.reliability),
                        "bound {bound:?} incumbent {incumbent}: scalar {} vs chunked {}",
                        scalar.reliability,
                        chunked.reliability
                    );
                    assert_eq!(
                        scalar.mapping, chunked.mapping,
                        "bound {bound:?} incumbent {incumbent}: lowered mappings diverged"
                    );
                    assert_eq!(scalar.reliability, chunked.reliability);
                }
                (None, None) => {}
                (scalar, chunked) => panic!(
                    "bound {bound:?} incumbent {incumbent}: feasibility mismatch \
                     (scalar {}, chunked {})",
                    scalar.is_some(),
                    chunked.is_some()
                ),
            }
        }
    });
    // Paper-scale class-structured instances (n = 15, p = 10, 3 classes):
    // the regime the portfolio's Het-Dp backend actually runs in.
    let generator = InstanceGenerator::paper_heterogeneous_classes(0x0C1A55);
    for (index, instance) in generator.batch(20).into_iter().enumerate() {
        let oracle = IntervalOracle::new(&instance.chain, &instance.heterogeneous);
        let mut rng = ChaCha8Rng::seed_from_u64(0x0C1A_5700 + index as u64);
        let bound = Some(period_bound(
            &mut rng,
            &instance.chain,
            &instance.heterogeneous,
        ));
        let incumbent =
            greedy_het_with_oracle(&oracle, &instance.chain, &instance.heterogeneous, bound)
                .map(|g| g.reliability)
                .unwrap_or(0.0);
        let run = |kernel| {
            class_dp_with_kernel(
                &oracle,
                &instance.chain,
                &instance.heterogeneous,
                bound,
                incumbent,
                kernel,
            )
        };
        let (scalar, chunked) = (run(DpKernel::Scalar), run(DpKernel::Chunked));
        assert_eq!(
            scalar.as_ref().map(|s| &s.mapping),
            chunked.as_ref().map(|s| &s.mapping),
            "instance {index}: kernels diverged"
        );
        assert_eq!(
            scalar.map(|s| s.reliability),
            chunked.map(|s| s.reliability),
            "instance {index}"
        );
    }
}

#[test]
fn class_assignment_lowering_round_trips_through_oracle_evaluate() {
    for_random_cases("ClassAssignment::lower round-trips", |rng| {
        let chain = random_chain(rng, 8);
        let platform = random_class_platform(rng, 6);
        let oracle = IntervalOracle::new(&chain, &platform);
        let view = oracle.class_view();

        // A random partition of the chain into at most `p` intervals.
        let n = chain.len();
        let cuts: Vec<usize> = (0..n - 1)
            .filter(|_| rng.gen_bool(0.4))
            .take(platform.num_processors() - 1)
            .collect();
        let partition = IntervalPartition::from_cut_points(&cuts, n).unwrap();

        // A random feasible class assignment: one replica somewhere per
        // interval, then a few random extras within the budgets.
        let mut budgets: Vec<usize> = view.classes().iter().map(|c| c.members).collect();
        let k_max = platform.max_replication();
        let mut counts: Vec<Vec<usize>> = Vec::new();
        for _ in 0..partition.len() {
            let mut row = vec![0usize; view.len()];
            let class = loop {
                let class = rng.gen_range(0..view.len());
                if budgets[class] > 0 {
                    break class;
                }
            };
            row[class] += 1;
            budgets[class] -= 1;
            counts.push(row);
        }
        for _ in 0..rng.gen_range(0usize..4) {
            let j = rng.gen_range(0..counts.len());
            let class = rng.gen_range(0..view.len());
            if budgets[class] > 0 && counts[j].iter().sum::<usize>() < k_max {
                counts[j][class] += 1;
                budgets[class] -= 1;
            }
        }

        let assignment = ClassAssignment::new(counts);
        let mapping = assignment
            .lower(view, &partition, &chain, &platform)
            .expect("budget-respecting assignments lower cleanly");
        // Bit-identical evaluation through the oracle and the direct path.
        let fast = oracle.evaluate(&mapping);
        let slow = MappingEvaluation::evaluate(&chain, &platform, &mapping);
        assert_eq!(fast, slow);
        // And the lowered mapping describes exactly the same assignment.
        assert_eq!(ClassAssignment::from_mapping(view, &mapping), assignment);
        // Lowering is deterministic: doing it again gives the same mapping.
        let again = assignment
            .lower(view, &partition, &chain, &platform)
            .unwrap();
        assert_eq!(mapping, again);
    });
}
