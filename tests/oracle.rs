//! Oracle-equivalence property suite: on hundreds of seeded random
//! instances, every [`IntervalOracle`] query must equal the naive
//! `reliability` / `timing` computation, and the oracle-backed
//! [`MappingEvaluation`] fast path must match the direct evaluator exactly.
//!
//! Reuses the ChaCha8 harness style of `tests/properties.rs`: each case is
//! generated from its own seed, and a failing case re-panics with the seed
//! that reproduces it.

use pipelined_rt::model::{
    reliability, timing, Interval, IntervalOracle, IntervalPartition, Mapping, MappingEvaluation,
    Platform, Processor, TaskChain,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of random instances checked per property (the oracle is the
/// foundation under every solver, so this suite runs more cases than the
/// general property tests).
const CASES: u64 = 200;

fn for_random_cases(property: &str, mut check: impl FnMut(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let seed = 0x0AC1_E000 + case;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            check(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property `{property}` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A random chain of 2..=9 tasks with works in [1, 100] and outputs in
/// [0, 10].
fn random_chain(rng: &mut ChaCha8Rng) -> TaskChain {
    let n = rng.gen_range(2usize..=9);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(0.0..10.0)))
        .collect();
    TaskChain::from_pairs(&pairs).expect("valid generated chain")
}

/// A random platform: homogeneous in half of the cases, heterogeneous with
/// 2..=4 distinct processor classes otherwise.
fn random_platform(rng: &mut ChaCha8Rng) -> Platform {
    let p = rng.gen_range(2usize..=6);
    let k = rng.gen_range(1usize..=3);
    let bandwidth = rng.gen_range(0.5..4.0);
    let link_rate = rng.gen_range(0.0..1e-3);
    if rng.gen_bool(0.5) {
        let speed = rng.gen_range(1.0..4.0);
        let lambda = rng.gen_range(1e-5..1e-2);
        Platform::homogeneous(p, speed, lambda, bandwidth, link_rate, k)
    } else {
        let processors = (0..p)
            .map(|_| Processor::new(rng.gen_range(1.0..10.0), rng.gen_range(1e-5..1e-2)))
            .collect();
        Platform::new(processors, bandwidth, link_rate, k)
    }
    .expect("valid platform")
}

/// A valid random mapping: random contiguous partition, processors dealt
/// round-robin, at most K per interval.
fn random_mapping(rng: &mut ChaCha8Rng, chain: &TaskChain, platform: &Platform) -> Mapping {
    let n = chain.len();
    let p = platform.num_processors();
    let m = rng.gen_range(1usize..=n.min(p));

    let mut cuts: Vec<usize> = Vec::new();
    while cuts.len() < m - 1 {
        let cut = rng.gen_range(0usize..n - 1);
        if !cuts.contains(&cut) {
            cuts.push(cut);
        }
    }
    cuts.sort_unstable();
    let partition = IntervalPartition::from_cut_points(&cuts, n).expect("valid cuts");

    let k = platform.max_replication();
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); m];
    for processor in 0..p {
        let slot = processor % m;
        if sets[slot].len() < k {
            sets[slot].push(processor);
        }
    }
    Mapping::from_partition(&partition, sets, chain, platform)
        .expect("round-robin assignment is structurally valid")
}

const TOL: f64 = 1e-9;

/// Every scalar oracle query agrees with the naive model computation on
/// every interval, processor and replication level of the instance.
#[test]
fn oracle_queries_match_naive_computations() {
    for_random_cases("oracle_queries_match_naive_computations", |rng| {
        let chain = random_chain(rng);
        let platform = random_platform(rng);
        let oracle = IntervalOracle::new(&chain, &platform);
        let n = chain.len();
        let p = platform.num_processors();
        assert_eq!(oracle.len(), n);
        assert_eq!(oracle.num_processors(), p);
        assert_eq!(oracle.is_homogeneous(), platform.is_homogeneous());

        for first in 0..n {
            for last in first..n {
                let itv = Interval { first, last };
                let input_size = if first == 0 {
                    0.0
                } else {
                    chain.output_size(first - 1)
                };
                assert!((oracle.work(first, last) - itv.work(&chain)).abs() < TOL);
                assert!(
                    (oracle.output_comm_time(last) - platform.comm_time(itv.output_size(&chain)))
                        .abs()
                        < TOL
                );
                let slowest = platform.min_speed();
                assert!(
                    (oracle.period_requirement(first, last, slowest)
                        - timing::interval_period_requirement(&chain, &platform, itv, slowest))
                    .abs()
                        < TOL
                );
                for u in 0..p {
                    assert!(
                        (oracle.interval_reliability(u, first, last)
                            - reliability::interval_reliability(&chain, &platform, u, itv))
                        .abs()
                            < TOL
                    );
                    assert!(
                        (oracle.block_reliability(u, first, last)
                            - reliability::replica_block_reliability(
                                &chain,
                                &platform,
                                u,
                                itv,
                                input_size,
                                itv.output_size(&chain),
                            ))
                        .abs()
                            < TOL
                    );
                }
                // Replica sets of growing size, and the per-class dense table.
                let set: Vec<usize> = (0..p).collect();
                for q in 1..=p {
                    assert!(
                        (oracle.replicated_set_reliability(&set[..q], first, last)
                            - reliability::replicated_interval_reliability(
                                &chain,
                                &platform,
                                &set[..q],
                                itv,
                                input_size,
                                itv.output_size(&chain),
                            ))
                        .abs()
                            < TOL
                    );
                    assert!(
                        (oracle.expected_cost(first, last, &set[..q])
                            - timing::expected_cost(&chain, &platform, itv, &set[..q]))
                        .abs()
                            < TOL
                    );
                    assert!(
                        (oracle.worst_case_cost(first, last, &set[..q])
                            - timing::worst_case_cost(&chain, &platform, itv, &set[..q]))
                        .abs()
                            < TOL
                    );
                }
            }
        }

        // The dense table is built from the oracle's factored exponent
        // prefixes (`exp(−ρW_i)·exp(ρW_j)`), so entries can differ from the
        // exact per-interval exponentials by an ulp — but never more than a
        // 1e-12 relative distance, and the row-gather kernel must match the
        // table value for value.
        let mut row = Vec::new();
        for class in 0..oracle.classes().len() {
            let table = oracle.class_block_table(class);
            for first in 0..n {
                for last in first..n {
                    let exact = oracle.class_block_reliability(class, first, last);
                    let tabled = table.get(first, last);
                    assert!(
                        (tabled - exact).abs() <= 1e-12 * exact.abs().max(tabled.abs()),
                        "table {tabled} vs exact {exact}"
                    );
                }
            }
            for last in 0..n {
                oracle.fill_class_block_row(class, last, 0, &mut row);
                for (first, &block) in row.iter().enumerate() {
                    assert_eq!(block, table.get(first, last));
                }
            }
        }
    });
}

/// The oracle-backed evaluation of a full mapping equals the direct
/// evaluator **exactly** (bit-identical), for both homogeneous and
/// heterogeneous platforms.
#[test]
fn oracle_evaluation_matches_direct_evaluator_exactly() {
    for_random_cases(
        "oracle_evaluation_matches_direct_evaluator_exactly",
        |rng| {
            let chain = random_chain(rng);
            let platform = random_platform(rng);
            let oracle = IntervalOracle::new(&chain, &platform);
            let mapping = random_mapping(rng, &chain, &platform);

            let fast = oracle.evaluate(&mapping);
            let direct = MappingEvaluation::evaluate(&chain, &platform, &mapping);
            assert_eq!(
                fast, direct,
                "oracle evaluation diverged from the direct evaluator"
            );
            assert_eq!(
                oracle.mapping_reliability(&mapping),
                reliability::mapping_reliability(&chain, &platform, &mapping)
            );
        },
    );
}
