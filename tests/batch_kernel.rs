//! Batched SoA mega-kernel equivalence suite: on hundreds of seeded random
//! instance *batches*, the lockstep lane-major kernel must agree with the
//! per-instance chunked kernel — same feasibility verdicts, reliabilities
//! within `1e-12`, identical reconstructed mappings — across every bucket
//! width (1, LANES−1, LANES, 3·LANES+1), and the shape-bucketed batch
//! driver must reproduce the unbucketed run front-for-front.
//!
//! Reuses the ChaCha8 harness style of `tests/kernel.rs`: each case is
//! generated from its own seed, and a failing case re-panics with the seed
//! that reproduces it.

use pipelined_rt::algorithms::{
    reliability_dp_with_kernel, solve_batch_with_inner, BatchInner, BatchLane, BatchScratch,
    DpKernel, LANES,
};
use pipelined_rt::model::{IntervalOracle, Platform, TaskChain};
use pipelined_rt::portfolio::{
    BatchConfig, BatchDriver, BoundsPolicy, PortfolioEngine, ProblemInstance,
};
use pipelined_rt::workload::InstanceGenerator;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Number of random instance batches checked per property.
const CASES: u64 = 200;

fn for_random_cases(property: &str, mut check: impl FnMut(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let seed = 0x0BA7_C000 + case;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            check(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property `{property}` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A random chain of exactly `n` tasks with works in [1, 100] and outputs
/// in [0, 10] — the batch requires one shape, so `n` is fixed per batch
/// while the numerics differ per lane.
fn random_chain(rng: &mut ChaCha8Rng, n: usize) -> TaskChain {
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(0.0..10.0)))
        .collect();
    TaskChain::from_pairs(&pairs).expect("valid generated chain")
}

/// A random homogeneous platform of exactly `p` processors with replication
/// cap `k_max` (batch shape), with per-lane speed and failure numerics.
fn random_homogeneous_platform(rng: &mut ChaCha8Rng, p: usize, k_max: usize) -> Platform {
    Platform::homogeneous(
        p,
        rng.gen_range(1.0..4.0),
        rng.gen_range(1e-5..1e-2),
        rng.gen_range(0.5..4.0),
        rng.gen_range(0.0..1e-3),
        k_max,
    )
    .expect("valid platform")
}

/// A random period bound keeping a healthy feasible/infeasible mix.
fn random_period_bound(rng: &mut ChaCha8Rng, chain: &TaskChain, platform: &Platform) -> f64 {
    let speed = platform.speed(0);
    let floor = chain.max_task_work() / speed;
    let ceiling = chain.total_work() / speed;
    rng.gen_range(0.8 * floor..1.2 * ceiling)
}

/// The batched SoA kernel — both the lockstep and the register-blocked
/// inner sweep — agrees with the per-instance chunked kernel on every lane
/// of seeded same-shape batches of width 1, LANES−1, LANES, and 3·LANES+1
/// (exercising full chunks, partial tail chunks, and the padded-lane
/// masking), with a per-lane mix of unbounded (Algorithm 1) and
/// period-bounded (Algorithm 2) solves.
#[test]
fn batched_kernel_matches_the_per_instance_chunked_kernel() {
    let widths = [1, LANES - 1, LANES, 3 * LANES + 1];
    let mut scratch = BatchScratch::new(); // reused across cases, like a driver's
    for_random_cases(
        "batched_kernel_matches_the_per_instance_chunked_kernel",
        |rng| {
            let width = widths[rng.gen_range(0..widths.len())];
            let n = rng.gen_range(2usize..=12);
            let p = rng.gen_range(2usize..=8);
            let k_max = rng.gen_range(1usize..=3);

            let mut chains = Vec::with_capacity(width);
            let mut platforms = Vec::with_capacity(width);
            let mut bounds = Vec::with_capacity(width);
            for _ in 0..width {
                let chain = random_chain(rng, n);
                let platform = random_homogeneous_platform(rng, p, k_max);
                let bound = rng
                    .gen_bool(0.5)
                    .then(|| random_period_bound(rng, &chain, &platform));
                chains.push(chain);
                platforms.push(platform);
                bounds.push(bound);
            }
            let oracles: Vec<IntervalOracle> = chains
                .iter()
                .zip(&platforms)
                .map(|(chain, platform)| IntervalOracle::new(chain, platform))
                .collect();
            let lanes: Vec<BatchLane> = (0..width)
                .map(|lane| BatchLane {
                    oracle: &oracles[lane],
                    chain: &chains[lane],
                    platform: &platforms[lane],
                    period_bound: bounds[lane],
                })
                .collect();

            for inner in [BatchInner::Lockstep, BatchInner::Blocked] {
                let batched = solve_batch_with_inner(&lanes, inner, &mut scratch);
                assert_eq!(batched.len(), width);
                for lane in 0..width {
                    let reference = reliability_dp_with_kernel(
                        &oracles[lane],
                        &chains[lane],
                        &platforms[lane],
                        bounds[lane],
                        DpKernel::Chunked,
                    );
                    match (&batched[lane], &reference) {
                        (Some(a), Some(b)) => {
                            assert!(
                                (a.reliability - b.reliability).abs()
                                    <= 1e-12 * a.reliability.abs().max(b.reliability.abs()),
                                "lane {lane}/{width} ({inner:?}) diverged: batched {} vs \
                             per-instance {} (bound {:?})",
                                a.reliability,
                                b.reliability,
                                bounds[lane]
                            );
                            assert_eq!(
                                a.mapping, b.mapping,
                                "lane {lane}/{width} ({inner:?}) reconstructed a different \
                             mapping (bound {:?})",
                                bounds[lane]
                            );
                        }
                        (None, None) => {}
                        (a, b) => panic!(
                            "lane {lane}/{width} ({inner:?}) feasibility mismatch (bound {:?}): \
                         batched={} per-instance={}",
                            bounds[lane],
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
            }
        },
    );
}

/// Near-shape padding: batches whose lanes share `(p, k_max)` but have
/// **different task counts** — shorter lanes padded to the longest lane
/// with NaN-masked dead rows — agree with the per-instance chunked kernel
/// bit for bit on every lane, across widths straddling LANES (partial
/// chunk, full chunk, multi-chunk) and a per-lane mix of unbounded and
/// period-bounded solves.
#[test]
fn padded_mixed_length_batches_match_the_per_instance_chunked_kernel() {
    let widths = [2, LANES - 1, LANES, LANES + 3, 2 * LANES + 1];
    let mut scratch = BatchScratch::new();
    for_random_cases(
        "padded_mixed_length_batches_match_the_per_instance_chunked_kernel",
        |rng| {
            let width = widths[rng.gen_range(0..widths.len())];
            let p = rng.gen_range(2usize..=8);
            let k_max = rng.gen_range(1usize..=3);

            let mut chains = Vec::with_capacity(width);
            let mut platforms = Vec::with_capacity(width);
            let mut bounds = Vec::with_capacity(width);
            for _ in 0..width {
                // Per-lane n: the near-shape relaxation under test.
                let n = rng.gen_range(2usize..=12);
                let chain = random_chain(rng, n);
                let platform = random_homogeneous_platform(rng, p, k_max);
                let bound = rng
                    .gen_bool(0.5)
                    .then(|| random_period_bound(rng, &chain, &platform));
                chains.push(chain);
                platforms.push(platform);
                bounds.push(bound);
            }
            let oracles: Vec<IntervalOracle> = chains
                .iter()
                .zip(&platforms)
                .map(|(chain, platform)| IntervalOracle::new(chain, platform))
                .collect();
            let lanes: Vec<BatchLane> = (0..width)
                .map(|lane| BatchLane {
                    oracle: &oracles[lane],
                    chain: &chains[lane],
                    platform: &platforms[lane],
                    period_bound: bounds[lane],
                })
                .collect();

            for inner in [BatchInner::Lockstep, BatchInner::Blocked] {
                let batched = solve_batch_with_inner(&lanes, inner, &mut scratch);
                assert_eq!(batched.len(), width);
                for lane in 0..width {
                    let reference = reliability_dp_with_kernel(
                        &oracles[lane],
                        &chains[lane],
                        &platforms[lane],
                        bounds[lane],
                        DpKernel::Chunked,
                    );
                    match (&batched[lane], &reference) {
                        (Some(a), Some(b)) => {
                            assert_eq!(
                                a.reliability.to_bits(),
                                b.reliability.to_bits(),
                                "lane {lane}/{width} n={} ({inner:?}) diverged: batched {} vs \
                                 per-instance {} (bound {:?})",
                                chains[lane].len(),
                                a.reliability,
                                b.reliability,
                                bounds[lane]
                            );
                            assert_eq!(
                                a.mapping,
                                b.mapping,
                                "lane {lane}/{width} n={} ({inner:?}) reconstructed a different \
                                 mapping (bound {:?})",
                                chains[lane].len(),
                                bounds[lane]
                            );
                        }
                        (None, None) => {}
                        (a, b) => panic!(
                            "lane {lane}/{width} n={} ({inner:?}) feasibility mismatch \
                             (bound {:?}): batched={} per-instance={}",
                            chains[lane].len(),
                            bounds[lane],
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
            }
        },
    );
}

/// The shape-bucketed batch driver — full buckets through the mega-kernel,
/// partial buckets flushed at stream end, heterogeneous instances down the
/// per-instance remainder loop — reproduces the unbucketed run's Pareto
/// fronts exactly, front-for-front, on a mixed stream.
#[test]
fn bucketed_driver_equals_the_unbucketed_run_front_for_front() {
    let policy = BoundsPolicy::default();
    // 2 full LANES-wide buckets' worth of homogeneous paper instances (plus
    // stragglers, since paper shapes vary) interleaved with heterogeneous
    // remainder instances.
    let hom: Vec<ProblemInstance> = InstanceGenerator::paper_homogeneous(0xBEEF)
        .batch(2 * LANES + 3)
        .iter()
        .map(|experiment| policy.instance(experiment, false))
        .collect();
    let het: Vec<ProblemInstance> = InstanceGenerator::paper_heterogeneous(0xFACE)
        .batch(4)
        .iter()
        .map(|experiment| policy.instance(experiment, true))
        .collect();
    let mut instances = Vec::new();
    for (index, instance) in hom.into_iter().enumerate() {
        instances.push(instance);
        if let Some(extra) = het.get(index).cloned() {
            instances.push(extra);
        }
    }

    let run = |bucketed: bool| {
        let engine = PortfolioEngine::default().with_threads(1);
        let driver = BatchDriver::new(BatchConfig {
            workers: 3,
            bucketed,
            ..BatchConfig::default()
        });
        let report = driver.run_instances(&engine, instances.clone());
        let fronts: Vec<_> = instances
            .iter()
            .map(|instance| engine.solve(instance).front)
            .collect();
        (report, fronts)
    };
    let (plain_report, plain_fronts) = run(false);
    let (bucket_report, bucket_fronts) = run(true);

    assert_eq!(plain_report.buckets_dispatched, 0);
    assert!(
        bucket_report.buckets_dispatched > 0,
        "same-shape homogeneous instances must form buckets"
    );
    assert_eq!(
        bucket_report.remainder_solves, 4,
        "every heterogeneous instance takes the remainder path"
    );
    assert_eq!(
        bucket_report.bucketed_instances + bucket_report.remainder_solves,
        bucket_report.instances
    );
    assert_eq!(
        plain_report.feasible_instances,
        bucket_report.feasible_instances
    );

    for (index, (plain, bucket)) in plain_fronts.iter().zip(&bucket_fronts).enumerate() {
        let key = |front: &pipelined_rt::portfolio::ParetoFront| -> Vec<_> {
            front
                .points()
                .iter()
                .map(|point| {
                    (
                        point.fingerprint(),
                        point.backend,
                        point.evaluation.reliability.to_bits(),
                        point.evaluation.worst_case_period.to_bits(),
                        point.evaluation.worst_case_latency.to_bits(),
                    )
                })
                .collect()
        };
        assert_eq!(
            key(plain),
            key(bucket),
            "instance {index}: bucketed front diverged from the unbucketed one"
        );
    }
}
