//! Integration tests of the solver-portfolio subsystem against the
//! reference brute-force solver, plus determinism and cache guarantees.

use pipelined_rt::algorithms::exact;
use pipelined_rt::model::{MappingEvaluation, Platform, TaskChain};
use pipelined_rt::portfolio::{
    default_backends, BatchConfig, BatchDriver, BoundsPolicy, Budget, CandidateMapping,
    PortfolioEngine, PortfolioOutcome, ProblemInstance,
};
use pipelined_rt::workload::InstanceGenerator;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A tiny random homogeneous instance within brute-force reach.
fn tiny_instance(rng: &mut ChaCha8Rng) -> ProblemInstance {
    let n = rng.gen_range(2usize..=5);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(5.0..50.0), rng.gen_range(0.0..8.0)))
        .collect();
    let chain = TaskChain::from_pairs(&pairs).expect("valid chain");
    let p = rng.gen_range(2usize..=4);
    let k = rng.gen_range(1usize..=2);
    let platform = Platform::homogeneous(
        p,
        1.0,
        rng.gen_range(1e-4..1e-2),
        1.0,
        rng.gen_range(1e-5..1e-3),
        k,
    )
    .expect("valid platform");
    // Bounds between clearly infeasible and clearly loose.
    let period = chain.max_task_work() * rng.gen_range(0.9..2.0);
    let latency = chain.total_work() * rng.gen_range(0.9..1.5);
    ProblemInstance::new(chain, platform, period, latency).expect("positive bounds")
}

/// The three criteria of a front, for comparisons.
fn criteria(outcome: &PortfolioOutcome) -> Vec<(f64, f64, f64)> {
    outcome
        .front
        .points()
        .iter()
        .map(|p| {
            (
                p.evaluation.reliability,
                p.evaluation.worst_case_period,
                p.evaluation.worst_case_latency,
            )
        })
        .collect()
}

/// On tiny instances the portfolio front is never dominated by the
/// brute-force optimum and always contains a point matching it.
#[test]
fn portfolio_front_contains_and_is_not_dominated_by_brute_force() {
    let engine = PortfolioEngine::default();
    let mut checked_feasible = 0;
    for case in 0..40u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xb0a7 + case);
        let instance = tiny_instance(&mut rng);
        let outcome = engine.solve(&instance);
        assert!(outcome.front.is_mutually_non_dominated(), "case {case}");

        let brute = exact::brute_force(
            &instance.chain,
            &instance.platform,
            instance.period_bound,
            instance.latency_bound,
        );
        match brute {
            Ok(optimum) => {
                checked_feasible += 1;
                let evaluation = MappingEvaluation::evaluate(
                    &instance.chain,
                    &instance.platform,
                    &optimum.mapping,
                );
                let brute_candidate = CandidateMapping {
                    backend: "brute-force",
                    mapping: optimum.mapping.clone(),
                    evaluation,
                };
                // 1. The front contains the brute-force reliability optimum.
                let best = outcome
                    .front
                    .best_reliability()
                    .unwrap_or_else(|| panic!("case {case}: brute force feasible, front empty"));
                assert!(
                    best.evaluation.reliability >= optimum.reliability - 1e-12,
                    "case {case}: front best {} < brute force {}",
                    best.evaluation.reliability,
                    optimum.reliability
                );
                // (and never *beats* the certified optimum)
                assert!(
                    best.evaluation.reliability <= optimum.reliability + 1e-12,
                    "case {case}: front best {} exceeds the optimum {}",
                    best.evaluation.reliability,
                    optimum.reliability
                );
                // 2. No front point is dominated by the brute-force point.
                for point in outcome.front.points() {
                    assert!(
                        !pipelined_rt::portfolio::pareto::dominates(&brute_candidate, point),
                        "case {case}: brute-force point dominates a front point"
                    );
                }
            }
            Err(_) => {
                // No feasible mapping exists: the portfolio must agree.
                assert!(
                    outcome.front.is_empty(),
                    "case {case}: portfolio found a mapping where brute force proved none exists"
                );
            }
        }
    }
    assert!(
        checked_feasible >= 10,
        "too few feasible cases ({checked_feasible}) to be meaningful"
    );
}

/// Same seed ⇒ identical front, across engines, thread counts and the
/// cache-hit path.
#[test]
fn cache_and_determinism_same_seed_identical_front() {
    let generator = InstanceGenerator::paper_homogeneous(99);
    let bounds = BoundsPolicy {
        period_slack: 1.6,
        latency_slack: 1.25,
    };
    let instance = bounds.instance(&generator.instance(4), false);

    // Two independent engines agree (no shared state).
    let engine_a = PortfolioEngine::default();
    let engine_b = PortfolioEngine::default().with_threads(1);
    let first = engine_a.solve(&instance);
    let other = engine_b.solve(&instance);
    assert!(!first.from_cache);
    assert_eq!(criteria(&first), criteria(&other));

    // The cache-hit answer is identical to the computed one.
    let cached = engine_a.solve(&instance);
    assert!(cached.from_cache);
    assert_eq!(criteria(&first), criteria(&cached));
    assert_eq!(engine_a.cache_stats().hits, 1);

    // Regenerating the same seed gives the same instance, hence a cache hit.
    let regenerated = bounds.instance(&InstanceGenerator::paper_homogeneous(99).instance(4), false);
    assert_eq!(instance, regenerated);
    let rehit = engine_a.solve(&regenerated);
    assert!(rehit.from_cache);
    assert_eq!(criteria(&first), criteria(&rehit));
}

/// The example's batch configuration really runs at least five backends and
/// produces mutually non-dominated fronts (the acceptance criterion of the
/// portfolio_race example, asserted here in miniature).
#[test]
fn batch_races_at_least_five_backends_with_non_dominated_fronts() {
    let budget = Budget {
        max_exhaustive_tasks: 15,
        ..Budget::default()
    };
    let engine = PortfolioEngine::new(default_backends(), budget).with_threads(1);
    let driver = BatchDriver::new(BatchConfig {
        bounds: BoundsPolicy {
            period_slack: 1.6,
            latency_slack: 1.25,
        },
        ..BatchConfig::default()
    });
    let generator = InstanceGenerator::paper_homogeneous(2024);
    let report = driver.run(&engine, generator.stream(20));
    assert_eq!(report.instances, 20);
    assert!(report.feasible_instances > 0);
    assert!(report.throughput() > 0.0);
    let backends_run = report.backend_stats.iter().filter(|s| s.runs > 0).count();
    assert!(backends_run >= 5, "only {backends_run} backends ran");

    // Every front produced under this configuration is non-dominated.
    let bounds = BoundsPolicy {
        period_slack: 1.6,
        latency_slack: 1.25,
    };
    for index in 0..20 {
        let instance = bounds.instance(&generator.instance(index), false);
        let outcome = engine.solve(&instance);
        assert!(
            outcome.front.is_mutually_non_dominated(),
            "instance {index}"
        );
    }
}
