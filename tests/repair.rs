//! The repair differential battery: 200 seeded `(instance, delta)` pairs
//! checking the self-healing pipeline against cold-path oracles.
//!
//! | pair | contract |
//! |---|---|
//! | `IntervalOracle::apply_delta` vs fresh oracle | every block-reliability query within 1e-12 relative (debug builds additionally assert **bit** identity inside `apply_delta`) |
//! | `RepairSession::apply` vs cold exact solve | identical reliability on homogeneous platforms |
//! | `RepairSession::apply` vs greedy | never less reliable on heterogeneous platforms; bounds exactly respected |
//! | `repair_minimize_period_with_scratch` vs cold period optimizer | identical certified optimum |
//! | `monte_carlo_with_repair` | seeded fault-injection demo: segments split, reliability recovers |
//!
//! Reuses the ChaCha8 harness style of `tests/differential.rs`: each case is
//! generated from its own seed, and a failing case re-panics with the seed
//! that reproduces it.

use pipelined_rt::algorithms::{
    greedy_het_with_oracle, minimize_period_with_reliability_bound_with_scratch,
    optimize_reliability_homogeneous, repair_minimize_period_with_scratch, AlgoError, DpScratch,
};
use pipelined_rt::model::{
    IntervalOracle, Platform, PlatformBuilder, PlatformDelta, Processor, TaskChain,
};
use pipelined_rt::repair::{monte_carlo_with_repair, RepairSession, RepairTier};
use pipelined_rt::sim::{FaultEvent, FaultPlan, MonteCarloConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 50;

fn for_random_cases(property: &str, base_seed: u64, mut check: impl FnMut(&mut ChaCha8Rng)) {
    for case in 0..CASES {
        let seed = base_seed + case;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            check(&mut rng);
        }));
        if outcome.is_err() {
            panic!("property `{property}` failed for ChaCha8 seed {seed:#x}");
        }
    }
}

/// A random chain of `2..=max_tasks` tasks with works in [1, 100] and
/// outputs in [0, 10].
fn random_chain(rng: &mut ChaCha8Rng, max_tasks: usize) -> TaskChain {
    let n = rng.gen_range(2usize..=max_tasks);
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(1.0..100.0), rng.gen_range(0.0..10.0)))
        .collect();
    TaskChain::from_pairs(&pairs).unwrap()
}

/// A random homogeneous platform of `2..=max_processors` processors.
fn random_hom_platform(rng: &mut ChaCha8Rng, max_processors: usize) -> Platform {
    Platform::homogeneous(
        rng.gen_range(2usize..=max_processors),
        rng.gen_range(1.0..8.0),
        10f64.powf(rng.gen_range(-6.0..-3.0)),
        rng.gen_range(0.5..4.0),
        10f64.powf(rng.gen_range(-7.0..-4.0)),
        rng.gen_range(2usize..=3),
    )
    .unwrap()
}

/// A random `≤ 3`-class heterogeneous platform.
fn random_het_platform(rng: &mut ChaCha8Rng, max_processors: usize) -> Platform {
    let p = rng.gen_range(3usize..=max_processors);
    let classes = rng.gen_range(2usize..=3.min(p));
    let class_specs: Vec<(f64, f64)> = (0..classes)
        .map(|_| {
            (
                rng.gen_range(1.0..8.0),
                10f64.powf(rng.gen_range(-5.0..-2.0)),
            )
        })
        .collect();
    let processors: Vec<Processor> = (0..p)
        .map(|u| {
            let (speed, rate) = class_specs[u % classes];
            Processor::new(speed, rate)
        })
        .collect();
    Platform::new(
        processors,
        rng.gen_range(0.5..4.0),
        10f64.powf(rng.gen_range(-6.0..-3.0)),
        rng.gen_range(2usize..=3),
    )
    .unwrap()
}

/// One random valid delta for the given instance (all four kinds).
fn random_delta(rng: &mut ChaCha8Rng, chain: &TaskChain, platform: &Platform) -> PlatformDelta {
    let p = platform.num_processors();
    match rng.gen_range(0usize..4) {
        0 => PlatformDelta::ProcessorFailed(rng.gen_range(0..p)),
        1 => PlatformDelta::SpeedDegraded {
            processor: rng.gen_range(0..p),
            factor: rng.gen_range(0.2..1.0),
        },
        2 => PlatformDelta::RateRevised {
            processor: rng.gen_range(0..p),
            rate: 10f64.powf(rng.gen_range(-6.0..-2.0)),
        },
        _ => PlatformDelta::TaskWorkRevised {
            task: rng.gen_range(0..chain.len()),
            work: rng.gen_range(1.0..200.0),
        },
    }
}

/// Every block-reliability query of `incremental` must match `fresh` to
/// 1e-12 relative (they are the same instance by construction).
fn assert_oracles_agree(
    incremental: &IntervalOracle,
    fresh: &IntervalOracle,
    n: usize,
    context: &str,
) {
    assert_eq!(
        incremental.classes().len(),
        fresh.classes().len(),
        "{context}: class count"
    );
    for class in 0..fresh.classes().len() {
        for first in 0..n {
            for last in first..n {
                let a = incremental.class_block_reliability(class, first, last);
                let b = fresh.class_block_reliability(class, first, last);
                assert!(
                    (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                    "{context}: block ({class}, {first}, {last}): {a} vs {b}"
                );
            }
        }
    }
    for j in 0..n {
        let a = incremental.input_comm_time(j);
        let b = fresh.input_comm_time(j);
        assert!(
            (a - b).abs() <= 1e-12 * b.abs().max(1.0),
            "{context}: input comm {j}: {a} vs {b}"
        );
    }
}

/// 200 seeded `(instance, delta)` pairs (50 cases × 4 deltas each, split
/// across homogeneous and heterogeneous platforms): the incrementally
/// updated oracle answers every query like a fresh one. In debug builds
/// `apply_delta` additionally asserts full bitwise identity internally.
#[test]
fn applied_deltas_match_a_fresh_oracle_on_every_query() {
    for_random_cases("apply_delta == fresh oracle", 0x5E1F_0000, |rng| {
        let chain = random_chain(rng, 12);
        let platform = if rng.gen_bool(0.5) {
            random_hom_platform(rng, 6)
        } else {
            random_het_platform(rng, 6)
        };
        for _ in 0..4 {
            let delta = random_delta(rng, &chain, &platform);
            let mut oracle = IntervalOracle::new(&chain, &platform);
            let applied = oracle
                .apply_delta(&chain, &platform, &delta)
                .expect("valid delta");
            let fresh = IntervalOracle::new(&applied.chain, &applied.platform);
            assert_oracles_agree(&oracle, &fresh, applied.chain.len(), &format!("{delta:?}"));
        }
    });
}

/// Homogeneous repairs land on the exact shrunken/revised optimum;
/// heterogeneous repairs never fall below the greedy baseline. Bounds are
/// respected exactly on every repaired mapping.
#[test]
fn repairs_are_exact_or_at_least_greedy() {
    for_random_cases("repair >= greedy", 0x5E1F_1000, |rng| {
        let chain = random_chain(rng, 10);
        let homogeneous = rng.gen_bool(0.5);
        let platform = if homogeneous {
            random_hom_platform(rng, 5)
        } else {
            random_het_platform(rng, 5)
        };
        let Ok(mut session) = RepairSession::new(chain.clone(), platform.clone(), None) else {
            return; // nothing to repair on an unsolvable instance
        };
        let delta = random_delta(rng, &chain, &platform);
        let report = match session.apply(&delta) {
            Ok(report) => report,
            Err(AlgoError::NoFeasibleMapping) => return,
            Err(error) => panic!("unexpected repair error: {error}"),
        };
        // The session's bookkeeping is exact: its reliability is its own
        // mapping's Eq. 9 value on the post-delta instance.
        let evaluation = session.oracle().evaluate(session.mapping());
        assert_eq!(report.reliability, evaluation.reliability);
        if session.oracle().is_homogeneous() {
            let exact = optimize_reliability_homogeneous(session.chain(), session.platform())
                .expect("repaired instance stays solvable");
            assert!(
                (report.reliability - exact.reliability).abs()
                    <= 1e-12 * exact.reliability.max(1e-300),
                "{delta:?}: repaired {} vs exact {}",
                report.reliability,
                exact.reliability
            );
        } else {
            let oracle = IntervalOracle::new(session.chain(), session.platform());
            let greedy = greedy_het_with_oracle(&oracle, session.chain(), session.platform(), None);
            if let Ok(greedy) = greedy {
                assert!(
                    report.reliability >= greedy.reliability - 1e-12 * greedy.reliability,
                    "{delta:?}: repaired {} below greedy {}",
                    report.reliability,
                    greedy.reliability
                );
            }
        }
    });
}

/// Period-bounded repairs respect the bound exactly on the repaired mapping.
#[test]
fn bounded_repairs_respect_the_period_bound_exactly() {
    for_random_cases("bounded repair respects bound", 0x5E1F_2000, |rng| {
        let chain = random_chain(rng, 10);
        let platform = random_hom_platform(rng, 5);
        let bound = rng.gen_range(0.6..1.5) * chain.max_task_work() / platform.speed(0);
        let Ok(mut session) = RepairSession::new(chain.clone(), platform.clone(), Some(bound))
        else {
            return; // bound below the floor: nothing to repair
        };
        let delta = random_delta(rng, &chain, &platform);
        if session.apply(&delta).is_err() {
            return; // delta made the instance infeasible under the bound
        }
        let evaluation = session.oracle().evaluate(session.mapping());
        assert!(
            evaluation.worst_case_period <= bound,
            "{delta:?}: repaired period {} above bound {bound}",
            evaluation.worst_case_period
        );
    });
}

/// Degenerate delta: failing a processor the optimal mapping never used is
/// absorbed by the local-patch tier with bit-identical reliability.
#[test]
fn failing_an_unused_processor_is_a_bit_identical_local_patch() {
    // 2 tasks with K = 1 use at most 2 of the 8 processors.
    let chain = TaskChain::from_pairs(&[(40.0, 2.0), (25.0, 1.0)]).unwrap();
    let platform = Platform::homogeneous(8, 1.0, 1e-4, 1.0, 1e-5, 1).unwrap();
    let mut session = RepairSession::new(chain, platform, None).unwrap();
    let before = session.reliability();
    let report = session.apply(&PlatformDelta::ProcessorFailed(7)).unwrap();
    assert_eq!(report.tier, RepairTier::LocalPatch);
    assert_eq!(report.reliability, before, "bit-identical reliability");
    assert_eq!(report.previous_reliability, before);
}

/// Degenerate delta: failing the last processor is a clean
/// `NoFeasibleMapping`, not a panic — and the session survives it.
#[test]
fn failing_the_last_processor_is_a_clean_error() {
    let chain = TaskChain::from_pairs(&[(30.0, 1.0), (20.0, 2.0)]).unwrap();
    let platform = PlatformBuilder::new()
        .processor(1.0, 1e-4)
        .bandwidth(1.0)
        .link_failure_rate(1e-5)
        .max_replication(1)
        .build()
        .unwrap();
    let mut session = RepairSession::new(chain, platform, None).unwrap();
    let error = session
        .apply(&PlatformDelta::ProcessorFailed(0))
        .unwrap_err();
    assert_eq!(error, AlgoError::NoFeasibleMapping);
    assert_eq!(session.platform().num_processors(), 1);
    // Still answers repairs after the refused delta.
    session
        .apply(&PlatformDelta::TaskWorkRevised {
            task: 1,
            work: 25.0,
        })
        .unwrap();
}

/// Warm-started period minimization lands on the cold optimizer's certified
/// optimum, starting the bracket from a previous (now stale) optimum.
#[test]
fn warm_period_repair_matches_the_cold_optimizer() {
    for_random_cases("warm period_opt == cold", 0x5E1F_3000, |rng| {
        let chain = random_chain(rng, 10);
        let platform = random_hom_platform(rng, 5);
        let oracle = IntervalOracle::new(&chain, &platform);
        let bound = rng.gen_range(0.3..0.9);
        let mut scratch = DpScratch::new();
        let cold = minimize_period_with_reliability_bound_with_scratch(
            &oracle,
            &chain,
            &platform,
            bound,
            &mut scratch,
        );
        // Revise one task's work and re-minimize: cold from scratch vs warm
        // from the stale optimum.
        let delta = PlatformDelta::TaskWorkRevised {
            task: rng.gen_range(0..chain.len()),
            work: rng.gen_range(1.0..200.0),
        };
        let (new_chain, _) = delta.apply(&chain, &platform).unwrap();
        let new_oracle = IntervalOracle::new(&new_chain, &platform);
        let fresh = minimize_period_with_reliability_bound_with_scratch(
            &new_oracle,
            &new_chain,
            &platform,
            bound,
            &mut DpScratch::new(),
        );
        let prev_period = cold.as_ref().map(|c| c.period).unwrap_or(f64::INFINITY);
        let warm = repair_minimize_period_with_scratch(
            &new_oracle,
            &new_chain,
            &platform,
            bound,
            prev_period,
            &mut scratch,
        );
        match (fresh, warm) {
            (Ok(fresh), Ok(warm)) => {
                assert_eq!(
                    fresh.period, warm.period,
                    "warm restart must certify the same optimum"
                );
                assert!(warm.reliability >= bound);
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (fresh, warm) => {
                panic!("cold/warm feasibility disagree: cold {fresh:?} vs warm {warm:?}")
            }
        }
    });
}

/// The seeded fault-injection demo: a noisy platform loses a processor
/// mid-Monte-Carlo, the ladder repairs the mapping live, and the simulation
/// finishes on the repaired mapping with a sane reliability estimate.
#[test]
fn fault_injected_monte_carlo_repairs_live_and_recovers() {
    let chain =
        TaskChain::from_pairs(&[(30.0, 1.0), (20.0, 2.0), (25.0, 1.0), (15.0, 1.0)]).unwrap();
    // Noisy rates so segment estimates are informative at 20k datasets.
    let platform = Platform::homogeneous(5, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
    let mut session = RepairSession::new(chain, platform, None).unwrap();
    let analytic_before = session.reliability();
    let plan = FaultPlan::scripted(vec![
        FaultEvent {
            at_fraction: 0.4,
            delta: PlatformDelta::ProcessorFailed(1),
        },
        FaultEvent {
            at_fraction: 0.7,
            delta: PlatformDelta::ProcessorFailed(0),
        },
    ]);
    let config = MonteCarloConfig {
        num_datasets: 20_000,
        seed: 0xFA_07,
        chunk_size: 2_048,
    };
    let (report, repairs) = monte_carlo_with_repair(&mut session, &config, &plan);
    assert_eq!(report.segments.len(), 3);
    assert_eq!(report.events_applied, 2);
    assert_eq!(report.events_unrepaired, 0);
    assert_eq!(report.datasets, 20_000);
    assert_eq!(repairs.len(), 2);
    assert_eq!(session.platform().num_processors(), 3);
    // Each repair is tracked with its trigger and a positive latency.
    for (repair, event) in repairs.iter().zip(&plan.events) {
        assert_eq!(repair.delta, event.delta);
        assert!(repair.elapsed_nanos > 0);
    }
    // The analytic reliabilities bracket the run: repairs on a shrinking
    // platform can only stay at or below the 5-processor optimum.
    assert!(repairs[0].previous_reliability == analytic_before);
    assert!(session.reliability() <= analytic_before);
    assert!(session.reliability() > 0.9, "repaired mapping still viable");
    // Each segment's Monte-Carlo estimate is within 5σ of its segment's
    // analytic reliability (binomial std dev).
    let analytic = [
        analytic_before,
        repairs[0].reliability,
        repairs[1].reliability,
    ];
    for (segment, &expected) in report.segments.iter().zip(&analytic) {
        let datasets = segment.estimate.datasets as f64;
        let sigma = (expected * (1.0 - expected) / datasets).sqrt();
        assert!(
            (segment.estimate.reliability - expected).abs() <= 5.0 * sigma + 1e-9,
            "segment estimate {} vs analytic {expected} (sigma {sigma})",
            segment.estimate.reliability
        );
    }
    // The repair latency histogram recorded one sample per event.
    let snapshot = pipelined_rt::obs::global().snapshot();
    let histogram = snapshot
        .histogram("repair.latency")
        .expect("repair.latency histogram recorded");
    assert!(histogram.count >= 2);
}
