//! Integration tests of the observability layer as wired through the
//! portfolio engine and batch driver.
//!
//! The global registry and span recorder are shared by every test in the
//! binary (tests run in parallel threads of one process), so these tests
//! assert *presence* and *lower bounds* on the global snapshot — exact-value
//! assertions only ever go against private registries or against the
//! per-batch delta embedded in a [`BatchReport`].

use pipelined_rt::obs::{self, Registry, SpanRecorder};
use pipelined_rt::portfolio::{BatchConfig, BatchDriver, BatchReport, PortfolioEngine};
use pipelined_rt::workload::InstanceGenerator;
use std::sync::Mutex;

/// Serializes the batch-driving tests: the per-batch metrics delta is only
/// exact when no other batch increments the global registry inside its
/// start/end window.
static BATCH_LOCK: Mutex<()> = Mutex::new(());

fn run_small_batch(seed: u64, instances: usize) -> BatchReport {
    let engine = PortfolioEngine::default().with_threads(1);
    let driver = BatchDriver::new(BatchConfig::default());
    let generator = InstanceGenerator::paper_homogeneous(seed);
    driver.run(&engine, generator.stream(instances))
}

#[test]
fn batch_report_embeds_the_per_batch_metrics_delta() {
    let _guard = BATCH_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let report = run_small_batch(0x0B51, 6);
    assert_eq!(report.instances, 6);
    // The embedded snapshot is the delta across exactly this batch: the
    // batch-level counters are exact even though other tests are hammering
    // the same global registry concurrently.
    assert_eq!(report.metrics.counter_value("batch.instances"), Some(6));
    let solve = report
        .metrics
        .histogram("batch.solve")
        .expect("batch.solve histogram in the embedded delta");
    assert_eq!(solve.count, 6);
    assert!(solve.p50_nanos > 0.0);
    assert!(solve.p99_nanos >= solve.p50_nanos);
    let wait = report
        .metrics
        .histogram("batch.queue_wait")
        .expect("batch.queue_wait histogram in the embedded delta");
    // One sample per dequeued instance plus one per worker's terminating
    // empty fetch.
    assert!(wait.count >= 6, "queue_wait count {} < 6", wait.count);
    // Every backend the census says ran must have a solve-time histogram.
    for stats in report.backend_stats.iter().filter(|s| s.runs > 0) {
        let name = format!("backend.solve.{}", stats.backend);
        let histogram = report
            .metrics
            .histogram(&name)
            .unwrap_or_else(|| panic!("missing {name} in the embedded delta"));
        assert!(
            histogram.count as usize >= stats.runs,
            "{name}: {} samples < {} runs",
            histogram.count,
            stats.runs
        );
    }
}

#[test]
fn batch_report_round_trips_through_json() {
    let _guard = BATCH_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let report = run_small_batch(0x0B52, 5);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let parsed: BatchReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(parsed.instances, report.instances);
    assert_eq!(parsed.feasible_instances, report.feasible_instances);
    assert_eq!(parsed.cache_answered, report.cache_answered);
    assert_eq!(parsed.elapsed, report.elapsed);
    assert_eq!(parsed.backend_stats.len(), report.backend_stats.len());
    for (a, b) in parsed.backend_stats.iter().zip(&report.backend_stats) {
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.wins, b.wins);
        assert_eq!(a.front_points, b.front_points);
        assert_eq!(a.total_micros, b.total_micros);
    }
    assert_eq!(
        parsed.metrics.counter_value("batch.instances"),
        report.metrics.counter_value("batch.instances")
    );
    assert_eq!(
        parsed.metrics.histogram("batch.solve").map(|h| h.count),
        report.metrics.histogram("batch.solve").map(|h| h.count)
    );
    // A report serialized before the `metrics` field existed still parses
    // (the field is `#[serde(default)]`): truncate the JSON just before the
    // trailing metrics entry and close the object.
    let truncated = json
        .split("\"metrics\"")
        .next()
        .expect("metrics key present")
        .trim_end()
        .trim_end_matches(',')
        .to_string()
        + "\n}";
    let legacy: BatchReport =
        serde_json::from_str(&truncated).expect("metrics-less report still parses");
    assert_eq!(legacy.instances, report.instances);
    assert!(legacy.metrics.counters.is_empty());
}

#[test]
fn global_registry_sees_the_solver_stack() {
    let _guard = BATCH_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let before = obs::global().snapshot();
    let report = run_small_batch(0x0B53, 4);
    assert_eq!(report.instances, 4);
    let delta = obs::global().snapshot().delta(&before);
    // Cache counter families exist and miss at least once on fresh engines.
    assert!(delta.counter_value("cache.instance.misses").unwrap_or(0) >= 4);
    assert!(delta.counter_value("cache.oracle.misses").unwrap_or(0) >= 1);
    assert!(
        delta.counter_value("cache.scratch.hits").is_some()
            && delta.counter_value("cache.scratch.misses").is_some(),
        "scratch-pool counters missing from the global registry"
    );
    // The DP kernel ran and recorded both its span histogram and row sweeps.
    assert!(delta.counter_value("dp.kernel.row_sweeps").unwrap_or(0) > 0);
    let kernel = delta
        .histogram("span.dp.kernel")
        .expect("span.dp.kernel histogram");
    assert!(kernel.count > 0, "no dp.kernel spans recorded");
    let engine = delta
        .histogram("span.engine.solve")
        .expect("span.engine.solve histogram");
    assert!(engine.count >= 4, "one engine.solve span per instance");
}

#[test]
fn bucketed_batch_records_the_mega_kernel_metrics() {
    let _guard = BATCH_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let engine = PortfolioEngine::default().with_threads(1);
    let driver = BatchDriver::new(BatchConfig {
        workers: 2,
        bucketed: true,
        ..BatchConfig::default()
    });
    let generator = InstanceGenerator::paper_homogeneous(0x0B54);
    let report = driver.run(&engine, generator.stream(10));
    assert_eq!(report.instances, 10);
    // Every homogeneous paper instance is bucket-eligible.
    assert!(report.buckets_dispatched > 0);
    assert_eq!(report.bucketed_instances, 10);
    assert_eq!(report.remainder_solves, 0);
    let metrics = &report.metrics;
    assert_eq!(
        metrics.counter_value("dp.batch.buckets"),
        Some(report.buckets_dispatched as u64)
    );
    // One lanes_occupied sample per kernel chunk dispatch; each bucketed
    // instance occupies a lane in at least the Algo-1 pass.
    assert!(
        metrics
            .counter_value("dp.batch.lanes_occupied")
            .unwrap_or(0)
            >= report.bucketed_instances as u64
    );
    assert_eq!(
        metrics
            .counter_value("dp.batch.remainder_solves")
            .unwrap_or(0),
        0
    );
    let kernel_span = metrics
        .histogram("span.dp.batch_kernel")
        .expect("span.dp.batch_kernel histogram in the embedded delta");
    assert!(
        kernel_span.count as usize >= report.buckets_dispatched,
        "at least one mega-kernel span per dispatched bucket"
    );
    let occupancy = metrics
        .histogram("batch.lane_occupancy")
        .expect("batch.lane_occupancy histogram in the embedded delta");
    assert_eq!(kernel_span.count, occupancy.count);
}

#[test]
fn het_lat_label_arenas_are_pooled_through_the_scratch() {
    let _guard = BATCH_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let chain = pipelined_rt::model::TaskChain::from_pairs(&[
        (30.0, 2.0),
        (10.0, 8.0),
        (25.0, 1.0),
        (40.0, 3.0),
    ])
    .expect("valid chain");
    let platform = pipelined_rt::model::PlatformBuilder::new()
        .processor(4.0, 1e-3)
        .processor(2.0, 1e-3)
        .processor(1.0, 1e-3)
        .processor(3.0, 1e-3)
        .bandwidth(1.0)
        .link_failure_rate(1e-4)
        .max_replication(2)
        .build()
        .expect("valid platform");
    let oracle = pipelined_rt::model::IntervalOracle::new(&chain, &platform);

    let before = obs::global().snapshot();
    let mut scratch = pipelined_rt::algorithms::DpScratch::new();
    for _ in 0..3 {
        let solution = pipelined_rt::algorithms::algo_het_lat_with_scratch(
            &oracle,
            &chain,
            &platform,
            Some(50.0),
            150.0,
            &mut scratch,
        )
        .expect("tri-criteria instance is solvable");
        assert!(solution.reliability > 0.0);
    }
    let delta = obs::global().snapshot().delta(&before);
    // First solve grows the label arenas (miss); the two repeats reuse the
    // pooled allocations through the shared scratch (hits).
    assert_eq!(delta.counter_value("het_lat.label_pool.misses"), Some(1));
    assert_eq!(delta.counter_value("het_lat.label_pool.hits"), Some(2));
}

#[test]
fn span_recorder_captures_nested_solver_spans() {
    let registry = Registry::new();
    let recorder = SpanRecorder::new(registry, 1024);
    let chain = pipelined_rt::model::TaskChain::from_pairs(&[(30.0, 2.0), (20.0, 1.0)])
        .expect("valid chain");
    let platform =
        pipelined_rt::model::Platform::homogeneous(3, 1.0, 1e-5, 1.0, 1e-6, 2).expect("platform");
    {
        let _outer = recorder.span("test.outer");
        let _inner = recorder.span("test.inner");
        let _oracle = pipelined_rt::model::IntervalOracle::new(&chain, &platform);
    }
    // The private recorder only sees its own spans (oracle.build went to the
    // global recorder), but nesting and paths are attributed on this one.
    let records = recorder.records();
    assert_eq!(records.len(), 2);
    let inner = records.iter().find(|r| r.name == "test.inner").unwrap();
    let outer = records.iter().find(|r| r.name == "test.outer").unwrap();
    assert_eq!(inner.path, "test.outer;test.inner");
    assert_eq!(outer.path, "test.outer");
    assert!(outer.duration_nanos >= inner.duration_nanos);
}

#[test]
fn disabled_runtime_toggle_stops_new_samples() {
    let registry = Registry::new();
    registry.counter("toggled").inc();
    registry.set_enabled(false);
    registry.counter("toggled").inc();
    registry.set_enabled(true);
    registry.counter("toggled").inc();
    assert_eq!(registry.snapshot().counter_value("toggled"), Some(2));
}
