//! # pipelined-rt
//!
//! A from-scratch Rust reproduction of *Reliability and performance
//! optimization of pipelined real-time systems* (Benoit, Dufossé, Girault,
//! Robert — ICPP'10, extended in JPDC'13).
//!
//! A pipelined real-time system is a linear chain of tasks executed
//! repeatedly on a distributed platform. The chain is split into *intervals*
//! of consecutive tasks; each interval is *replicated* on up to `K`
//! processors to survive transient failures of processors and communication
//! links. Three antagonistic criteria are optimized: the **reliability** of a
//! mapping, its **period** (inverse throughput), and its input-output
//! **latency**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`obs`] | lock-light metrics registry, structured spans, latency histograms |
//! | [`model`] | chains, platforms, interval mappings, the five-criteria evaluation (Eqs. 1–9) |
//! | [`rbd`] | reliability block diagrams: exact evaluation, minimal cut sets, routing operations |
//! | [`lp`] | a small simplex + branch-and-bound ILP solver (the CPLEX substitute) |
//! | [`algorithms`] | Algorithms 1–4, Algo-Alloc, the Section 7 heuristics, exact solvers |
//! | [`sim`] | discrete-event Monte-Carlo failure-injection simulator |
//! | [`workload`] | seeded random instance generators matching the paper's setup |
//! | [`repair`] | self-healing pipeline: platform deltas, graded mapping repair, fault-injected simulation |
//! | [`portfolio`] | parallel solver-portfolio engine: backend racing, Pareto aggregation, instance cache, batch driver |
//! | [`serve`] | long-lived solver service: JSON-lines facades, bounded ingress, deadline shedding, request coalescing |
//! | [`experiments`] | the harness regenerating Figures 6–15 |
//!
//! ## Quick start
//!
//! ```
//! use pipelined_rt::model::{MappingEvaluation, Platform, TaskChain};
//! use pipelined_rt::algorithms::{run_heuristic, HeuristicConfig, IntervalHeuristic};
//!
//! // A five-task chain: (work, output data size) pairs.
//! let chain = TaskChain::from_pairs(&[
//!     (40.0, 4.0),
//!     (25.0, 2.0),
//!     (60.0, 8.0),
//!     (30.0, 3.0),
//!     (20.0, 0.0),
//! ]).unwrap();
//!
//! // Six identical processors, K = 3 replicas allowed per interval.
//! let platform = Platform::homogeneous(6, 1.0, 1e-6, 1.0, 1e-5, 3).unwrap();
//!
//! // Find the most reliable mapping with period <= 70 and latency <= 200.
//! let solution = run_heuristic(
//!     &chain,
//!     &platform,
//!     &HeuristicConfig {
//!         interval_heuristic: IntervalHeuristic::MinPeriod,
//!         period_bound: 70.0,
//!         latency_bound: 200.0,
//!     },
//! ).unwrap();
//!
//! let eval = MappingEvaluation::evaluate(&chain, &platform, &solution.mapping);
//! assert!(eval.worst_case_period <= 70.0);
//! assert!(eval.worst_case_latency <= 200.0);
//! assert!(eval.reliability > 0.999);
//! ```
//!
//! ## Exact solving on homogeneous platforms
//!
//! ```
//! use pipelined_rt::model::{Platform, TaskChain};
//! use pipelined_rt::algorithms::{exact, optimize_reliability_homogeneous};
//!
//! let chain = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0)]).unwrap();
//! let platform = Platform::homogeneous(4, 1.0, 1e-4, 1.0, 1e-5, 2).unwrap();
//!
//! // Algorithm 1 (dynamic programming) and the exhaustive solver agree.
//! let dp = optimize_reliability_homogeneous(&chain, &platform).unwrap();
//! let exact = exact::optimal_homogeneous(&chain, &platform, f64::INFINITY, f64::INFINITY).unwrap();
//! assert!((dp.reliability - exact.reliability).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Observability: metrics registry, spans, latency histograms (re-export of `rpo-obs`).
pub mod obs {
    pub use rpo_obs::*;
}

/// Application, platform, failure and replication models (re-export of `rpo-model`).
pub mod model {
    pub use rpo_model::*;
}

/// Reliability block diagrams (re-export of `rpo-rbd`).
pub mod rbd {
    pub use rpo_rbd::*;
}

/// LP / 0-1 ILP solver (re-export of `rpo-lp`).
pub mod lp {
    pub use rpo_lp::*;
}

/// Optimal algorithms and heuristics (re-export of `rpo-algorithms`).
pub mod algorithms {
    pub use rpo_algorithms::*;
}

/// Discrete-event Monte-Carlo simulator (re-export of `rpo-sim`).
pub mod sim {
    pub use rpo_sim::*;
}

/// Workload and platform generators (re-export of `rpo-workload`).
pub mod workload {
    pub use rpo_workload::*;
}

/// Self-healing pipeline: live mapping repair under platform churn (re-export of `rpo-repair`).
pub mod repair {
    pub use rpo_repair::*;
}

/// Parallel solver-portfolio engine (re-export of `rpo-portfolio`).
pub mod portfolio {
    pub use rpo_portfolio::*;
}

/// Long-lived solver service with admission control (re-export of `rpo-serve`).
pub mod serve {
    pub use rpo_serve::*;
}

/// Experiment harness for Figures 6–15 (re-export of `rpo-experiments`).
pub mod experiments {
    pub use rpo_experiments::*;
}
