//! Throughput-oriented scenario: a streaming video analysis pipeline.
//!
//! A camera produces frames at a fixed rate; the pipeline decodes, filters,
//! detects objects and encodes the annotated stream. The period bound follows
//! from the camera frame rate; the latency bound from the end-to-end delay
//! users tolerate. This example sweeps the number of intervals explicitly to
//! show the period/latency/reliability trade-off that Heur-P and Heur-L
//! navigate automatically.
//!
//! ```text
//! cargo run --release --example video_pipeline
//! ```

use pipelined_rt::algorithms::{
    algo_alloc, heur_l_partition, heur_p_partition, run_heuristic, HeuristicConfig,
    IntervalHeuristic,
};
use pipelined_rt::model::{MappingEvaluation, Platform, TaskChain};

fn main() {
    // Frame processing chain: (work, output size) per frame.
    let chain = TaskChain::from_pairs(&[
        (35.0, 20.0), // demux + decode
        (25.0, 18.0), // de-noise
        (55.0, 18.0), // optical flow
        (90.0, 6.0),  // object detection
        (30.0, 5.0),  // tracking
        (40.0, 12.0), // annotation rendering
        (50.0, 0.0),  // encode + publish
    ])
    .expect("valid chain");

    // Eight identical worker nodes in a rack, gigabit links.
    let platform = Platform::homogeneous(8, 1.0, 5e-7, 2.0, 1e-6, 3).expect("valid platform");

    // 30 fps camera -> period bound; 0.5 s end-to-end budget -> latency bound
    // (one time unit = 1 ms of compute on a reference core).
    let period_bound = 95.0;
    let latency_bound = 400.0;

    println!(
        "video pipeline: {} stages, total work {}",
        chain.len(),
        chain.total_work()
    );
    println!("bounds: period <= {period_bound} (camera rate), latency <= {latency_bound}\n");

    // Manual sweep: how do the two interval heuristics behave as the number of
    // intervals grows?
    println!(
        "{:>10} {:>26} {:>26}",
        "intervals", "Heur-P (period / latency)", "Heur-L (period / latency)"
    );
    for m in 1..=chain.len().min(platform.num_processors()) {
        let mut cells = Vec::new();
        for partition in [heur_p_partition(&chain, m), heur_l_partition(&chain, m)] {
            let mapping = algo_alloc(&chain, &platform, &partition).expect("enough processors");
            let eval = MappingEvaluation::evaluate(&chain, &platform, &mapping);
            cells.push(format!(
                "{:>10.1} / {:>10.1}",
                eval.worst_case_period, eval.worst_case_latency
            ));
        }
        println!("{m:>10} {:>26} {:>26}", cells[0], cells[1]);
    }

    // Automatic selection under the bounds.
    println!();
    for heuristic in [IntervalHeuristic::MinPeriod, IntervalHeuristic::MinLatency] {
        let config = HeuristicConfig {
            interval_heuristic: heuristic,
            period_bound,
            latency_bound,
        };
        match run_heuristic(&chain, &platform, &config) {
            Ok(solution) => println!(
                "{}: picked {} intervals -> period {:.1}, latency {:.1}, failure probability {:.3e}",
                heuristic.name(),
                solution.num_intervals,
                solution.evaluation.worst_case_period,
                solution.evaluation.worst_case_latency,
                solution.evaluation.failure_probability(),
            ),
            Err(error) => println!("{}: no feasible mapping ({error})", heuristic.name()),
        }
    }
}
