//! Races the full solver portfolio over a 500-instance paper-style batch.
//!
//! Every instance (15-task chain, 10-processor homogeneous platform, the
//! paper's Section 8 distributions) is solved by all applicable backends in
//! parallel — Algorithm 1, Algorithm 2, the period minimizer, Heur-L,
//! Heur-P and the exhaustive exact solver — and their candidates are merged
//! into a tri-criteria Pareto front per instance. The run prints the batch
//! throughput, the per-backend win rates, and the Pareto front of one
//! sample instance, and asserts that every front is mutually non-dominated.
//!
//! ```text
//! cargo run --release --example portfolio_race
//! ```

use pipelined_rt::portfolio::{
    BatchConfig, BatchDriver, BoundsPolicy, Budget, PortfolioEngine, ProblemInstance, RunStatus,
};
use pipelined_rt::workload::InstanceGenerator;

const INSTANCES: usize = 500;

fn main() {
    // Allow the exhaustive solver on the paper's 15-task chains so six
    // backends participate (ILP stays gated: branch-and-bound on 15 tasks is
    // out of interactive reach).
    let budget = Budget {
        max_exhaustive_tasks: 15,
        ..Budget::default()
    };
    let engine =
        PortfolioEngine::new(pipelined_rt::portfolio::default_backends(), budget).with_threads(1); // batch-level parallelism saturates the cores
    let driver = BatchDriver::new(BatchConfig {
        bounds: BoundsPolicy {
            period_slack: 1.6,
            latency_slack: 1.25,
        },
        ..BatchConfig::default()
    });

    let generator = InstanceGenerator::paper_homogeneous(2024);
    println!(
        "racing {INSTANCES} paper-style instances over backends {:?}...",
        engine.backend_names()
    );
    let report = driver.run(&engine, generator.stream(INSTANCES));
    println!("\n{report}");

    // Inspect one sample instance in detail, on a cold-cache engine so the
    // per-backend run census is visible (the batch engine would answer from
    // its cache).
    let sample = BoundsPolicy {
        period_slack: 1.6,
        latency_slack: 1.25,
    }
    .instance(&generator.instance(0), false);
    let inspect_engine = PortfolioEngine::new(pipelined_rt::portfolio::default_backends(), budget);
    inspect(&inspect_engine, &sample);

    // Structural sanity: re-solve a handful of instances and check the
    // Pareto front invariant (the test-suite asserts this too).
    for index in 0..10 {
        let instance = BoundsPolicy {
            period_slack: 1.6,
            latency_slack: 1.25,
        }
        .instance(&generator.instance(index), false);
        let outcome = engine.solve(&instance);
        assert!(
            outcome.front.is_mutually_non_dominated(),
            "instance {index}: Pareto front contains a dominated point"
        );
    }
    println!("\nchecked: every sampled Pareto front is mutually non-dominated");
}

fn inspect(engine: &PortfolioEngine, instance: &ProblemInstance) {
    let outcome = engine.solve(instance);
    println!(
        "sample instance: {} tasks, {} processors, P <= {:.1}, L <= {:.1}",
        instance.chain.len(),
        instance.platform.num_processors(),
        instance.period_bound,
        instance.latency_bound,
    );
    for run in &outcome.runs {
        match &run.status {
            RunStatus::Completed => println!(
                "  {:<12} {:>3} candidates, {:>3} feasible, {:>8.1} ms",
                run.backend,
                run.candidates,
                run.feasible,
                run.micros as f64 / 1e3
            ),
            RunStatus::Skipped(reason) => println!("  {:<12} skipped: {reason}", run.backend),
            other => println!("  {:<12} {other:?}", run.backend),
        }
    }
    println!("  Pareto front ({} points):", outcome.front.len());
    for point in outcome.front.points() {
        println!(
            "    [{:<10}] reliability {:.9}  period {:>7.2}  latency {:>7.2}  ({} intervals)",
            point.backend,
            point.evaluation.reliability,
            point.evaluation.worst_case_period,
            point.evaluation.worst_case_latency,
            point.mapping.num_intervals(),
        );
    }
    assert!(outcome.front.is_mutually_non_dominated());
}
