//! Heterogeneous-platform exploration: the same chain is mapped onto a
//! heterogeneous platform and onto homogeneous platforms of equivalent
//! aggregate speed, reproducing in miniature the comparison of Figures 12–15.
//!
//! ```text
//! cargo run --release --example heterogeneous_tradeoff
//! ```

use pipelined_rt::algorithms::{exact, run_heuristic, HeuristicConfig, IntervalHeuristic};
use pipelined_rt::model::{Platform, TaskChain};
use pipelined_rt::workload::{ChainSpec, HeterogeneousPlatformSpec, HomogeneousPlatformSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn solve(chain: &TaskChain, platform: &Platform, period: f64, latency: f64) -> Vec<String> {
    let mut cells = Vec::new();
    for heuristic in [IntervalHeuristic::MinLatency, IntervalHeuristic::MinPeriod] {
        let config = HeuristicConfig {
            interval_heuristic: heuristic,
            period_bound: period,
            latency_bound: latency,
        };
        match run_heuristic(chain, platform, &config) {
            Ok(solution) => cells.push(format!(
                "{:>12.3e}",
                solution.evaluation.failure_probability()
            )),
            Err(_) => cells.push(format!("{:>12}", "infeasible")),
        }
    }
    cells
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let chain = ChainSpec::paper().generate(&mut rng);
    let heterogeneous = HeterogeneousPlatformSpec::paper().generate(&mut rng);
    let homogeneous_speed5 = HomogeneousPlatformSpec::paper_speed5().build();
    let homogeneous_speed1 = HomogeneousPlatformSpec::paper().build();

    let mean_speed: f64 = heterogeneous
        .processors()
        .iter()
        .map(|p| p.speed)
        .sum::<f64>()
        / heterogeneous.num_processors() as f64;
    println!(
        "paper-style instance: {} tasks (total work {:.1}), heterogeneous speeds {:?} (mean {:.1})",
        chain.len(),
        chain.total_work(),
        heterogeneous
            .processors()
            .iter()
            .map(|p| p.speed.round())
            .collect::<Vec<_>>(),
        mean_speed
    );

    println!(
        "\n{:>10} {:>10} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "period",
        "latency",
        "HET Heur-L",
        "HET Heur-P",
        "HOM5 Heur-L",
        "HOM5 Heur-P",
        "HOM1 Heur-L",
        "HOM1 Heur-P"
    );
    for (period, latency) in [
        (20.0, 150.0),
        (40.0, 150.0),
        (60.0, 150.0),
        (50.0, 100.0),
        (50.0, 200.0),
    ] {
        let het = solve(&chain, &heterogeneous, period, latency);
        let hom5 = solve(&chain, &homogeneous_speed5, period, latency);
        let hom1 = solve(&chain, &homogeneous_speed1, period, latency);
        println!(
            "{period:>10.1} {latency:>10.1} | {} {} | {} {} | {} {}",
            het[0], het[1], hom5[0], hom5[1], hom1[0], hom1[1]
        );
    }

    // On the homogeneous platform we can also certify the optimum.
    println!("\nexact optimum on the speed-5 homogeneous platform (P = 50, L = 150):");
    match exact::optimal_homogeneous(&chain, &homogeneous_speed5, 50.0, 150.0) {
        Ok(optimum) => println!(
            "  reliability {:.9}, {} intervals, {} processors used",
            optimum.reliability,
            optimum.mapping.num_intervals(),
            optimum.mapping.processors_used()
        ),
        Err(error) => println!("  {error}"),
    }
}
