//! Energy-aware mapping (the paper's "power consumption" future-work
//! extension): explore how a per-data-set energy budget trades reliability
//! against power when replication is pruned.
//!
//! ```text
//! cargo run --release --example energy_budget
//! ```

use pipelined_rt::algorithms::{
    run_energy_aware_heuristic, run_heuristic, EnergyAwareConfig, HeuristicConfig,
    IntervalHeuristic,
};
use pipelined_rt::model::{energy, Platform, PowerModel, TaskChain};

fn main() {
    // A radar processing chain on an embedded compute cluster.
    let chain = TaskChain::from_pairs(&[
        (45.0, 6.0), // pulse compression
        (30.0, 8.0), // doppler filtering
        (60.0, 4.0), // CFAR detection
        (25.0, 5.0), // clustering
        (40.0, 0.0), // tracking + output
    ])
    .expect("valid chain");
    let platform = Platform::homogeneous(9, 1.0, 5e-4, 1.0, 1e-4, 3).expect("valid platform");

    let base = HeuristicConfig {
        interval_heuristic: IntervalHeuristic::MinPeriod,
        period_bound: 90.0,
        latency_bound: 250.0,
    };
    let power_model = PowerModel {
        static_power: 0.5,
        dynamic_coefficient: 1.0,
        dynamic_exponent: 3.0,
        comm_energy_per_unit: 0.2,
    };

    // Reference: the unbudgeted heuristic.
    let unbudgeted = run_heuristic(&chain, &platform, &base).expect("feasible without a budget");
    let full_energy =
        energy::energy_per_dataset(&chain, &platform, &unbudgeted.mapping, &power_model);
    println!(
        "unbudgeted Heur-P mapping: {} processors, reliability {:.6}, energy {:.1} J/data set\n",
        unbudgeted.mapping.processors_used(),
        unbudgeted.evaluation.reliability,
        full_energy
    );

    println!(
        "{:>10} {:>12} {:>14} {:>16} {:>12} {:>12}",
        "budget", "processors", "energy (J)", "avg power (W)", "reliability", "failure"
    );
    for fraction in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4] {
        let budget = full_energy * fraction;
        let config = EnergyAwareConfig {
            base,
            power_model,
            energy_budget: budget,
        };
        match run_energy_aware_heuristic(&chain, &platform, &config) {
            Ok(solution) => println!(
                "{budget:>10.1} {:>12} {:>14.1} {:>16.2} {:>12.6} {:>12.3e}",
                solution.mapping.processors_used(),
                solution.energy.energy_per_dataset,
                solution.energy.average_power,
                solution.evaluation.reliability,
                solution.evaluation.failure_probability(),
            ),
            Err(error) => println!("{budget:>10.1} {:>12} ({error})", "-"),
        }
    }

    println!(
        "\nInterpretation: as the energy budget shrinks, replicas are pruned one by one \
         (least reliability lost per joule saved first); the period and latency are unaffected \
         on a homogeneous platform, so the budget only trades reliability against power."
    );
}
