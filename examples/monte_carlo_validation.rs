//! Validation of the analytical model (Eqs. 3, 5, 6, 9) against the
//! failure-injection simulator, and of the serial-parallel routing-operation
//! RBD against the exact evaluation of the direct (non series-parallel) RBD.
//!
//! ```text
//! cargo run --release --example monte_carlo_validation
//! ```

use pipelined_rt::model::{
    Interval, MappedInterval, Mapping, MappingEvaluation, PlatformBuilder, TaskChain,
};
use pipelined_rt::rbd::{exact, mapping_rbd};
use pipelined_rt::sim::{monte_carlo, MonteCarloConfig};

fn main() {
    // Failure rates are exaggerated (compared to real hardware) so that the
    // Monte-Carlo estimator converges with a modest number of samples.
    let chain = TaskChain::from_pairs(&[
        (12.0, 3.0),
        (28.0, 5.0),
        (18.0, 2.0),
        (35.0, 7.0),
        (22.0, 0.0),
    ])
    .expect("valid chain");
    let platform = PlatformBuilder::new()
        .processor(2.0, 3e-3)
        .processor(1.5, 2e-3)
        .processor(3.0, 5e-3)
        .processor(1.0, 1e-3)
        .processor(2.5, 4e-3)
        .processor(2.0, 3e-3)
        .bandwidth(1.0)
        .link_failure_rate(1e-3)
        .max_replication(3)
        .build()
        .expect("valid platform");

    let mapping = Mapping::new(
        vec![
            MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 3]),
            MappedInterval::new(Interval { first: 2, last: 3 }, vec![2, 4, 5]),
            MappedInterval::new(Interval { first: 4, last: 4 }, vec![1]),
        ],
        &chain,
        &platform,
    )
    .expect("valid mapping");

    // 1. Closed forms.
    let analytic = MappingEvaluation::evaluate(&chain, &platform, &mapping);
    println!("analytical model (Eqs. 3, 5, 6, 9):");
    println!("  reliability      : {:.6}", analytic.reliability);
    println!("  expected latency : {:.3}", analytic.expected_latency);
    println!("  expected period  : {:.3}", analytic.expected_period);

    // 2. Reliability block diagrams.
    let routed = mapping_rbd::routing_sp_expr(&chain, &platform, &mapping);
    let direct = mapping_rbd::general_rbd(&chain, &platform, &mapping);
    let direct_reliability = exact::factoring(&direct);
    println!("\nreliability block diagrams:");
    println!(
        "  serial-parallel RBD with routing operations : {:.6} ({} blocks, linear-time evaluation)",
        routed.reliability(),
        routed.num_blocks()
    );
    println!(
        "  direct RBD of Figure 4, exact factoring     : {:.6} ({} blocks, exponential evaluation)",
        direct_reliability,
        direct.num_blocks()
    );
    println!(
        "  routing-operation overhead on reliability   : {:.3e}",
        direct_reliability - routed.reliability()
    );

    // 3. Monte-Carlo failure injection.
    let estimate = monte_carlo(
        &chain,
        &platform,
        &mapping,
        &MonteCarloConfig {
            num_datasets: 500_000,
            seed: 2024,
            chunk_size: 16_384,
        },
    );
    println!(
        "\nMonte-Carlo failure injection ({} data sets):",
        estimate.datasets
    );
    println!(
        "  simulated reliability : {:.6} (analytic {:.6}, 95% half-width {:.1e})",
        estimate.reliability,
        analytic.reliability,
        estimate.reliability_confidence95()
    );
    println!(
        "  simulated mean latency: {:.3} (analytic {:.3})",
        estimate.mean_latency, analytic.expected_latency
    );
    println!(
        "  simulated period      : {:.3} (analytic {:.3})",
        estimate.achieved_period, analytic.expected_period
    );

    let reliability_gap = (estimate.reliability - analytic.reliability).abs();
    let latency_gap =
        (estimate.mean_latency - analytic.expected_latency).abs() / analytic.expected_latency;
    println!(
        "\nagreement: |Δreliability| = {reliability_gap:.2e}, relative latency error = {:.2}%",
        latency_gap * 100.0
    );
}
