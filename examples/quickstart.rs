//! Quick start: map a small task chain onto a homogeneous platform with both
//! heuristics, compare them against the exact optimum, and print the five
//! objective values of each mapping.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pipelined_rt::algorithms::{
    exact, run_heuristic, HeuristicConfig, HeuristicSolution, IntervalHeuristic,
};
use pipelined_rt::model::{MappingEvaluation, Platform, TaskChain};

fn describe(name: &str, chain: &TaskChain, platform: &Platform, solution: &HeuristicSolution) {
    let eval = MappingEvaluation::evaluate(chain, platform, &solution.mapping);
    println!("{name}:");
    println!(
        "  intervals          : {}",
        solution.mapping.num_intervals()
    );
    println!(
        "  processors used    : {}",
        solution.mapping.processors_used()
    );
    println!(
        "  replication level  : {:.2}",
        solution.mapping.replication_level()
    );
    println!("  reliability        : {:.9}", eval.reliability);
    println!("  failure probability: {:.3e}", eval.failure_probability());
    println!("  worst-case period  : {:.2}", eval.worst_case_period);
    println!("  worst-case latency : {:.2}", eval.worst_case_latency);
    for (j, mi) in solution.mapping.iter() {
        println!(
            "    interval {j}: tasks {}..={} on processors {:?}",
            mi.interval.first, mi.interval.last, mi.processors
        );
    }
}

fn main() {
    // An eight-task processing chain: (work, output data size).
    let chain = TaskChain::from_pairs(&[
        (55.0, 3.0),
        (20.0, 7.0),
        (80.0, 2.0),
        (35.0, 9.0),
        (45.0, 1.0),
        (70.0, 4.0),
        (25.0, 6.0),
        (40.0, 0.0),
    ])
    .expect("valid chain");

    // Ten identical processors (speed 1, failure rate 1e-6 per time unit),
    // unit-bandwidth links with failure rate 1e-5, at most 3 replicas.
    let platform = Platform::homogeneous(10, 1.0, 1e-6, 1.0, 1e-5, 3).expect("valid platform");

    // Real-time requirements.
    let period_bound = 120.0;
    let latency_bound = 420.0;
    println!(
        "chain of {} tasks, total work {}, bounds: period <= {period_bound}, latency <= {latency_bound}\n",
        chain.len(),
        chain.total_work()
    );

    for heuristic in [IntervalHeuristic::MinPeriod, IntervalHeuristic::MinLatency] {
        let config = HeuristicConfig {
            interval_heuristic: heuristic,
            period_bound,
            latency_bound,
        };
        match run_heuristic(&chain, &platform, &config) {
            Ok(solution) => describe(heuristic.name(), &chain, &platform, &solution),
            Err(error) => println!("{}: no feasible mapping ({error})", heuristic.name()),
        }
        println!();
    }

    // The exact optimum (exhaustive over partitions + Algo-Alloc), for reference.
    match exact::optimal_homogeneous(&chain, &platform, period_bound, latency_bound) {
        Ok(optimum) => {
            println!(
                "exact optimum: reliability {:.9} (failure probability {:.3e}) with {} intervals",
                optimum.reliability,
                1.0 - optimum.reliability,
                optimum.mapping.num_intervals()
            );
        }
        Err(error) => println!("exact optimum: no feasible mapping ({error})"),
    }
}
