//! Automotive (Autosar-style) scenario from the paper's introduction: a
//! brake-by-wire function running as a pipelined real-time system.
//!
//! The chain goes from a wheel-speed sensor driver to the hydraulic brake
//! pressure actuator driver. Each invocation produces a new data set (the
//! sampled wheel angular speed); the function must sustain the sampling rate
//! (period bound), react within the end-to-end timing constraint (latency
//! bound), and reach a target reliability despite transient faults on the
//! ECUs (Electronic Computing Units) and the bus.
//!
//! ```text
//! cargo run --release --example autosar_brake
//! ```

use pipelined_rt::algorithms::{run_heuristic, HeuristicConfig, IntervalHeuristic};
use pipelined_rt::model::{MappingEvaluation, PlatformBuilder, TaskChain};
use pipelined_rt::sim::{monte_carlo, MonteCarloConfig};

fn main() {
    // The brake-by-wire chain. One time unit = 10 µs; data sizes are in bus
    // payload units. Works are worst-case execution times from a (synthetic)
    // WCET analysis.
    let chain = TaskChain::from_pairs(&[
        (12.0, 2.0), // wheel-speed sensor driver + signal conditioning
        (30.0, 4.0), // slip estimation
        (45.0, 6.0), // vehicle dynamics observer (sensor fusion)
        (60.0, 3.0), // ABS / brake-force control law
        (18.0, 1.0), // torque arbitration
        (10.0, 0.0), // hydraulic pressure actuator driver
    ])
    .expect("valid chain");

    // Six ECUs on a shared Autosar bus. ECUs are identical hot-standby capable
    // units; the bus allows each ECU to talk to at most K = 2 peers at full
    // rate (bounded multi-port model).
    let platform = PlatformBuilder::new()
        .identical_processors(6, 1.0, 2e-6)
        .bandwidth(1.0)
        .link_failure_rate(5e-6)
        .max_replication(2)
        .build()
        .expect("valid platform");

    // Requirements: 1 kHz sampling (period 100 time units = 1 ms), 2.5 ms
    // sensor-to-actuator latency, failure probability per data set below 1e-4.
    let period_bound = 100.0;
    let latency_bound = 250.0;
    let max_failure_probability = 1e-4;

    println!(
        "brake-by-wire chain: {} software components, total WCET {}",
        chain.len(),
        chain.total_work()
    );
    println!(
        "requirements: period <= {period_bound}, latency <= {latency_bound}, failure probability <= {max_failure_probability:.0e}\n"
    );

    let mut accepted = None;
    for heuristic in [IntervalHeuristic::MinPeriod, IntervalHeuristic::MinLatency] {
        let config = HeuristicConfig {
            interval_heuristic: heuristic,
            period_bound,
            latency_bound,
        };
        let Ok(solution) = run_heuristic(&chain, &platform, &config) else {
            println!(
                "{}: no mapping meets the timing requirements",
                heuristic.name()
            );
            continue;
        };
        let eval = MappingEvaluation::evaluate(&chain, &platform, &solution.mapping);
        let verdict = if eval.failure_probability() <= max_failure_probability {
            "ACCEPTED"
        } else {
            "rejected (reliability target missed)"
        };
        println!(
            "{}: {} intervals, replication level {:.2}, period {:.1}, latency {:.1}, failure probability {:.3e} -> {verdict}",
            heuristic.name(),
            solution.mapping.num_intervals(),
            solution.mapping.replication_level(),
            eval.worst_case_period,
            eval.worst_case_latency,
            eval.failure_probability(),
        );
        if eval.failure_probability() <= max_failure_probability && accepted.is_none() {
            accepted = Some(solution);
        }
    }

    // Validate the accepted mapping with the failure-injection simulator.
    if let Some(solution) = accepted {
        println!("\nvalidating the accepted mapping with Monte-Carlo failure injection…");
        let estimate = monte_carlo(
            &chain,
            &platform,
            &solution.mapping,
            &MonteCarloConfig {
                num_datasets: 200_000,
                seed: 1,
                chunk_size: 8192,
            },
        );
        println!(
            "  simulated reliability   : {:.6} (+/- {:.1e} at 95% confidence)",
            estimate.reliability,
            estimate.reliability_confidence95()
        );
        println!("  simulated mean latency  : {:.2}", estimate.mean_latency);
        println!(
            "  simulated period        : {:.2}",
            estimate.achieved_period
        );
    } else {
        println!("\nno mapping met the reliability target: add ECUs or raise K");
    }
}
