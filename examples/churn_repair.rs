//! The self-healing pipeline end to end: a seeded platform-churn trace is
//! replayed through a live repair session while a fault-injecting
//! Monte-Carlo simulation keeps running on the (repaired) mapping.
//!
//! One paper-style instance is solved cold, then its platform loses
//! processors according to a [`ChurnTrace`] sampled from the paper's own
//! exponential failure model (plus an adversarial 2-kill burst mid-run).
//! Each kill interrupts the simulation, flows through the graded repair
//! ladder (local patch → warm DP → full solve), and the simulation resumes
//! on the repaired mapping. The run prints each repair's tier, latency, and
//! reliability step, the per-segment Monte-Carlo estimates, and finishes
//! with a churn replay over a whole generated batch.
//!
//! ```text
//! cargo run --release --example churn_repair
//! ```

use pipelined_rt::model::PlatformDelta;
use pipelined_rt::portfolio::{BatchConfig, BatchDriver, ChurnConfig};
use pipelined_rt::repair::{monte_carlo_with_repair, RepairSession};
use pipelined_rt::sim::{FaultEvent, FaultPlan, MonteCarloConfig};
use pipelined_rt::workload::{ChurnSpec, ChurnTrace, InstanceGenerator};

fn main() {
    // One paper-style instance, with rates loud enough that the Monte-Carlo
    // estimates visibly track the analytic reliability per segment.
    let instance = InstanceGenerator::paper_homogeneous(2024)
        .batch(1)
        .remove(0);
    let chain = instance.chain;
    let platform = pipelined_rt::model::Platform::homogeneous(
        instance.homogeneous.num_processors(),
        1.0,
        2e-3,
        1.0,
        1e-4,
        3,
    )
    .expect("noisy demo platform");

    let mut session =
        RepairSession::new(chain.clone(), platform.clone(), None).expect("initial solve");
    println!(
        "initial solve: {} tasks on {} processors, reliability {:.6}",
        chain.len(),
        platform.num_processors(),
        session.reliability()
    );

    // A churn trace over a horizon of ~4 expected lifetimes (rate 2e-3 →
    // mean time-to-failure 500), so the kills spread across the run, plus a
    // 2-kill burst at the midpoint.
    let spec = ChurnSpec {
        horizon: 2e3,
        max_events: 4,
        min_alive: 2,
        burst_kills: 2,
        burst_at: 0.5,
    };
    let trace = ChurnTrace::generate(&platform, &spec, 42);
    let plan = FaultPlan::scripted(
        trace
            .fractions()
            .into_iter()
            .map(|(at_fraction, delta)| FaultEvent { at_fraction, delta })
            .collect(),
    );
    println!("churn trace: {} events inside the horizon", trace.len());

    let config = MonteCarloConfig {
        num_datasets: 200_000,
        seed: 0xC0FFEE,
        chunk_size: 4_096,
    };
    let (report, repairs) = monte_carlo_with_repair(&mut session, &config, &plan);
    for repair in &repairs {
        let delta = match repair.delta {
            PlatformDelta::ProcessorFailed(u) => format!("processor {u} failed"),
            other => format!("{other:?}"),
        };
        println!(
            "  {delta}: {:?} in {:.1}us, reliability {:.6} -> {:.6}",
            repair.tier,
            repair.elapsed_nanos as f64 / 1e3,
            repair.previous_reliability,
            repair.reliability
        );
    }
    for (index, segment) in report.segments.iter().enumerate() {
        println!(
            "  segment {index}: {} datasets, simulated reliability {:.6}",
            segment.estimate.datasets, segment.estimate.reliability
        );
    }
    println!(
        "simulated {} datasets across {} segments: overall reliability {:.6} \
         ({} repairs, {} unrepaired)",
        report.datasets,
        report.segments.len(),
        report.overall_reliability,
        report.events_applied,
        report.events_unrepaired
    );
    assert_eq!(report.events_unrepaired, 0, "the ladder absorbs every kill");
    assert_eq!(report.datasets, config.num_datasets);

    // The same machinery at batch scale: 20 sessions under aggressive churn.
    let churn = ChurnConfig {
        spec,
        ..ChurnConfig::default()
    };
    let batch = BatchConfig::default();
    let generator = InstanceGenerator::paper_homogeneous(7);
    let replay = BatchDriver::default().run_churn(&batch, &churn, generator.stream(20));
    println!("\n{replay}");
    assert_eq!(replay.unrepaired, 0);
}
