//! Vendored offline stand-in for `rand`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the `rand 0.8` API the workspace uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, `gen`, `gen_range`, `gen_bool`,
//! `sample`, and [`distributions::Uniform`]. Generators themselves live in
//! the vendored `rand_chacha` (a genuine ChaCha8 implementation).

/// Low-level generator interface: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values that can be sampled uniformly from a generator's "standard"
/// distribution (the `rng.gen()` entry point).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws a `u64` uniformly below `bound` with the widening-multiply method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $ty
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + uniform_below(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + (self.end() - self.start()) * f64::sample_standard(rng)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Distributions (the `rand::distributions` module subset).
pub mod distributions {
    use super::{RngCore, SampleRange, StandardSample};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (uniform over the natural domain of `T`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }

    /// A uniform distribution over a range of values.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<X> {
        low: X,
        high: X,
        inclusive: bool,
    }

    impl<X: Copy> Uniform<X> {
        /// Uniform over `[low, high)`.
        pub fn new(low: X, high: X) -> Self {
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: X, high: X) -> Self {
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    macro_rules! impl_uniform {
        ($($ty:ty),*) => {$(
            impl Distribution<$ty> for Uniform<$ty> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    if self.inclusive {
                        (self.low..=self.high).sample_from(rng)
                    } else {
                        (self.low..self.high).sample_from(rng)
                    }
                }
            }
        )*};
    }

    impl_uniform!(f64, usize, u64, u32);
}

/// Named generators (the `rand::rngs` module subset). Empty in this shim:
/// the workspace only uses `rand_chacha::ChaCha8Rng`.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::{Rng, RngCore};

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Counter(3);
        let distr = Uniform::new_inclusive(2.5f64, 9.5);
        for _ in 0..1000 {
            let x = distr.sample(&mut rng);
            assert!((2.5..=9.5).contains(&x));
        }
        for _ in 0..1000 {
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }
}
