//! Vendored offline stand-in for `rand_chacha`.
//!
//! Implements [`ChaCha8Rng`]: a real ChaCha stream cipher core with 8 rounds
//! (4 double-rounds), keyed from a 32-byte seed, used as a deterministic
//! pseudo-random generator. The keystream is **not** bit-compatible with the
//! real `rand_chacha` crate (word ordering of the output buffer differs),
//! but it has the same statistical structure and the workspace only relies
//! on determinism, not on a specific stream.

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic generator backed by the ChaCha8 keystream.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, block counter, nonce.
    input: [u32; 16],
    /// Current output block.
    buffer: [u32; 16],
    /// Next unread word of `buffer` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    /// Generates the next 16-word block into `buffer`.
    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, input) in working.iter_mut().zip(self.input.iter()) {
            *out = out.wrapping_add(*input);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12–13.
        let (low, carry) = self.input[12].overflowing_add(1);
        self.input[12] = low;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k"
        let mut input = [0u32; 16];
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            input,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = self.next_u32() as u64;
        let high = self.next_u32() as u64;
        low | (high << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
