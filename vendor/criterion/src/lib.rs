//! Vendored offline stand-in for `criterion`.
//!
//! Provides the API surface the `rpo-bench` suite uses — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], `b.iter(..)` and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock harness: a warm-up pass sizes the batch, then a fixed number of
//! timed batches yield mean / min / max per-iteration times, printed to
//! stdout. There is no statistical analysis, HTML report, or baseline
//! comparison. Set `CRITERION_QUICK=1` to cut sampling for smoke runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(400);
/// Number of timed batches.
const BATCHES: usize = 10;

/// The benchmark driver handed to every registered bench function.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var_os("CRITERION_QUICK").is_some(),
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.quick);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            quick: self.quick,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; recorded throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.quick);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let mut bencher = Bencher::new(self.quick);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier (`group/function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (accepted, not reported, in this shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures closures passed to `iter`.
pub struct Bencher {
    quick: bool,
    samples: Vec<Duration>,
    iters_per_batch: u64,
}

impl Bencher {
    fn new(quick: bool) -> Self {
        Bencher {
            quick,
            samples: Vec::new(),
            iters_per_batch: 0,
        }
    }

    /// Times `routine`, storing per-batch durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the batch so one batch lasts ~TARGET_TIME/BATCHES.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        let batches = if self.quick { 3 } else { BATCHES };
        let target = if self.quick {
            TARGET_TIME / 8
        } else {
            TARGET_TIME
        };
        let per_batch = (target.as_nanos() / batches as u128 / one.as_nanos()).clamp(1, 1_000_000);
        self.iters_per_batch = per_batch as u64;

        self.samples.clear();
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no measurement: iter was never called)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_batch as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        let mut line = String::new();
        let _ = write!(
            line,
            "{label:<60} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
        println!("{line}");
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
