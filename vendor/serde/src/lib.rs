//! Vendored offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors a
//! minimal replacement implementing the subset of serde it uses. Instead of
//! serde's generic data model, the traits here serialize to / deserialize
//! from a concrete JSON [`Value`] tree; `serde_json` (also vendored) supplies
//! the text representation. The derive macros come from the vendored
//! `serde_derive` and support non-generic structs with named fields, enums
//! with unit/newtype/tuple/struct variants (externally tagged), and the
//! `#[serde(default)]` / `#[serde(default = "path")]` field attributes.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value: the concrete data model of the vendored serde shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, remembering whether it was an integer so 64-bit values
/// survive round trips without floating-point truncation.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// An unsigned integer literal.
    U(u64),
    /// A negative integer literal.
    I(i64),
    /// A floating-point literal.
    F(f64),
}

impl Number {
    /// The numeric value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(elements) => Some(elements),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// "expected X while deserializing T".
    pub fn expected(what: &str, type_name: &str) -> Self {
        Error {
            message: format!("expected {what} while deserializing {type_name}"),
        }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, type_name: &str) -> Self {
        Error {
            message: format!("missing field `{field}` while deserializing {type_name}"),
        }
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(variant: &str, type_name: &str) -> Self {
        Error {
            message: format!("unknown variant `{variant}` for {type_name}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the JSON [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization from the JSON [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a field of this type is absent from an object
    /// (`None` = the field is required). `Option<T>` overrides this so
    /// missing optional fields deserialize to `None`, matching real serde.
    fn missing() -> Option<Self> {
        None
    }
}

/// Helper used by the derive macro: ordered-object key lookup.
pub fn __find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Helper used by the derive macro: type-directed missing-field fallback.
pub fn __missing<T: Deserialize>() -> Option<T> {
    T::missing()
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

macro_rules! impl_serde_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_number()
                    .and_then(|n| n.as_u64())
                    .and_then(|u| <$ty>::try_from(u).ok())
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($ty)))
            }
        }
    )*};
}

macro_rules! impl_serde_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_number()
                    .and_then(|n| n.as_i64())
                    .and_then(|i| <$ty>::try_from(i).ok())
                    .ok_or_else(|| Error::expected("integer", stringify!($ty)))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                // Like serde_json: non-finite floats have no JSON form.
                if v.is_finite() { Value::Number(Number::F(v)) } else { Value::Null }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_number()
                    .map(|n| n.as_f64() as $ty)
                    .ok_or_else(|| Error::expected("number", stringify!($ty)))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's Duration form: {"secs": u64, "nanos": u32}.
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::expected("object", "Duration"))?;
        let secs = __find(entries, "secs")
            .ok_or_else(|| Error::expected("secs field", "Duration"))
            .and_then(u64::from_value)?;
        let nanos = __find(entries, "nanos")
            .ok_or_else(|| Error::expected("nanos field", "Duration"))
            .and_then(u32::from_value)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($len:literal => $($idx:tt : $ty:ident),+) => {
        impl<$($ty: Serialize),+> Serialize for ($($ty,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($ty: Deserialize),+> Deserialize for ($($ty,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                if arr.len() != $len {
                    return Err(Error::expected(concat!($len, "-element array"), "tuple"));
                }
                Ok(($($ty::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

impl_serde_tuple!(2 => 0: A, 1: B);
impl_serde_tuple!(3 => 0: A, 1: B, 2: C);
impl_serde_tuple!(4 => 0: A, 1: B, 2: C, 3: D);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
