//! Vendored offline stand-in for `serde_json`.
//!
//! Implements the small API surface this workspace uses — [`from_str`],
//! [`to_string`], [`to_string_pretty`] — on top of the vendored `serde`
//! shim's JSON [`Value`] model: a recursive-descent parser and a pretty
//! printer. Numbers keep their integer/float distinction so `u64` seeds
//! round-trip exactly; non-finite floats serialize as `null`, like the real
//! serde_json.

pub use serde::{Error, Number, Value};

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns a descriptive [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real serde_json API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real serde_json API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on shape mismatches.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {} in JSON input",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found != byte {
            return Err(Error::custom(format!(
                "expected `{}` at offset {}, found `{}`",
                byte as char, self.pos, found as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(elements));
        }
        loop {
            elements.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(elements));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::custom("unterminated string in JSON input"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape in JSON input"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("invalid \\u escape in JSON input"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace;
                            // lone surrogates map to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}` in JSON input",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let text = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in JSON input"))?;
                    let ch = text.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number in JSON input"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}` in JSON input")))
    }
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(elements) => {
            if elements.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, element) in elements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, element, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, entry)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, entry, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, number: Number) {
    match number {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a float marker so the value re-parses as a float.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    // `{}` on f64 prints the shortest round-trippable form.
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_nested_values() {
        let text = r#"{"a": [1, 2.5, -3, 1e-6], "b": {"c": null, "d": "x\ny"}, "e": true}"#;
        let value = parse_value_complete(text).unwrap();
        let printed = to_string(&value).unwrap();
        let reparsed = parse_value_complete(&printed).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let text = format!("{}", u64::MAX);
        let value = parse_value_complete(&text).unwrap();
        assert_eq!(value, Value::Number(Number::U(u64::MAX)));
        assert_eq!(to_string(&value).unwrap(), text);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value_complete("not json").is_err());
        assert!(parse_value_complete("{\"a\": }").is_err());
        assert!(parse_value_complete("[1, 2,]").is_err());
        assert!(parse_value_complete("{} trailing").is_err());
    }
}
