//! Vendored offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! small slice-parallelism subset the workspace uses — `par_iter()` on
//! slices/`Vec`s and `into_par_iter()` on ranges, followed by one `map` and a
//! terminal `collect`/`reduce`/`sum`/`for_each`. Execution is genuinely
//! parallel: the realized item list is split into one contiguous chunk per
//! available core and mapped on scoped `std::thread`s, preserving order.
//! There is no work stealing; for the uniform batch workloads in this
//! repository, static chunking is within noise of rayon's scheduler.

use std::num::NonZeroUsize;

/// Everything needed for `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, MappedParallelIterator, ParallelIterator,
    };
}

/// The number of worker threads to use for `len` items.
fn num_threads(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(len)
        .max(1)
}

/// Maps `items` through `f` on scoped threads, preserving input order.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = num_threads(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// A realized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map`.
pub struct MappedParallelIterator<T, F> {
    items: Vec<T>,
    f: F,
}

/// Entry point: `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The (borrowed) item type.
    type Item: Send + 'a;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Operations shared by the realized and mapped iterator stages.
pub trait ParallelIterator: Sized {
    /// The item type produced by this stage.
    type Item: Send;

    /// Runs the pipeline and returns the items in order.
    fn run(self) -> Vec<Self::Item>;

    /// Collects the results (parallel execution happens here).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Folds the results with `op`, starting from `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.run().into_iter().fold(identity(), op)
    }

    /// Sums the results.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Consumes the results for their side effects.
    fn for_each<F: Fn(Self::Item)>(self, f: F) {
        self.run().into_iter().for_each(f);
    }
}

impl<T: Send> ParIter<T> {
    /// Attaches the mapping stage executed on the worker threads.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MappedParallelIterator<T, F> {
        MappedParallelIterator {
            items: self.items,
            f,
        }
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for MappedParallelIterator<T, F> {
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.items, &self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn mapped_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn par_iter_borrows_and_reduces() {
        let data: Vec<u64> = (1..=100).collect();
        let total: u64 = data.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }
}
