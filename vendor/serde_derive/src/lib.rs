//! Vendored offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real
//! `serde`/`serde_derive` cannot be fetched. This crate re-implements the
//! subset of the derive surface the workspace actually uses, against the
//! JSON-value data model of the vendored `serde` shim:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs with named
//!   fields and on enums with unit / newtype / tuple / struct variants
//!   (externally tagged, like real serde's default representation);
//! * the field attributes `#[serde(default)]` and
//!   `#[serde(default = "path")]`.
//!
//! The macro hand-parses the `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline) and emits the implementation as a formatted source
//! string.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// How a missing field is filled during deserialization.
#[derive(Clone, Debug)]
enum FieldDefault {
    /// No default: a missing field is an error (unless the field type opts in
    /// via `Deserialize::missing`, as `Option<T>` does).
    Required,
    /// `#[serde(default)]`: use `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

#[derive(Clone, Debug)]
struct Field {
    name: String,
    default: FieldDefault,
}

#[derive(Clone, Debug)]
enum Variant {
    Unit(String),
    Newtype(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the vendored shim's JSON-value trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, fields } => serialize_struct(name, fields),
        Input::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (the vendored shim's JSON-value trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed {
        Input::Struct { name, fields } => deserialize_struct(name, fields),
        Input::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the vendored serde_derive shim does not support generic types ({name})");
    }

    let group = loop {
        match iter.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => break group,
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                panic!("the vendored serde_derive shim does not support tuple structs ({name})")
            }
            Some(_) => continue,
            None => panic!("expected a brace-delimited body for {name}"),
        }
    };

    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(group.stream()),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(group.stream()),
        },
        other => panic!("cannot derive serde traits for `{other}`"),
    }
}

fn skip_attributes(iter: &mut TokenIter) -> Vec<TokenStream> {
    let mut attrs = Vec::new();
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Bracket => {
                attrs.push(group.stream());
            }
            other => panic!("malformed attribute: {other:?}"),
        }
    }
    attrs
}

fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(ident)) if ident.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Extracts the `FieldDefault` from a field's attributes.
fn field_default(attrs: &[TokenStream]) -> FieldDefault {
    for attr in attrs {
        let mut iter = attr.clone().into_iter().peekable();
        let is_serde =
            matches!(iter.next(), Some(TokenTree::Ident(ident)) if ident.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = iter.next() else {
            continue;
        };
        let mut args = args.stream().into_iter().peekable();
        while let Some(token) = args.next() {
            let TokenTree::Ident(ident) = token else {
                continue;
            };
            if ident.to_string() != "default" {
                continue;
            }
            if matches!(args.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                args.next();
                match args.next() {
                    Some(TokenTree::Literal(lit)) => {
                        let text = lit.to_string();
                        let path = text.trim_matches('"').to_string();
                        return FieldDefault::Path(path);
                    }
                    other => panic!("malformed #[serde(default = ...)]: {other:?}"),
                }
            }
            return FieldDefault::DefaultTrait;
        }
    }
    FieldDefault::Required
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => panic!("expected field name, found {other}"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field {
            name,
            default: field_default(&attrs),
        });
    }
    fields
}

/// Consumes type tokens up to (and including) the next top-level comma,
/// tracking angle-bracket depth so commas inside generics are skipped.
fn skip_type(iter: &mut TokenIter) {
    let mut depth = 0i32;
    for token in iter.by_ref() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
    }
}

/// Counts the fields of a tuple variant: top-level commas + 1, ignoring a
/// trailing comma.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = true;
    let mut empty = true;
    for token in stream {
        empty = false;
        trailing_comma = false;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if empty {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => panic!("expected variant name, found {other}"),
            None => break,
        };
        let variant = match iter.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(group.stream());
                iter.next();
                if arity == 1 {
                    Variant::Newtype(name)
                } else {
                    Variant::Tuple(name, arity)
                }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream());
                iter.next();
                Variant::Struct(name, fields)
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        // Skip everything (e.g. discriminants) up to the separating comma.
        for token in iter.by_ref() {
            if matches!(&token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn push_fields_to_object(out: &mut String, fields: &[Field], access_prefix: &str) {
    out.push_str("let mut __obj: Vec<(::std::string::String, ::serde::Value)> = Vec::new();");
    for field in fields {
        out.push_str(&format!(
            "__obj.push((::std::string::String::from(\"{name}\"), \
             ::serde::Serialize::to_value({access_prefix}{name})));",
            name = field.name
        ));
    }
    out.push_str("::serde::Value::Object(__obj)");
}

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let mut out =
        format!("impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ ");
    push_fields_to_object(&mut out, fields, "&self.");
    out.push_str("} }");
    out
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ \
         match self {{ "
    );
    for variant in variants {
        match variant {
            Variant::Unit(v) => out.push_str(&format!(
                "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
            )),
            Variant::Newtype(v) => out.push_str(&format!(
                "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\
                 ::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]),"
            )),
            Variant::Tuple(v, arity) => {
                let bindings: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                let values: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                out.push_str(&format!(
                    "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\
                     ::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Array(vec![{values}]))]),",
                    binds = bindings.join(", "),
                    values = values.join(", ")
                ));
            }
            Variant::Struct(v, fields) => {
                let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let mut inner = String::new();
                push_fields_to_object(&mut inner, fields, "");
                out.push_str(&format!(
                    "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\
                     ::std::string::String::from(\"{v}\"), {{ {inner} }})]),",
                    binds = bindings.join(", ")
                ));
            }
        }
    }
    out.push_str("} } }");
    out
}

/// Emits the struct-literal field initializer for one deserialized field.
fn field_initializer(type_name: &str, field: &Field) -> String {
    let missing = match &field.default {
        FieldDefault::Required => format!(
            "match ::serde::__missing() {{ \
             ::std::option::Option::Some(__d) => __d, \
             ::std::option::Option::None => return ::std::result::Result::Err(\
             ::serde::Error::missing_field(\"{field_name}\", \"{type_name}\")) }}",
            field_name = field.name
        ),
        FieldDefault::DefaultTrait => "::std::default::Default::default()".to_string(),
        FieldDefault::Path(path) => format!("{path}()"),
    };
    format!(
        "{field_name}: match ::serde::__find(__fields, \"{field_name}\") {{ \
         ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
         ::std::option::Option::None => {missing} }},",
        field_name = field.name
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let mut out = format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ \
         let __fields = __value.as_object().ok_or_else(|| \
         ::serde::Error::expected(\"object\", \"{name}\"))?; \
         ::std::result::Result::Ok({name} {{ "
    );
    for field in fields {
        out.push_str(&field_initializer(name, field));
    }
    out.push_str("}) } }");
    out
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for variant in variants {
        match variant {
            Variant::Unit(v) => unit_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
            )),
            Variant::Newtype(v) => tagged_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                 ::serde::Deserialize::from_value(__inner)?)),"
            )),
            Variant::Tuple(v, arity) => {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{ let __arr = __inner.as_array().ok_or_else(|| \
                     ::serde::Error::expected(\"array\", \"{name}::{v}\"))?; \
                     if __arr.len() != {arity} {{ return ::std::result::Result::Err(\
                     ::serde::Error::expected(\"{arity}-element array\", \"{name}::{v}\")); }} \
                     ::std::result::Result::Ok({name}::{v}({elems})) }},",
                    elems = elems.join(", ")
                ));
            }
            Variant::Struct(v, fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| field_initializer(&format!("{name}::{v}"), f))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{ let __fields = __inner.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", \"{name}::{v}\"))?; \
                     ::std::result::Result::Ok({name}::{v} {{ {inits} }}) }},"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ \
         match __value {{ \
         ::serde::Value::String(__s) => match __s.as_str() {{ \
         {unit_arms} \
         __other => ::std::result::Result::Err(\
         ::serde::Error::unknown_variant(__other, \"{name}\")) }}, \
         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
         let (__tag, __inner) = &__entries[0]; \
         match __tag.as_str() {{ \
         {tagged_arms} \
         __other => ::std::result::Result::Err(\
         ::serde::Error::unknown_variant(__other, \"{name}\")) }} }}, \
         _ => ::std::result::Result::Err(\
         ::serde::Error::expected(\"variant string or single-key object\", \"{name}\")) \
         }} }} }}"
    )
}
