//! Throughput benchmarks of the solver-portfolio engine: single-instance
//! races (parallel vs sequential dispatch), the cache hit path, and batch
//! streaming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpo_bench::{bench_chain, bench_het_platform, bench_hom_platform};
use rpo_portfolio::{
    default_backends, BatchConfig, BatchDriver, BoundsPolicy, Budget, PortfolioEngine,
    ProblemInstance,
};
use rpo_workload::InstanceGenerator;
use std::hint::black_box;

fn hom_instance(n: usize, p: usize) -> ProblemInstance {
    let chain = bench_chain(n, 7);
    let platform = bench_hom_platform(p);
    let period = 1.6 * chain.max_task_work() / platform.max_speed();
    let latency = 1.25 * chain.total_work() / platform.max_speed();
    ProblemInstance::new(chain, platform, period, latency).expect("valid bounds")
}

fn het_instance(n: usize, p: usize) -> ProblemInstance {
    let chain = bench_chain(n, 7);
    let platform = bench_het_platform(p, 3);
    let period = 1.6 * chain.max_task_work() / platform.max_speed();
    let latency = 1.6 * chain.total_work() / platform.max_speed();
    ProblemInstance::new(chain, platform, period, latency).expect("valid bounds")
}

fn portfolio_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_race");
    group.sample_size(20);
    for &threads in &[1usize, 4] {
        let engine = PortfolioEngine::new(default_backends(), Budget::default())
            .with_threads(threads)
            .with_cache_capacity(0); // measure the race, not the cache
        let instance = hom_instance(12, 8);
        group.bench_with_input(
            BenchmarkId::new("homogeneous_12_tasks", threads),
            &threads,
            |b, _| b.iter(|| black_box(engine.solve(black_box(&instance)))),
        );
        let het = het_instance(12, 8);
        group.bench_with_input(
            BenchmarkId::new("heterogeneous_12_tasks", threads),
            &threads,
            |b, _| b.iter(|| black_box(engine.solve(black_box(&het)))),
        );
    }
    group.finish();
}

fn portfolio_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_cache");
    let engine = PortfolioEngine::new(default_backends(), Budget::default());
    let instance = hom_instance(12, 8);
    engine.solve(&instance); // warm the cache
    group.bench_function("hit", |b| {
        b.iter(|| black_box(engine.solve(black_box(&instance))))
    });
    group.finish();
}

fn portfolio_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_batch");
    group.sample_size(10);
    for &count in &[32usize, 128] {
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(
            BenchmarkId::new("paper_instances", count),
            &count,
            |b, &count| {
                b.iter(|| {
                    // Fresh engine per iteration: measure cold-cache streaming.
                    let engine =
                        PortfolioEngine::new(default_backends(), Budget::default()).with_threads(1);
                    let driver = BatchDriver::new(BatchConfig {
                        bounds: BoundsPolicy {
                            period_slack: 1.6,
                            latency_slack: 1.25,
                        },
                        ..BatchConfig::default()
                    });
                    let generator = InstanceGenerator::paper_homogeneous(2024);
                    black_box(driver.run(&engine, generator.stream(count)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, portfolio_race, portfolio_cache, portfolio_batch);
criterion_main!(benches);
