//! Benchmarks of the evaluation layer: the Eq. (9) closed form, the complete
//! five-criteria evaluation, the series-parallel RBD construction and the
//! partition-profile precomputation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpo_algorithms::{algo_alloc, heur_p_partition};
use rpo_bench::{bench_chain, bench_hom_platform};
use rpo_model::{reliability, MappingEvaluation};
use rpo_rbd::mapping_rbd;
use std::hint::black_box;

fn evaluation(c: &mut Criterion) {
    let chain = bench_chain(15, 7);
    let platform = bench_hom_platform(10);
    let partition = heur_p_partition(&chain, 5);
    let mapping = algo_alloc(&chain, &platform, &partition).expect("enough processors");

    let mut group = c.benchmark_group("evaluation");
    group.bench_function("mapping_reliability_eq9", |b| {
        b.iter(|| {
            reliability::mapping_reliability(
                black_box(&chain),
                black_box(&platform),
                black_box(&mapping),
            )
        })
    });
    group.bench_function("full_five_criteria_evaluation", |b| {
        b.iter(|| {
            MappingEvaluation::evaluate(
                black_box(&chain),
                black_box(&platform),
                black_box(&mapping),
            )
        })
    });
    group.bench_function("routing_sp_expr_build_and_eval", |b| {
        b.iter(|| {
            mapping_rbd::routing_sp_expr(
                black_box(&chain),
                black_box(&platform),
                black_box(&mapping),
            )
            .reliability()
        })
    });
    group.bench_function("general_rbd_build", |b| {
        b.iter(|| {
            mapping_rbd::general_rbd(black_box(&chain), black_box(&platform), black_box(&mapping))
        })
    });
    group.finish();
}

fn profile_precomputation(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_set");
    group.sample_size(10);
    for &n in &[10usize, 12, 15, 18] {
        let chain = bench_chain(n, 7);
        let platform = bench_hom_platform(10);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| {
                rpo_algorithms::exact::ProfileSet::build(black_box(&chain), black_box(&platform))
            })
        });
    }
    let chain = bench_chain(15, 7);
    let platform = bench_hom_platform(10);
    let set = rpo_algorithms::exact::ProfileSet::build(&chain, &platform).unwrap();
    group.bench_function("sweep_query", |b| {
        b.iter(|| set.best_reliability_under(black_box(250.0), black_box(750.0)))
    });
    group.finish();
}

criterion_group!(benches, evaluation, profile_precomputation);
criterion_main!(benches);
