//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * routing operations (serial-parallel RBD, linear evaluation) vs the exact
//!   factoring of the direct RBD (exponential) — the paper's central argument
//!   for inserting routing operations;
//! * Algo-Alloc greedy allocation vs exhaustive allocation;
//! * the partition-profile sweep vs re-running the exhaustive solver per
//!   bound pair;
//! * the exhaustive exact solver vs the branch-and-bound ILP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpo_algorithms::{algo_alloc, exact, exhaustive_alloc, heur_p_partition};
use rpo_bench::{bench_chain, bench_hom_platform, bench_noisy_platform};
use rpo_rbd::{exact as rbd_exact, mapping_rbd};
use std::hint::black_box;

/// Routing-operation (serial-parallel) evaluation vs exact evaluation of the
/// direct, non series-parallel diagram, as the replication level grows.
fn rbd_routing_vs_exact(c: &mut Criterion) {
    let chain = bench_chain(8, 3);
    let mut group = c.benchmark_group("ablation_rbd");
    group.sample_size(10);
    for &replicas in &[2usize, 3] {
        // 3 intervals × `replicas` replicas keeps the direct RBD below the
        // exact evaluator's 30-block limit (3·replicas + 2·replicas² blocks).
        let platform = bench_noisy_platform(3 * replicas);
        let partition = heur_p_partition(&chain, 3);
        let mapping = algo_alloc(&chain, &platform, &partition).expect("enough processors");
        group.bench_with_input(
            BenchmarkId::new("routing_serial_parallel", replicas),
            &replicas,
            |b, _| {
                b.iter(|| {
                    mapping_rbd::routing_sp_expr(
                        black_box(&chain),
                        black_box(&platform),
                        black_box(&mapping),
                    )
                    .reliability()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_factoring_direct_rbd", replicas),
            &replicas,
            |b, _| {
                b.iter(|| {
                    rbd_exact::factoring(&mapping_rbd::general_rbd(
                        black_box(&chain),
                        black_box(&platform),
                        black_box(&mapping),
                    ))
                })
            },
        );
    }
    group.finish();
}

/// Greedy Algo-Alloc vs exhaustive allocation for a fixed partition.
fn alloc_greedy_vs_exhaustive(c: &mut Criterion) {
    let chain = bench_chain(12, 5);
    let platform = bench_hom_platform(10);
    let partition = heur_p_partition(&chain, 5);
    let mut group = c.benchmark_group("ablation_allocation");
    group.bench_function("algo_alloc_greedy", |b| {
        b.iter(|| {
            algo_alloc(
                black_box(&chain),
                black_box(&platform),
                black_box(&partition),
            )
        })
    });
    group.bench_function("exhaustive_allocation", |b| {
        b.iter(|| {
            exhaustive_alloc(
                black_box(&chain),
                black_box(&platform),
                black_box(&partition),
            )
        })
    });
    group.finish();
}

/// Answering 20 bound pairs: rebuild-and-scan with partition profiles vs
/// re-running the exhaustive solver for every pair.
fn sweep_profiles_vs_resolve(c: &mut Criterion) {
    let chain = bench_chain(13, 9);
    let platform = bench_hom_platform(10);
    let bounds: Vec<(f64, f64)> = (1..=20).map(|i| (25.0 * i as f64, 750.0)).collect();
    let mut group = c.benchmark_group("ablation_sweep");
    group.sample_size(10);
    group.bench_function("profile_set_then_scan", |b| {
        b.iter(|| {
            let set = exact::ProfileSet::build(black_box(&chain), black_box(&platform)).unwrap();
            bounds
                .iter()
                .filter_map(|&(p, l)| set.best_reliability_under(p, l))
                .sum::<f64>()
        })
    });
    group.bench_function("exhaustive_per_bound_pair", |b| {
        b.iter(|| {
            bounds
                .iter()
                .filter_map(|&(p, l)| {
                    exact::optimal_homogeneous(black_box(&chain), black_box(&platform), p, l)
                        .ok()
                        .map(|s| s.reliability)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

/// Exhaustive partition enumeration vs the Section 5.4 ILP solved by
/// branch-and-bound, on an instance small enough for both.
fn exhaustive_vs_ilp(c: &mut Criterion) {
    let chain = bench_chain(7, 11);
    let platform = bench_hom_platform(6);
    let mut group = c.benchmark_group("ablation_exact_solver");
    group.sample_size(10);
    group.bench_function("exhaustive_partitions", |b| {
        b.iter(|| exact::optimal_homogeneous(black_box(&chain), black_box(&platform), 300.0, 800.0))
    });
    group.bench_function("ilp_branch_and_bound", |b| {
        b.iter(|| exact::optimal_by_ilp(black_box(&chain), black_box(&platform), 300.0, 800.0))
    });
    group.finish();
}

criterion_group!(
    benches,
    rbd_routing_vs_exact,
    alloc_greedy_vs_exhaustive,
    sweep_profiles_vs_resolve,
    exhaustive_vs_ilp
);
criterion_main!(benches);
