//! Simulator throughput benchmarks: per-data-set Monte-Carlo failure
//! injection (sequential and Rayon-parallel) and the pipelined discrete-event
//! simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rpo_algorithms::{algo_alloc, heur_p_partition};
use rpo_bench::{bench_chain, bench_noisy_platform};
use rpo_sim::{monte_carlo, simulate_dataset, simulate_pipeline, MonteCarloConfig, PipelineConfig};
use std::hint::black_box;

fn dataset_injection(c: &mut Criterion) {
    let chain = bench_chain(15, 7);
    let platform = bench_noisy_platform(10);
    let partition = heur_p_partition(&chain, 5);
    let mapping = algo_alloc(&chain, &platform, &partition).expect("enough processors");

    let mut group = c.benchmark_group("simulator_dataset");
    group.throughput(Throughput::Elements(1));
    group.bench_function("single_dataset_injection", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| {
            simulate_dataset(
                black_box(&chain),
                black_box(&platform),
                black_box(&mapping),
                &mut rng,
            )
        })
    });
    group.finish();
}

fn monte_carlo_batches(c: &mut Criterion) {
    let chain = bench_chain(15, 7);
    let platform = bench_noisy_platform(10);
    let partition = heur_p_partition(&chain, 5);
    let mapping = algo_alloc(&chain, &platform, &partition).expect("enough processors");

    let mut group = c.benchmark_group("simulator_monte_carlo");
    group.sample_size(10);
    for &datasets in &[10_000usize, 50_000] {
        group.throughput(Throughput::Elements(datasets as u64));
        group.bench_with_input(
            BenchmarkId::new("parallel_estimation", datasets),
            &datasets,
            |b, &datasets| {
                b.iter(|| {
                    monte_carlo(
                        black_box(&chain),
                        black_box(&platform),
                        black_box(&mapping),
                        &MonteCarloConfig {
                            num_datasets: datasets,
                            seed: 3,
                            chunk_size: 4096,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn pipelined_des(c: &mut Criterion) {
    let chain = bench_chain(15, 7);
    let platform = bench_noisy_platform(10);
    let partition = heur_p_partition(&chain, 5);
    let mapping = algo_alloc(&chain, &platform, &partition).expect("enough processors");

    let mut group = c.benchmark_group("simulator_pipeline");
    for &datasets in &[1_000usize, 5_000] {
        group.throughput(Throughput::Elements(datasets as u64));
        group.bench_with_input(
            BenchmarkId::new("saturated_stream", datasets),
            &datasets,
            |b, &datasets| {
                b.iter(|| {
                    simulate_pipeline(
                        black_box(&chain),
                        black_box(&platform),
                        black_box(&mapping),
                        &PipelineConfig {
                            num_datasets: datasets,
                            seed: 5,
                            input_period: None,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    dataset_injection,
    monte_carlo_batches,
    pipelined_des
);
criterion_main!(benches);
