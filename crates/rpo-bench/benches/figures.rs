//! One benchmark per paper figure: each runs a scaled-down version of the
//! experiment sweep that regenerates the figure (fewer instances than the
//! paper's 100 so a full `cargo bench` stays affordable; the `reproduce`
//! binary runs the full-size version).
//!
//! Figures sharing an experiment (6/7, 8/9, 10/11, 12/13, 14/15) are measured
//! separately, as the per-figure extraction is part of the measured path.

use criterion::{criterion_group, criterion_main, Criterion};
use rpo_experiments::experiments::SweepOptions;
use rpo_experiments::figures::{run_figure, FigureId};
use std::hint::black_box;

const BENCH_INSTANCES: usize = 4;

fn bench_figure(c: &mut Criterion, id: FigureId) {
    let options = SweepOptions {
        num_instances: BENCH_INSTANCES,
        seed: 1,
    };
    let name = match id {
        FigureId::Fig6 => "fig06_solutions_vs_period",
        FigureId::Fig7 => "fig07_failure_vs_period",
        FigureId::Fig8 => "fig08_solutions_vs_latency",
        FigureId::Fig9 => "fig09_failure_vs_latency",
        FigureId::Fig10 => "fig10_solutions_l3p",
        FigureId::Fig11 => "fig11_failure_l3p",
        FigureId::Fig12 => "fig12_het_solutions_vs_period",
        FigureId::Fig13 => "fig13_het_failure_vs_period",
        FigureId::Fig14 => "fig14_het_solutions_vs_latency",
        FigureId::Fig15 => "fig15_het_failure_vs_latency",
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter(|| black_box(run_figure(black_box(id), black_box(&options))))
    });
    group.finish();
}

fn figures(c: &mut Criterion) {
    for id in FigureId::all() {
        bench_figure(c, id);
    }
}

criterion_group!(benches, figures);
criterion_main!(benches);
