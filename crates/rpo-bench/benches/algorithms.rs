//! Scaling benchmarks of the optimization algorithms: Algorithms 1 and 2 in
//! the number of tasks and processors, the two full heuristics, the converse
//! period minimization, and the exact solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpo_algorithms::{
    exact, minimize_period_with_reliability_bound, optimize_reliability_homogeneous,
    optimize_reliability_with_period_bound, run_heuristic, HeuristicConfig, IntervalHeuristic,
};
use rpo_bench::{bench_chain, bench_het_platform, bench_hom_platform};
use std::hint::black_box;

fn algorithm1_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_reliability_dp");
    for &n in &[10usize, 15, 20, 30] {
        let chain = bench_chain(n, 7);
        let platform = bench_hom_platform(10);
        group.bench_with_input(BenchmarkId::new("tasks", n), &n, |b, _| {
            b.iter(|| optimize_reliability_homogeneous(black_box(&chain), black_box(&platform)))
        });
    }
    for &p in &[5usize, 10, 20, 40] {
        let chain = bench_chain(15, 7);
        let platform = bench_hom_platform(p);
        group.bench_with_input(BenchmarkId::new("processors", p), &p, |b, _| {
            b.iter(|| optimize_reliability_homogeneous(black_box(&chain), black_box(&platform)))
        });
    }
    group.finish();
}

fn algorithm2_period_bound(c: &mut Criterion) {
    let chain = bench_chain(15, 7);
    let platform = bench_hom_platform(10);
    let mut group = c.benchmark_group("algorithm2_period_bound");
    for &period in &[150.0f64, 250.0, 400.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(period),
            &period,
            |b, &period| {
                b.iter(|| {
                    optimize_reliability_with_period_bound(
                        black_box(&chain),
                        black_box(&platform),
                        black_box(period),
                    )
                })
            },
        );
    }
    group.finish();
}

fn period_minimization(c: &mut Criterion) {
    let chain = bench_chain(15, 7);
    let platform = bench_hom_platform(10);
    c.bench_function("period_minimization_reliability_0_99999", |b| {
        b.iter(|| {
            minimize_period_with_reliability_bound(
                black_box(&chain),
                black_box(&platform),
                black_box(0.99999),
            )
        })
    });
}

fn heuristics(c: &mut Criterion) {
    let chain = bench_chain(15, 7);
    let hom = bench_hom_platform(10);
    let het = bench_het_platform(10, 3);
    let mut group = c.benchmark_group("full_heuristics");
    for (name, heuristic) in [
        ("heur_p", IntervalHeuristic::MinPeriod),
        ("heur_l", IntervalHeuristic::MinLatency),
    ] {
        let config = HeuristicConfig {
            interval_heuristic: heuristic,
            period_bound: 250.0,
            latency_bound: 750.0,
        };
        group.bench_function(format!("{name}_homogeneous"), |b| {
            b.iter(|| run_heuristic(black_box(&chain), black_box(&hom), black_box(&config)))
        });
        let het_config = HeuristicConfig {
            interval_heuristic: heuristic,
            period_bound: 50.0,
            latency_bound: 150.0,
        };
        group.bench_function(format!("{name}_heterogeneous"), |b| {
            b.iter(|| run_heuristic(black_box(&chain), black_box(&het), black_box(&het_config)))
        });
    }
    group.finish();
}

fn exact_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solvers");
    group.sample_size(10);
    let chain15 = bench_chain(15, 7);
    let platform = bench_hom_platform(10);
    group.bench_function("exhaustive_n15", |b| {
        b.iter(|| {
            exact::optimal_homogeneous(black_box(&chain15), black_box(&platform), 250.0, 750.0)
        })
    });
    group.bench_function("profile_set_build_n15", |b| {
        b.iter(|| exact::ProfileSet::build(black_box(&chain15), black_box(&platform)))
    });
    let chain8 = bench_chain(8, 7);
    let platform6 = bench_hom_platform(6);
    group.bench_function("ilp_branch_and_bound_n8", |b| {
        b.iter(|| exact::optimal_by_ilp(black_box(&chain8), black_box(&platform6), 300.0, 800.0))
    });
    group.finish();
}

criterion_group!(
    benches,
    algorithm1_scaling,
    algorithm2_period_bound,
    period_minimization,
    heuristics,
    exact_solvers
);
criterion_main!(benches);
