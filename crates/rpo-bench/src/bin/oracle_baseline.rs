//! Machine-readable perf baselines: times the Algorithm 1/2 dynamic
//! programs with and without the [`IntervalOracle`] (writing
//! `BENCH_oracle.json`), times the lane-chunked DP kernel against the
//! scalar reference sweep and the portfolio batch with and without
//! chain-keyed oracle sharing (writing `BENCH_kernel.json`), and measures
//! the exact class-level heterogeneous DP against the Section 7.2 greedy
//! pipeline at the paper's 10-processor heterogeneous setup (3-class
//! variant; writing `BENCH_het.json`), and replays a duplicate-heavy
//! request stream through the `rpo-serve` solver service (writing
//! `BENCH_serve.json`).
//!
//! Usage:
//! `cargo run --release -p rpo-bench --bin oracle_baseline \
//!     [oracle_output] [kernel_output] [het_output] [het_lat_output] [repair_output] \
//!     [serve_output] \
//!     [--enforce-kernel-speedup] [--enforce-het-gain] [--enforce-het-lat-gain] \
//!     [--enforce-obs-overhead] [--enforce-batch-speedup] [--enforce-repair-speedup] \
//!     [--enforce-het-kernel-speedup] [--enforce-serve-latency]`
//! (default output paths `BENCH_oracle.json`, `BENCH_kernel.json`,
//! `BENCH_het.json`, `BENCH_het_lat.json`, `BENCH_repair.json` and
//! `BENCH_serve.json` in the working directory).
//! With `--enforce-kernel-speedup` the process exits non-zero if the chunked
//! kernel measures slower than the scalar reference; with
//! `--enforce-het-gain` it exits non-zero if `algo_het` ever falls below the
//! greedy reliability (or solves fewer instances); with
//! `--enforce-het-lat-gain` it exits non-zero unless `algo_het_lat` beats
//! the latency-aware greedy pipeline strictly somewhere with no losses, no
//! missed solves and no bound violations; with `--enforce-obs-overhead` it
//! exits non-zero if the portfolio batch with observability recording
//! enabled measures more than 3% slower than the same batch with the
//! runtime toggle off (on hosts with ≤ 2 cores the medians are scheduler
//! jitter, so the numbers are reported but not enforced); with
//! `--enforce-batch-speedup` it exits non-zero
//! unless the batched SoA mega-kernel clears 1.4× the per-instance chunked
//! kernel on a 512-instance same-shape homogeneous stream (2× with the
//! AVX-512 zmm `RUSTFLAGS` opt-in documented in `.cargo/config.toml`) *and*
//! the padded near-shape mixed-length stream beats the per-instance kernel
//! (the padded stream must additionally match it bit-for-bit — that check
//! is asserted unconditionally, flags or not; both floors are reported but
//! not enforced on ≤ 2-core hosts); with `--enforce-repair-speedup` it exits
//! non-zero unless repairing a single-processor failure through the
//! `rpo-repair` ladder measures at least 10× faster than a cold oracle
//! rebuild + re-solve at the same size *and* lands on the cold re-solve's
//! exact reliability; with `--enforce-het-kernel-speedup` it exits non-zero
//! unless the chunked `algo_het` class-DP kernel clears 1.3× the scalar
//! reference at the paper's 10-processor 3-class setup stretched to
//! n = 100 tasks (bit-identical mappings are asserted unconditionally;
//! like the overhead guard, the speedup floors are reported but not
//! enforced on ≤ 2-core hosts); with `--enforce-serve-latency` it exits
//! non-zero unless the solver service sustains 2 000 req/s with p99 latency
//! under the request deadline on a 2 048-request ≥ 30%-duplicate replay
//! (wall-clock floors environment-aware as above; the structural
//! invariants — zero responses delivered past their deadline, zero shed
//! responses carrying solve work — are asserted unconditionally, flags or
//! not) — the CI smoke step runs all eight.
//!
//! All four reports go through the shared [`rpo_obs::write_bench_report`]
//! reporter: the payload fields stay at the top level and the cumulative
//! [`rpo_obs::MetricsSnapshot`] of the instrumented run is embedded under
//! `metrics`. The run also asserts unconditionally that the snapshot
//! carries per-backend solve-time histograms, all three cache counter
//! families, and nonzero DP-kernel span counts.
//!
//! The "naive" dynamic program reimplements the pre-oracle recurrence — it
//! recomputes the Eq. 9 replica-block reliability (three `exp`s per
//! candidate) inside the `(j, i, q)` loops and uses nested `Vec<Vec<_>>`
//! tables — exactly what every solver in the workspace did before the
//! oracle, kept here as the measurement baseline.

use rpo_algorithms::{
    algo_het_lat_with_oracle, algo_het_with_oracle, class_dp_with_kernel,
    greedy_het_lat_with_oracle, greedy_het_with_oracle,
    optimize_reliability_homogeneous_with_oracle,
    optimize_reliability_with_period_bound_with_oracle, reliability_dp_with_kernel,
    reliability_dp_with_scratch, solve_batch, solve_batch_with_inner, BatchInner, BatchLane,
    BatchScratch, DpKernel, DpScratch, HetLatMethod, HetMethod, OptimalMapping, LANES,
};
use rpo_bench::{bench_chain, bench_hom_platform};
use rpo_model::{reliability, Interval, IntervalOracle, Platform, TaskChain};
use rpo_portfolio::{BatchConfig, BatchDriver, BoundsPolicy, PortfolioEngine, ProblemInstance};
use rpo_serve::{ResponseStatus, ServeConfig, ServeRequest, ServeResponse, SolverService};
use rpo_workload::{ChainSpec, GeneratedRequest, InstanceGenerator, RequestSpec};
use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Problem size of the DP comparison (the acceptance target of the oracle
/// refactor: ≥ 3× at n = 100, p = 20).
const DP_TASKS: usize = 100;
const DP_PROCESSORS: usize = 20;
const DP_REPS: usize = 25;
const BATCH_INSTANCES: usize = 120;

#[derive(Debug, Serialize)]
struct DpComparison {
    tasks: usize,
    processors: usize,
    max_replication: usize,
    naive_millis: f64,
    oracle_millis: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BackendSummary {
    backend: String,
    runs: usize,
    wins: usize,
    win_rate: f64,
    front_points: usize,
    total_micros: u64,
}

#[derive(Debug, Serialize)]
struct BatchSummary {
    instances: usize,
    feasible_instances: usize,
    elapsed_millis: f64,
    instances_per_sec: f64,
    backends: Vec<BackendSummary>,
}

#[derive(Debug, Serialize)]
struct OracleBaseline {
    algo1: DpComparison,
    algo2: DpComparison,
    portfolio_batch: BatchSummary,
}

#[derive(Debug, Serialize)]
struct KernelComparison {
    tasks: usize,
    processors: usize,
    max_replication: usize,
    scalar_millis: f64,
    chunked_millis: f64,
    speedup: f64,
}

/// Throughput of one near-duplicate batch configuration (instances sharing
/// chains/platforms but differing in bounds).
#[derive(Debug, Serialize)]
struct SharingSummary {
    instances: usize,
    elapsed_millis: f64,
    instances_per_sec: f64,
    oracle_cache_hits: u64,
    oracle_cache_misses: u64,
}

/// Instances in the batched SoA mega-kernel stream (`batch_soa` section):
/// one shape (`DP_TASKS` × `DP_PROCESSORS`), per-instance numerics.
const BATCH_SOA_INSTANCES: usize = 512;

/// Repetitions of each timed sweep over the full SoA stream (median
/// filtered — each sweep already aggregates `BATCH_SOA_INSTANCES` solves,
/// so few repetitions suffice).
const BATCH_SOA_REPS: usize = 5;

/// The batched SoA mega-kernel vs the same solves run one instance at a
/// time through the chunked kernel. Oracles are prebuilt on both sides
/// (instance-level precomputation, measured in `BENCH_oracle.json`), so
/// this isolates the DP sweeps — exactly the work the mega-kernel
/// restructures into lane-major form.
#[derive(Debug, Serialize)]
struct BatchSoaComparison {
    instances: usize,
    tasks: usize,
    processors: usize,
    max_replication: usize,
    /// SIMD lane width of the mega-kernel (`rpo_algorithms::LANES`).
    lanes: usize,
    per_instance_millis: f64,
    /// Full-stream wall clock of the lockstep inner sweep…
    lockstep_millis: f64,
    /// …and of the register-blocked retry (kept for the recorded verdict:
    /// the default inner sweep is whichever wins).
    blocked_millis: f64,
    per_instance_per_s: f64,
    lockstep_per_s: f64,
    blocked_per_s: f64,
    /// Default batched inner sweep vs the per-instance kernel — the
    /// `--enforce-batch-speedup` gate fails below 1.4×. (The floor was 2×
    /// when the default build carried the AVX-512 zmm opt-out removed from
    /// `.cargo/config.toml`; the default 256-bit build lands lower. The 2×
    /// figure is still reachable with the `RUSTFLAGS` opt-in documented
    /// there.)
    speedup: f64,
}

fn run_batch_soa() -> BatchSoaComparison {
    let platform = bench_hom_platform(DP_PROCESSORS);
    let chains: Vec<TaskChain> = (0..BATCH_SOA_INSTANCES)
        .map(|seed| bench_chain(DP_TASKS, 1000 + seed as u64))
        .collect();
    let oracles: Vec<IntervalOracle> = chains
        .iter()
        .map(|chain| IntervalOracle::new(chain, &platform))
        .collect();
    let lanes: Vec<BatchLane> = chains
        .iter()
        .zip(&oracles)
        .map(|(chain, oracle)| BatchLane {
            oracle,
            chain,
            platform: &platform,
            period_bound: None,
        })
        .collect();

    let mut scratch = DpScratch::new();
    let per_instance_millis = time_median(BATCH_SOA_REPS, || {
        for lane in 0..BATCH_SOA_INSTANCES {
            let result = reliability_dp_with_scratch(
                &oracles[lane],
                &chains[lane],
                &platform,
                None,
                DpKernel::Chunked,
                &mut scratch,
            );
            std::hint::black_box(result);
        }
    });
    let mut batch_scratch = BatchScratch::new();
    let mut measure_inner = |inner: BatchInner| {
        time_median(BATCH_SOA_REPS, || {
            let results = solve_batch_with_inner(&lanes, inner, &mut batch_scratch);
            std::hint::black_box(results);
        })
    };
    let lockstep_millis = measure_inner(BatchInner::Lockstep);
    let blocked_millis = measure_inner(BatchInner::Blocked);
    let default_millis = match BatchInner::default() {
        BatchInner::Lockstep => lockstep_millis,
        BatchInner::Blocked => blocked_millis,
    };
    let per_s = |millis: f64| BATCH_SOA_INSTANCES as f64 / (millis / 1e3);
    BatchSoaComparison {
        instances: BATCH_SOA_INSTANCES,
        tasks: DP_TASKS,
        processors: DP_PROCESSORS,
        max_replication: platform.max_replication(),
        lanes: LANES,
        per_instance_millis,
        lockstep_millis,
        blocked_millis,
        per_instance_per_s: per_s(per_instance_millis),
        lockstep_per_s: per_s(lockstep_millis),
        blocked_per_s: per_s(blocked_millis),
        speedup: per_instance_millis / default_millis,
    }
}

/// Same optional DP answer on both sides: equal mappings and bit-equal
/// reliabilities (or both infeasible).
fn same_solution(a: &Option<OptimalMapping>, b: &Option<OptimalMapping>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            a.mapping == b.mapping && a.reliability.to_bits() == b.reliability.to_bits()
        }
        _ => false,
    }
}

/// Instances in the padded near-shape batch stream (`batch_padded`
/// section): one platform shape (`p`, `K`), chain lengths spread over
/// `[PADDED_MIN_TASKS, PADDED_MAX_TASKS]` so nearly every LANES-wide chunk
/// carries padded rows.
const PADDED_INSTANCES: usize = 256;
const PADDED_MIN_TASKS: usize = 60;
const PADDED_MAX_TASKS: usize = 100;
const PADDED_REPS: usize = 5;

/// The near-shape padded mega-kernel stream vs the same mixed-length solves
/// run one instance at a time through the chunked kernel. With PR 9's
/// relaxed bucketing the lanes share only `(p, K)`; shorter lanes ride as
/// NaN-poisoned padded rows, so this measures what the padding actually
/// costs against what lane-parallelism buys on a realistic mixed stream.
#[derive(Debug, Serialize)]
struct PaddedBatchComparison {
    instances: usize,
    min_tasks: usize,
    max_tasks: usize,
    processors: usize,
    max_replication: usize,
    lanes: usize,
    /// Lanes shorter than their chunk's longest lane (their rows past `n`
    /// are dead weight the sweep still walks).
    padded_lanes: usize,
    per_instance_millis: f64,
    batched_millis: f64,
    /// Batched stream vs the per-instance kernel — the
    /// `--enforce-batch-speedup` gate fails below 1× on hosts with the
    /// headroom to measure it.
    speedup: f64,
    /// Every lane's batched answer equals the per-instance chunked kernel's
    /// (same mapping, bit-equal reliability) — asserted unconditionally.
    bit_identical: bool,
}

fn run_padded_batch() -> PaddedBatchComparison {
    let platform = bench_hom_platform(DP_PROCESSORS);
    let chains: Vec<TaskChain> = (0..PADDED_INSTANCES)
        .map(|seed| {
            // 37 is coprime to the span, so chunk-mates almost never share a
            // length — the worst realistic padding pressure.
            let tasks = PADDED_MIN_TASKS + (seed * 37) % (PADDED_MAX_TASKS - PADDED_MIN_TASKS + 1);
            bench_chain(tasks, 5000 + seed as u64)
        })
        .collect();
    let oracles: Vec<IntervalOracle> = chains
        .iter()
        .map(|chain| IntervalOracle::new(chain, &platform))
        .collect();
    let lanes: Vec<BatchLane> = chains
        .iter()
        .zip(&oracles)
        .map(|(chain, oracle)| BatchLane {
            oracle,
            chain,
            platform: &platform,
            period_bound: None,
        })
        .collect();
    let padded_lanes = lanes
        .chunks(LANES)
        .map(|chunk| {
            let n_max = chunk
                .iter()
                .map(|lane| lane.oracle.len())
                .max()
                .unwrap_or(0);
            chunk
                .iter()
                .filter(|lane| lane.oracle.len() < n_max)
                .count()
        })
        .sum();

    let mut scratch = DpScratch::new();
    let per_instance_millis = time_median(PADDED_REPS, || {
        for lane in 0..PADDED_INSTANCES {
            let result = reliability_dp_with_scratch(
                &oracles[lane],
                &chains[lane],
                &platform,
                None,
                DpKernel::Chunked,
                &mut scratch,
            );
            std::hint::black_box(result);
        }
    });
    let mut batch_scratch = BatchScratch::new();
    let batched_millis = time_median(PADDED_REPS, || {
        let results = solve_batch(&lanes, &mut batch_scratch);
        std::hint::black_box(results);
    });
    let batched = solve_batch(&lanes, &mut batch_scratch);
    let bit_identical = (0..PADDED_INSTANCES).all(|lane| {
        let per = reliability_dp_with_scratch(
            &oracles[lane],
            &chains[lane],
            &platform,
            None,
            DpKernel::Chunked,
            &mut scratch,
        );
        same_solution(&per, &batched[lane])
    });
    PaddedBatchComparison {
        instances: PADDED_INSTANCES,
        min_tasks: PADDED_MIN_TASKS,
        max_tasks: PADDED_MAX_TASKS,
        processors: DP_PROCESSORS,
        max_replication: platform.max_replication(),
        lanes: LANES,
        padded_lanes,
        per_instance_millis,
        batched_millis,
        speedup: per_instance_millis / batched_millis,
        bit_identical,
    }
}

#[derive(Debug, Serialize)]
struct KernelBaseline {
    /// Lane-chunked kernel vs the scalar reference sweep (both through the
    /// oracle; oracle construction included, like the oracle baseline).
    algo1: KernelComparison,
    algo2: KernelComparison,
    /// The standard paper-style portfolio batch (same configuration as
    /// `BENCH_oracle.json`'s `portfolio_batch`, for direct comparison).
    portfolio_batch: BatchSummary,
    /// Near-duplicate batch (same chains/platforms, three bound variants
    /// each) with the chain-keyed oracle cache enabled…
    batch_shared_oracle: SharingSummary,
    /// …and with it disabled (every solve rebuilds its oracle).
    batch_unshared_oracle: SharingSummary,
    /// Batched SoA mega-kernel vs per-instance solves over one same-shape
    /// homogeneous stream.
    batch_soa: BatchSoaComparison,
    /// The same mega-kernel on a padded near-shape mixed-length stream
    /// (lanes share only `(p, K)`) vs per-instance solves.
    batch_padded: PaddedBatchComparison,
}

/// Number of class-structured heterogeneous instances of the `algo_het`
/// baseline.
const HET_INSTANCES: usize = 50;

/// The chunked class-DP kernel comparison: the paper's 10-processor 3-class
/// setup stretched to `HET_KERNEL_TASKS` tasks (the het baseline's 15-task
/// chains finish in microseconds — the per-pattern inner loop only
/// dominates at the n = 100 scaling point), `HET_KERNEL_INSTANCES`
/// instances per timed sweep, median of `HET_KERNEL_REPS` sweeps.
const HET_KERNEL_INSTANCES: usize = 6;
const HET_KERNEL_TASKS: usize = 100;
const HET_KERNEL_REPS: usize = 5;

/// The chunked gather/compact/sweep `algo_het` kernel vs the scalar
/// reference inner loop, both through `class_dp_with_kernel` with the same
/// greedy incumbent priming the pruner — exactly the two code paths
/// `algo_het` chooses between.
#[derive(Debug, Serialize)]
struct HetKernelComparison {
    instances: usize,
    tasks: usize,
    processors: usize,
    classes: usize,
    max_replication: usize,
    scalar_millis: f64,
    chunked_millis: f64,
    /// Scalar inner loop vs chunked kernel — the
    /// `--enforce-het-kernel-speedup` gate fails below 1.3× on hosts with
    /// the headroom to measure it.
    speedup: f64,
    /// The chunked kernel returned the same mapping and bit-equal
    /// reliability as the scalar reference on every instance — asserted
    /// unconditionally.
    bit_identical: bool,
}

fn run_het_kernel_comparison() -> HetKernelComparison {
    let mut generator = InstanceGenerator::paper_heterogeneous_classes(0x0AC1E);
    generator.chain = ChainSpec::paper_with_tasks(HET_KERNEL_TASKS);
    let period_slack = 0.75;
    let mut comparison = HetKernelComparison {
        instances: HET_KERNEL_INSTANCES,
        tasks: HET_KERNEL_TASKS,
        processors: 0,
        classes: 0,
        max_replication: 0,
        scalar_millis: 0.0,
        chunked_millis: 0.0,
        speedup: 0.0,
        bit_identical: true,
    };
    let mut cases = Vec::new();
    for instance in generator.batch(HET_KERNEL_INSTANCES) {
        let chain = instance.chain;
        let platform = instance.heterogeneous;
        let oracle = IntervalOracle::new(&chain, &platform);
        comparison.processors = platform.num_processors();
        comparison.classes = oracle.classes().len();
        comparison.max_replication = platform.max_replication();
        let bound = period_slack * chain.total_work() / platform.max_speed();
        // The same greedy incumbent primes both kernels' pruning, exactly
        // as `algo_het` does before entering the class DP.
        let incumbent = greedy_het_with_oracle(&oracle, &chain, &platform, Some(bound))
            .map(|solution| solution.reliability)
            .unwrap_or(0.0);
        cases.push((oracle, chain, platform, bound, incumbent));
    }
    let measure = |kernel: DpKernel| {
        time_median(HET_KERNEL_REPS, || {
            for (oracle, chain, platform, bound, incumbent) in &cases {
                let result =
                    class_dp_with_kernel(oracle, chain, platform, Some(*bound), *incumbent, kernel);
                std::hint::black_box(result);
            }
        })
    };
    comparison.scalar_millis = measure(DpKernel::Scalar);
    comparison.chunked_millis = measure(DpKernel::Chunked);
    comparison.speedup = comparison.scalar_millis / comparison.chunked_millis;
    for (oracle, chain, platform, bound, incumbent) in &cases {
        let run = |kernel| {
            class_dp_with_kernel(oracle, chain, platform, Some(*bound), *incumbent, kernel)
        };
        comparison.bit_identical &= same_solution(&run(DpKernel::Scalar), &run(DpKernel::Chunked));
    }
    comparison
}

/// The `algo_het` (exact class-level DP) vs greedy comparison at the paper's
/// 10-processor heterogeneous setup, restricted to three processor classes
/// so the DP applies.
#[derive(Debug, Serialize)]
struct HetBaseline {
    instances: usize,
    tasks: usize,
    processors: usize,
    classes: usize,
    max_replication: usize,
    /// Period bound = `period_slack × W / s_max` per instance (whole-chain
    /// work on the fastest processor — tight enough that the exact DP's
    /// partition/pattern choices matter).
    period_slack: f64,
    /// Instances each strategy solved within the bound.
    dp_solved: usize,
    greedy_solved: usize,
    /// Solves where the exact DP (not the greedy fallback) produced the
    /// answer.
    dp_exact_solves: usize,
    /// Total `algo_het` wall-clock across all instances. NOTE: `algo_het`
    /// runs the full greedy pipeline internally (fallback + upper-bound
    /// pruner), so this **includes** one greedy run per instance — the
    /// DP-only cost is roughly `dp_total_millis − greedy_total_millis`.
    dp_total_millis: f64,
    /// Total standalone greedy-pipeline wall-clock across all instances.
    greedy_total_millis: f64,
    /// Failure-probability gain `(F_greedy − F_dp) / F_greedy`, averaged /
    /// maximized over the instances both strategies solved.
    mean_failure_gain: f64,
    max_failure_gain: f64,
    /// Instances where the DP is strictly more reliable than the greedy.
    dp_wins: usize,
    /// Instances where the DP is *less* reliable than the greedy — must be
    /// zero (`--enforce-het-gain` fails otherwise).
    dp_losses: usize,
    /// Chunked vs scalar class-DP kernel timings at the n = 100 scaling
    /// point (the `--enforce-het-kernel-speedup` gate).
    het_kernel: HetKernelComparison,
}

fn run_het_baseline(het_kernel: HetKernelComparison) -> HetBaseline {
    let period_slack = 0.75;
    let generator = rpo_workload::InstanceGenerator::paper_heterogeneous_classes(0x0AC1E);
    let mut baseline = HetBaseline {
        instances: HET_INSTANCES,
        tasks: 0,
        processors: 0,
        classes: 0,
        max_replication: 0,
        period_slack,
        dp_solved: 0,
        greedy_solved: 0,
        dp_exact_solves: 0,
        dp_total_millis: 0.0,
        greedy_total_millis: 0.0,
        mean_failure_gain: 0.0,
        max_failure_gain: 0.0,
        dp_wins: 0,
        dp_losses: 0,
        het_kernel,
    };
    let mut gains: Vec<f64> = Vec::new();
    for instance in generator.batch(HET_INSTANCES) {
        let chain = &instance.chain;
        let platform = &instance.heterogeneous;
        baseline.tasks = chain.len();
        baseline.processors = platform.num_processors();
        baseline.max_replication = platform.max_replication();
        let oracle = IntervalOracle::new(chain, platform);
        baseline.classes = oracle.classes().len();
        let bound = period_slack * chain.total_work() / platform.max_speed();

        let start = Instant::now();
        let dp = algo_het_with_oracle(&oracle, chain, platform, Some(bound));
        baseline.dp_total_millis += start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let greedy = greedy_het_with_oracle(&oracle, chain, platform, Some(bound));
        baseline.greedy_total_millis += start.elapsed().as_secs_f64() * 1e3;

        if let Ok(dp) = &dp {
            baseline.dp_solved += 1;
            if dp.method == HetMethod::ClassDp {
                baseline.dp_exact_solves += 1;
            }
        }
        if greedy.is_ok() {
            baseline.greedy_solved += 1;
        }
        if let (Ok(dp), Ok(greedy)) = (&dp, &greedy) {
            let (f_dp, f_greedy) = (1.0 - dp.reliability, 1.0 - greedy.reliability);
            if f_greedy > 0.0 {
                gains.push((f_greedy - f_dp) / f_greedy);
            }
            if dp.reliability > greedy.reliability {
                baseline.dp_wins += 1;
            } else if dp.reliability < greedy.reliability {
                baseline.dp_losses += 1;
            }
        }
    }
    if !gains.is_empty() {
        baseline.mean_failure_gain = gains.iter().sum::<f64>() / gains.len() as f64;
        baseline.max_failure_gain = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    }
    baseline
}

/// The `algo_het_lat` (latency-aware label DP + Lagrangian fallback) vs
/// latency-aware greedy comparison at the paper's 10-processor 3-class
/// setup, under the tight relative bounds of
/// `rpo_workload::BoundsSpec::paper_het_lat` (period `0.75 × W/s_max`,
/// latency `1.6 × W/s_max`).
#[derive(Debug, Serialize)]
struct HetLatBaseline {
    instances: usize,
    tasks: usize,
    processors: usize,
    classes: usize,
    max_replication: usize,
    period_slack: f64,
    latency_slack: f64,
    /// Instances each strategy solved within both bounds.
    dp_solved: usize,
    greedy_solved: usize,
    /// Solves answered by the exact label DP (vs Lagrangian fallback or
    /// greedy).
    dp_exact_solves: usize,
    lagrangian_solves: usize,
    /// Total `algo_het_lat` wall-clock across all instances (includes its
    /// internal greedy run, as in `BENCH_het.json`).
    dp_total_millis: f64,
    /// Total standalone latency-aware greedy wall-clock.
    greedy_total_millis: f64,
    /// Failure-probability gain `(F_greedy − F_dp) / F_greedy`, averaged /
    /// maximized over the instances both strategies solved.
    mean_failure_gain: f64,
    max_failure_gain: f64,
    /// Instances where the DP is strictly more reliable than the greedy —
    /// must be positive (`--enforce-het-lat-gain` fails otherwise).
    dp_wins: usize,
    /// Instances where the DP is *less* reliable than the greedy — must be
    /// zero.
    dp_losses: usize,
    /// Returned mappings violating a bound — must be zero.
    bound_violations: usize,
}

fn run_het_lat_baseline() -> HetLatBaseline {
    let spec = rpo_workload::BoundsSpec::paper_het_lat();
    let mut baseline = HetLatBaseline {
        instances: HET_INSTANCES,
        tasks: 0,
        processors: 0,
        classes: 0,
        max_replication: 0,
        period_slack: spec.period_slack,
        latency_slack: spec.latency_slack,
        dp_solved: 0,
        greedy_solved: 0,
        dp_exact_solves: 0,
        lagrangian_solves: 0,
        dp_total_millis: 0.0,
        greedy_total_millis: 0.0,
        mean_failure_gain: 0.0,
        max_failure_gain: 0.0,
        dp_wins: 0,
        dp_losses: 0,
        bound_violations: 0,
    };
    let mut gains: Vec<f64> = Vec::new();
    for bounded in rpo_workload::InstanceGenerator::paper_het_lat_stream(0x0AC1E, HET_INSTANCES) {
        let chain = &bounded.instance.chain;
        let platform = &bounded.instance.heterogeneous;
        baseline.tasks = chain.len();
        baseline.processors = platform.num_processors();
        baseline.max_replication = platform.max_replication();
        let oracle = IntervalOracle::new(chain, platform);
        baseline.classes = oracle.classes().len();

        let start = Instant::now();
        let dp = algo_het_lat_with_oracle(
            &oracle,
            chain,
            platform,
            Some(bounded.period_bound),
            bounded.latency_bound,
        );
        baseline.dp_total_millis += start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let greedy = greedy_het_lat_with_oracle(
            &oracle,
            chain,
            platform,
            Some(bounded.period_bound),
            bounded.latency_bound,
        );
        baseline.greedy_total_millis += start.elapsed().as_secs_f64() * 1e3;

        if let Ok(dp) = &dp {
            baseline.dp_solved += 1;
            match dp.method {
                HetLatMethod::LatDp => baseline.dp_exact_solves += 1,
                HetLatMethod::Lagrangian => baseline.lagrangian_solves += 1,
                HetLatMethod::Greedy => {}
            }
            let evaluation = oracle.evaluate(&dp.mapping);
            if evaluation.worst_case_latency > bounded.latency_bound
                || evaluation.worst_case_period > bounded.period_bound
            {
                baseline.bound_violations += 1;
            }
        }
        if greedy.is_ok() {
            baseline.greedy_solved += 1;
        }
        if let (Ok(dp), Ok(greedy)) = (&dp, &greedy) {
            let (f_dp, f_greedy) = (1.0 - dp.reliability, 1.0 - greedy.reliability);
            if f_greedy > 0.0 {
                gains.push((f_greedy - f_dp) / f_greedy);
            }
            if dp.reliability > greedy.reliability {
                baseline.dp_wins += 1;
            } else if dp.reliability < greedy.reliability {
                baseline.dp_losses += 1;
            }
        }
    }
    if !gains.is_empty() {
        baseline.mean_failure_gain = gains.iter().sum::<f64>() / gains.len() as f64;
        baseline.max_failure_gain = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    }
    baseline
}

/// The repair ladder vs a cold re-solve on a single-processor failure at
/// the DP comparison size (`n = 100`, `p = 20`). The cold side pays what a
/// delta-oblivious pipeline pays — a fresh [`IntervalOracle`] plus a full
/// Algorithm 1 run on the shrunken platform; the repair side answers the
/// same question through [`rpo_repair::RepairSession::apply`]. The
/// `--enforce-repair-speedup` gate fails below 10×, or if the repaired
/// reliability drifts from the cold optimum by more than 1e-12 relative.
#[derive(Debug, Serialize)]
struct RepairBaseline {
    tasks: usize,
    processors: usize,
    max_replication: usize,
    sessions: usize,
    /// Median wall-clock of one `apply(ProcessorFailed)` (oracle delta +
    /// ladder), in milliseconds.
    repair_millis: f64,
    /// Median wall-clock of the cold path (fresh oracle + full DP on the
    /// shrunken platform), in milliseconds.
    cold_millis: f64,
    speedup: f64,
    repair_reliability: f64,
    cold_reliability: f64,
    /// `|repair − cold| / cold` — must stay ≤ 1e-12.
    reliability_rel_diff: f64,
    /// Ladder tier census across the timed sessions.
    local_patches: usize,
    warm_dps: usize,
    full_solves: usize,
}

fn run_repair_baseline() -> RepairBaseline {
    use rpo_model::PlatformDelta;
    use rpo_repair::{RepairSession, RepairTier};

    let chain = bench_chain(DP_TASKS, 42);
    let platform = bench_hom_platform(DP_PROCESSORS);
    let delta = PlatformDelta::ProcessorFailed(DP_PROCESSORS - 1);
    let (_, shrunken) = delta
        .apply(&chain, &platform)
        .expect("removing one of twenty processors");

    // One warm session per repetition, built untimed — `apply` consumes the
    // warm state, so each timed repair starts from an identical session.
    let mut sessions: Vec<RepairSession> = (0..DP_REPS)
        .map(|_| RepairSession::new(chain.clone(), platform.clone(), None).expect("initial solve"))
        .collect();
    let (mut repair_samples, mut tiers) = (Vec::with_capacity(DP_REPS), [0usize; 3]);
    let mut repair_reliability = 0.0;
    for session in &mut sessions {
        let start = Instant::now();
        let report = session.apply(&delta).expect("repairing one failure");
        repair_samples.push(start.elapsed().as_secs_f64() * 1e3);
        match report.tier {
            RepairTier::LocalPatch => tiers[0] += 1,
            RepairTier::WarmDp => tiers[1] += 1,
            RepairTier::FullSolve => tiers[2] += 1,
        }
        repair_reliability = report.reliability;
    }
    repair_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let repair_millis = repair_samples[repair_samples.len() / 2];

    let mut cold_reliability = 0.0;
    let cold_millis = time_median(DP_REPS, || {
        let oracle = IntervalOracle::new(&chain, &shrunken);
        let result = optimize_reliability_homogeneous_with_oracle(&oracle, &chain, &shrunken)
            .expect("cold re-solve");
        cold_reliability = result.reliability;
        std::hint::black_box(&result);
    });

    RepairBaseline {
        tasks: DP_TASKS,
        processors: DP_PROCESSORS,
        max_replication: platform.max_replication(),
        sessions: DP_REPS,
        repair_millis,
        cold_millis,
        speedup: cold_millis / repair_millis,
        repair_reliability,
        cold_reliability,
        reliability_rel_diff: ((repair_reliability - cold_reliability) / cold_reliability).abs(),
        local_patches: tiers[0],
        warm_dps: tiers[1],
        full_solves: tiers[2],
    }
}

/// The pre-oracle replicated homogeneous interval reliability: three `exp`s
/// per call, recomputed for every `(j, i, q)` candidate.
fn naive_replicated(chain: &TaskChain, platform: &Platform, interval: Interval, q: usize) -> f64 {
    let input_size = if interval.first == 0 {
        0.0
    } else {
        chain.output_size(interval.first - 1)
    };
    let block = reliability::replica_block_reliability(
        chain,
        platform,
        0,
        interval,
        input_size,
        interval.output_size(chain),
    );
    1.0 - (1.0 - block).powi(q as i32)
}

/// The pre-oracle dynamic program of Algorithms 1/2 (nested-vector tables,
/// per-candidate reliability recomputation), returning the best reliability.
fn naive_reliability_dp(
    chain: &TaskChain,
    platform: &Platform,
    admissible: impl Fn(Interval) -> bool,
) -> Option<f64> {
    let n = chain.len();
    let p = platform.num_processors();
    let k_max = platform.max_replication().min(p);

    let mut f = vec![vec![-1.0f64; p + 1]; n + 1];
    let mut choice = vec![vec![None::<(usize, usize)>; p + 1]; n + 1];
    f[0][0] = 1.0;

    for i in 1..=n {
        for j in 0..i {
            let interval = Interval {
                first: j,
                last: i - 1,
            };
            if !admissible(interval) {
                continue;
            }
            for q in 1..=k_max {
                let rel_interval = naive_replicated(chain, platform, interval, q);
                for k in q..=p {
                    let prev = f[j][k - q];
                    if prev < 0.0 {
                        continue;
                    }
                    let rel = prev * rel_interval;
                    if rel > f[i][k] {
                        f[i][k] = rel;
                        choice[i][k] = Some((j, q));
                    }
                }
            }
        }
    }
    std::hint::black_box(&choice);
    (1..=p)
        .map(|k| f[n][k])
        .filter(|&r| r >= 0.0)
        .max_by(|a, b| a.partial_cmp(b).expect("finite reliabilities"))
}

/// Median wall-clock of `reps` runs of `body`, in milliseconds.
fn time_median(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

fn compare_dp(chain: &TaskChain, platform: &Platform, period_bound: Option<f64>) -> DpComparison {
    let speed = platform.speed(0);
    let naive_millis = time_median(DP_REPS, || {
        let result = naive_reliability_dp(chain, platform, |interval| {
            period_bound.is_none_or(|bound| {
                rpo_model::timing::interval_period_requirement(chain, platform, interval, speed)
                    <= bound
            })
        });
        std::hint::black_box(result);
    });
    let oracle_millis = time_median(DP_REPS, || {
        // Oracle construction is part of the measured fast path: one oracle
        // per instance is exactly what the solvers pay.
        let oracle = IntervalOracle::new(chain, platform);
        let result = match period_bound {
            None => optimize_reliability_homogeneous_with_oracle(&oracle, chain, platform),
            Some(bound) => {
                optimize_reliability_with_period_bound_with_oracle(&oracle, chain, platform, bound)
            }
        };
        std::hint::black_box(result.ok());
    });
    DpComparison {
        tasks: chain.len(),
        processors: platform.num_processors(),
        max_replication: platform.max_replication(),
        naive_millis,
        oracle_millis,
        speedup: naive_millis / oracle_millis,
    }
}

fn compare_kernels(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
) -> KernelComparison {
    // The oracle is built once outside the timed body: it is instance-level
    // precomputation shared by every solver of a portfolio solve (and now by
    // the engine's chain-keyed cache across solves) — its cost is measured
    // separately in `BENCH_oracle.json`. This comparison isolates the DP
    // sweep the two kernels implement differently.
    let oracle = IntervalOracle::new(chain, platform);
    let measure = |kernel: DpKernel| {
        time_median(DP_REPS, || {
            let result = reliability_dp_with_kernel(&oracle, chain, platform, period_bound, kernel);
            std::hint::black_box(result);
        })
    };
    let scalar_millis = measure(DpKernel::Scalar);
    let chunked_millis = measure(DpKernel::Chunked);
    KernelComparison {
        tasks: chain.len(),
        processors: platform.num_processors(),
        max_replication: platform.max_replication(),
        scalar_millis,
        chunked_millis,
        speedup: scalar_millis / chunked_millis,
    }
}

/// A batch of near-duplicate instances: `BATCH_INSTANCES / 3` distinct
/// chains/platforms, three period-bound variants each — the shape where the
/// chain-keyed oracle cache pays (the front cache misses every variant).
fn near_duplicate_instances() -> Vec<ProblemInstance> {
    let generator = InstanceGenerator::paper_homogeneous(0x0AC1E);
    let mut instances = Vec::new();
    for experiment in generator.batch(BATCH_INSTANCES / 3) {
        for period_slack in [1.3, 1.5, 1.8] {
            let bounds = BoundsPolicy {
                period_slack,
                ..BoundsPolicy::default()
            };
            instances.push(bounds.instance(&experiment, false));
        }
    }
    instances
}

/// Batch repetitions for the sharing comparison (median throughput): oracle
/// construction is a few percent of a solve, so single batch runs are noisy.
const SHARING_REPS: usize = 5;

fn run_sharing_batch(share_oracles: bool) -> SharingSummary {
    let mut summaries: Vec<SharingSummary> = (0..SHARING_REPS)
        .map(|_| {
            // Fresh engine per repetition (the instance cache must not answer
            // repeats). Single-threaded solves + instance-level batch
            // parallelism: the batch driver divides its worker budget by the
            // engine's per-solve threads, so threads(1) gives one inline
            // (spawn-free) solve per batch worker.
            let engine = if share_oracles {
                PortfolioEngine::default().with_threads(1)
            } else {
                PortfolioEngine::default()
                    .with_threads(1)
                    .with_oracle_cache_capacity(0)
            };
            let driver = BatchDriver::new(BatchConfig::default());
            let report = driver.run_instances(&engine, near_duplicate_instances());
            SharingSummary {
                instances: report.instances,
                elapsed_millis: report.elapsed.as_secs_f64() * 1e3,
                instances_per_sec: report.throughput(),
                oracle_cache_hits: report.oracle_cache.hits,
                oracle_cache_misses: report.oracle_cache.misses,
            }
        })
        .collect();
    summaries.sort_by(|a, b| {
        a.instances_per_sec
            .partial_cmp(&b.instances_per_sec)
            .expect("finite throughputs")
    });
    summaries.swap_remove(SHARING_REPS / 2)
}

fn run_batch() -> BatchSummary {
    let engine = PortfolioEngine::default().with_threads(1);
    let driver = BatchDriver::new(BatchConfig {
        bounds: BoundsPolicy::default(),
        ..BatchConfig::default()
    });
    let generator = InstanceGenerator::paper_homogeneous(0x0AC1E);
    let report = driver.run(&engine, generator.stream(BATCH_INSTANCES));
    BatchSummary {
        instances: report.instances,
        feasible_instances: report.feasible_instances,
        elapsed_millis: report.elapsed.as_secs_f64() * 1e3,
        instances_per_sec: report.throughput(),
        backends: report
            .backend_stats
            .iter()
            .map(|s| BackendSummary {
                backend: s.backend.clone(),
                runs: s.runs,
                wins: s.wins,
                win_rate: s.win_rate(),
                front_points: s.front_points,
                total_micros: s.total_micros,
            })
            .collect(),
    }
}

/// Writes one `BENCH_*.json` through the shared [`rpo_obs`] reporter: the
/// payload fields stay at the top level (existing gate consumers keep
/// working) and the cumulative instrumented [`rpo_obs::MetricsSnapshot`]
/// rides along under `metrics`.
fn write_json<T: Serialize>(path: &str, bench: &str, value: &T) {
    rpo_obs::write_bench_report(path, bench, value, &rpo_obs::global().snapshot())
        .expect("writing the baseline file");
    eprintln!("wrote {path}");
}

/// Unconditional acceptance check of the observability plumbing: after the
/// instrumented portfolio batch the registry must expose per-backend
/// solve-time histograms, hit/miss counters for all three caches, and a
/// nonzero DP-kernel span histogram.
fn assert_observability(snapshot: &rpo_obs::MetricsSnapshot, batch: &BatchSummary) {
    for backend in batch.backends.iter().filter(|b| b.runs > 0) {
        let name = format!("backend.solve.{}", backend.backend);
        let histogram = snapshot
            .histogram(&name)
            .unwrap_or_else(|| panic!("missing {name} histogram in the metrics snapshot"));
        assert!(
            histogram.count as usize >= backend.runs,
            "{name}: {} samples < {} recorded runs",
            histogram.count,
            backend.runs
        );
        assert!(
            histogram.p50_nanos > 0.0 && histogram.p99_nanos >= histogram.p50_nanos,
            "{name}: degenerate percentiles (p50 {}, p99 {})",
            histogram.p50_nanos,
            histogram.p99_nanos
        );
    }
    for family in ["cache.instance", "cache.oracle", "cache.scratch"] {
        for leaf in ["hits", "misses"] {
            let name = format!("{family}.{leaf}");
            assert!(
                snapshot.counter_value(&name).is_some(),
                "missing {name} counter in the metrics snapshot"
            );
        }
    }
    let kernel_spans = snapshot
        .histogram("span.dp.kernel")
        .expect("missing span.dp.kernel histogram in the metrics snapshot");
    assert!(
        kernel_spans.count > 0,
        "no dp.kernel spans recorded during the instrumented batch"
    );
    eprintln!(
        "  observability: {} backend histograms, all three cache counter families, \
         {} dp.kernel spans",
        batch.backends.iter().filter(|b| b.runs > 0).count(),
        kernel_spans.count
    );
}

/// Overhead-guard repetitions per side (median filtering, like the sharing
/// comparison).
const OVERHEAD_REPS: usize = 5;

/// Median batch throughput (instances/sec) of `OVERHEAD_REPS` fresh-engine
/// paper-style batches with the observability runtime toggle set to
/// `enabled`.
fn overhead_throughput(enabled: bool) -> f64 {
    rpo_obs::set_enabled(enabled);
    let mut samples: Vec<f64> = (0..OVERHEAD_REPS)
        .map(|_| {
            let engine = PortfolioEngine::default().with_threads(1);
            let driver = BatchDriver::new(BatchConfig::default());
            let generator = InstanceGenerator::paper_homogeneous(0x0AC1E);
            let report = driver.run(&engine, generator.stream(BATCH_INSTANCES));
            report.throughput()
        })
        .collect();
    rpo_obs::set_enabled(true);
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite throughputs"));
    samples[samples.len() / 2]
}

/// Requests in the serve replay (`BENCH_serve.json`). The gate demands at
/// least 2 000 requests with ≥ 30% duplicates.
const SERVE_REQUESTS: usize = 2048;

/// Seed of the serve replay stream.
const SERVE_SEED: u64 = 9010;

/// The serve replay: a duplicate-heavy request stream paced to its Poisson
/// arrival offsets and driven through an in-process [`SolverService`],
/// measuring sustained throughput, the latency distribution, and the
/// admission-control invariants (`--enforce-serve-latency` gate).
#[derive(Debug, Serialize)]
struct ServeBaseline {
    /// Requests replayed (gate: ≥ 2 000).
    requests: usize,
    /// Requests repeating an earlier unique instance.
    duplicate_requests: usize,
    /// `duplicate_requests / requests` (gate: ≥ 0.30).
    duplicate_fraction: f64,
    /// Mean offered load of the replay spec, in requests per second.
    offered_rate_per_s: f64,
    /// Per-request deadline of the replay spec, in milliseconds.
    deadline_ms: f64,
    /// Service worker threads.
    workers: usize,
    /// Wall-clock of the whole replay: first submit to full drain.
    elapsed_millis: f64,
    /// Sustained throughput: every request terminally answered, over the
    /// full replay wall-clock (gate: ≥ 2 000 req/s).
    throughput_req_per_s: f64,
    /// Requests admitted to the solve queue.
    admitted: u64,
    /// Requests coalesced onto an already-queued or in-flight solve.
    coalesced: u64,
    /// Requests answered from a per-tenant cache shard at admission.
    shard_cache_hits: u64,
    /// Responses flagged `coalesced` or `cached` (shard hits plus
    /// engine-cache answers): duplicate traffic that paid no fresh solve.
    absorbed_responses: u64,
    /// Engine solve calls issued by the service workers.
    solves: u64,
    /// Requests shed on a passed deadline (at admission, at dequeue, or at
    /// delivery) — always as a typed rejection, never a stale result.
    shed: u64,
    /// Requests rejected because the bounded queue was full.
    overloaded: u64,
    /// `Ok`/`Infeasible` responses delivered past their deadline, with a
    /// 1 ms grace for the measurement itself (gate: must be 0; the service
    /// converts late results to sheds before handing anything out).
    deadline_violations: u64,
    /// Shed responses carrying solve work or a mapping payload (gate: must
    /// be 0 — a shed is rejected without being solved).
    sheds_carrying_solves: u64,
    /// Median end-to-end latency (submit to response), milliseconds.
    latency_p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    latency_p99_ms: f64,
    /// 99.9th-percentile end-to-end latency, milliseconds.
    latency_p999_ms: f64,
    /// Median queue wait of admitted requests, milliseconds.
    queue_wait_p50_ms: f64,
    /// 99th-percentile queue wait of admitted requests, milliseconds.
    queue_wait_p99_ms: f64,
}

/// One delivered response with its submit/delivery instants, for the
/// external deadline audit.
struct Delivery {
    response: ServeResponse,
    submitted: Instant,
    delivered: Instant,
    deadline: Duration,
}

fn run_serve_baseline() -> ServeBaseline {
    let base = rpo_obs::global().snapshot();
    let spec = RequestSpec::serve_replay(SERVE_SEED);
    let requests: Vec<GeneratedRequest> = spec.stream(SERVE_REQUESTS).collect();
    let duplicate_requests = requests
        .iter()
        .filter(|request| request.duplicate_of.is_some())
        .count();

    let config = ServeConfig {
        workers: 2,
        queue_capacity: 1024,
        default_deadline: None,
        ..ServeConfig::default()
    };
    let workers = config.workers;
    let engine = Arc::new(PortfolioEngine::default().with_threads(1));
    let service = SolverService::start(engine, config);

    let deliveries: Arc<Mutex<Vec<Delivery>>> =
        Arc::new(Mutex::new(Vec::with_capacity(SERVE_REQUESTS)));
    let start = Instant::now();
    for request in &requests {
        // Pace to the spec's Poisson arrival offsets, so queue waits
        // reflect the offered load rather than a single burst.
        let now = start.elapsed();
        if now < request.arrival {
            std::thread::sleep(request.arrival - now);
        }
        let finite = |bound: f64| Some(bound).filter(|b| b.is_finite());
        let wire = ServeRequest {
            id: request.index as u64,
            tenant: request.tenant,
            deadline_ms: Some(request.deadline.as_secs_f64() * 1_000.0),
            chain: request.instance.chain.clone(),
            platform: request.instance.homogeneous.clone(),
            period_bound: finite(request.period_bound),
            latency_bound: finite(request.latency_bound),
        };
        let sink = Arc::clone(&deliveries);
        let submitted = Instant::now();
        let deadline = request.deadline;
        service.submit_with(
            wire,
            Box::new(move |response| {
                sink.lock().expect("delivery log poisoned").push(Delivery {
                    response,
                    submitted,
                    delivered: Instant::now(),
                    deadline,
                });
            }),
        );
    }
    let stats = service.shutdown();
    let elapsed = start.elapsed();

    let deliveries = Arc::try_unwrap(deliveries)
        .unwrap_or_else(|_| panic!("delivery log still shared after drain"))
        .into_inner()
        .expect("delivery log poisoned");
    assert_eq!(
        deliveries.len(),
        SERVE_REQUESTS,
        "every request must receive exactly one terminal response"
    );

    // External deadline audit: the service converts late results to sheds
    // before handing anything out; allow 1 ms for the measurement (the gap
    // between the service's own check and this thread observing delivery).
    let grace = Duration::from_millis(1);
    let mut deadline_violations = 0u64;
    let mut sheds_carrying_solves = 0u64;
    let mut absorbed_responses = 0u64;
    for delivery in &deliveries {
        let response = &delivery.response;
        match response.status {
            ResponseStatus::Ok | ResponseStatus::Infeasible => {
                if delivery.delivered > delivery.submitted + delivery.deadline + grace {
                    deadline_violations += 1;
                }
                if response.coalesced || response.cached {
                    absorbed_responses += 1;
                }
            }
            ResponseStatus::Shed if response.solve_micros > 0 || response.mapping.is_some() => {
                sheds_carrying_solves += 1;
            }
            _ => {}
        }
    }

    let delta = rpo_obs::global().snapshot().delta(&base);
    let quantiles = |name: &str| -> (f64, f64, f64) {
        delta.histogram(name).map_or((0.0, 0.0, 0.0), |h| {
            (h.p50_nanos / 1e6, h.p99_nanos / 1e6, h.p999_nanos / 1e6)
        })
    };
    let (latency_p50_ms, latency_p99_ms, latency_p999_ms) = quantiles("serve.latency");
    let (queue_wait_p50_ms, queue_wait_p99_ms, _) = quantiles("serve.queue_wait");

    ServeBaseline {
        requests: SERVE_REQUESTS,
        duplicate_requests,
        duplicate_fraction: duplicate_requests as f64 / SERVE_REQUESTS as f64,
        offered_rate_per_s: spec.arrival_rate,
        deadline_ms: spec.deadline.as_secs_f64() * 1_000.0,
        workers,
        elapsed_millis: elapsed.as_secs_f64() * 1_000.0,
        throughput_req_per_s: SERVE_REQUESTS as f64 / elapsed.as_secs_f64(),
        admitted: stats.admitted,
        coalesced: stats.coalesced,
        shard_cache_hits: stats.cache_hits,
        absorbed_responses,
        solves: stats.solved,
        shed: stats.shed,
        overloaded: stats.overloaded,
        deadline_violations,
        sheds_carrying_solves,
        latency_p50_ms,
        latency_p99_ms,
        latency_p999_ms,
        queue_wait_p50_ms,
        queue_wait_p99_ms,
    }
}

fn main() {
    let (mut outputs, mut enforce, mut enforce_het, mut enforce_het_lat, mut enforce_obs) =
        (Vec::new(), false, false, false, false);
    let (mut enforce_batch, mut enforce_repair, mut enforce_het_kernel) = (false, false, false);
    let mut enforce_serve = false;
    for arg in std::env::args().skip(1) {
        if arg == "--enforce-kernel-speedup" {
            enforce = true;
        } else if arg == "--enforce-het-gain" {
            enforce_het = true;
        } else if arg == "--enforce-het-lat-gain" {
            enforce_het_lat = true;
        } else if arg == "--enforce-obs-overhead" {
            enforce_obs = true;
        } else if arg == "--enforce-batch-speedup" {
            enforce_batch = true;
        } else if arg == "--enforce-repair-speedup" {
            enforce_repair = true;
        } else if arg == "--enforce-het-kernel-speedup" {
            enforce_het_kernel = true;
        } else if arg == "--enforce-serve-latency" {
            enforce_serve = true;
        } else {
            outputs.push(arg);
        }
    }
    // Speedup-floor gates share the overhead guard's environment awareness:
    // wall-clock medians on boxes pinned to one or two cores are dominated
    // by scheduler jitter, so those floors are reported, not enforced,
    // there. Bit-identity checks have no such excuse and assert everywhere.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let starved = cores <= 2;
    let oracle_output = outputs
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_oracle.json".to_string());
    let kernel_output = outputs
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let het_output = outputs
        .get(2)
        .cloned()
        .unwrap_or_else(|| "BENCH_het.json".to_string());
    let het_lat_output = outputs
        .get(3)
        .cloned()
        .unwrap_or_else(|| "BENCH_het_lat.json".to_string());
    let repair_output = outputs
        .get(4)
        .cloned()
        .unwrap_or_else(|| "BENCH_repair.json".to_string());
    let serve_output = outputs
        .get(5)
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let chain = bench_chain(DP_TASKS, 42);
    let platform = bench_hom_platform(DP_PROCESSORS);

    eprintln!(
        "timing Algorithm 1 (n = {DP_TASKS}, p = {DP_PROCESSORS}, K = {}) …",
        platform.max_replication()
    );
    let algo1 = compare_dp(&chain, &platform, None);
    eprintln!(
        "  naive {:.2} ms, oracle {:.2} ms → {:.1}×",
        algo1.naive_millis, algo1.oracle_millis, algo1.speedup
    );

    // A period bound that keeps a healthy fraction of intervals admissible.
    let bound = 0.25 * chain.total_work() / platform.speed(0);
    eprintln!("timing Algorithm 2 (period bound {bound:.1}) …");
    let algo2 = compare_dp(&chain, &platform, Some(bound));
    eprintln!(
        "  naive {:.2} ms, oracle {:.2} ms → {:.1}×",
        algo2.naive_millis, algo2.oracle_millis, algo2.speedup
    );

    eprintln!("driving a {BATCH_INSTANCES}-instance portfolio batch …");
    let portfolio_batch = run_batch();
    eprintln!(
        "  {:.1} instances/sec, {} feasible",
        portfolio_batch.instances_per_sec, portfolio_batch.feasible_instances
    );

    assert_observability(&rpo_obs::global().snapshot(), &portfolio_batch);

    let baseline = OracleBaseline {
        algo1,
        algo2,
        portfolio_batch,
    };
    write_json(&oracle_output, "oracle", &baseline);

    eprintln!("timing the DP kernels (scalar reference vs lane-chunked) …");
    let kernel_algo1 = compare_kernels(&chain, &platform, None);
    eprintln!(
        "  algo1: scalar {:.2} ms, chunked {:.2} ms → {:.2}×",
        kernel_algo1.scalar_millis, kernel_algo1.chunked_millis, kernel_algo1.speedup
    );
    let kernel_algo2 = compare_kernels(&chain, &platform, Some(bound));
    eprintln!(
        "  algo2: scalar {:.2} ms, chunked {:.2} ms → {:.2}×",
        kernel_algo2.scalar_millis, kernel_algo2.chunked_millis, kernel_algo2.speedup
    );

    eprintln!("driving the near-duplicate batch with and without oracle sharing …");
    // Unshared first: any residual warm-up bias favours the *baseline*, so
    // an observed sharing win is not an ordering artifact.
    let unshared = run_sharing_batch(false);
    let shared = run_sharing_batch(true);
    eprintln!(
        "  shared {:.1} instances/sec ({} oracle hits), unshared {:.1} instances/sec",
        shared.instances_per_sec, shared.oracle_cache_hits, unshared.instances_per_sec
    );

    let fresh_batch = run_batch();
    eprintln!(
        "  portfolio batch (kernel build): {:.1} instances/sec",
        fresh_batch.instances_per_sec
    );

    eprintln!(
        "timing the batched SoA mega-kernel on a {BATCH_SOA_INSTANCES}-instance \
         same-shape stream …"
    );
    let batch_soa = run_batch_soa();
    eprintln!(
        "  per-instance {:.1} inst/s, lockstep {:.1} inst/s, blocked {:.1} inst/s \
         → {:.2}× (default inner {:?})",
        batch_soa.per_instance_per_s,
        batch_soa.lockstep_per_s,
        batch_soa.blocked_per_s,
        batch_soa.speedup,
        BatchInner::default(),
    );
    let batch_regressed = batch_soa.speedup < 1.4;

    eprintln!(
        "timing the padded near-shape batch on a {PADDED_INSTANCES}-instance \
         mixed-length stream (n ∈ [{PADDED_MIN_TASKS}, {PADDED_MAX_TASKS}]) …"
    );
    let batch_padded = run_padded_batch();
    eprintln!(
        "  per-instance {:.1} ms, batched {:.1} ms → {:.2}× ({} of {} lanes padded, \
         bit-identical: {})",
        batch_padded.per_instance_millis,
        batch_padded.batched_millis,
        batch_padded.speedup,
        batch_padded.padded_lanes,
        batch_padded.instances,
        batch_padded.bit_identical,
    );
    assert!(
        batch_padded.bit_identical,
        "the padded near-shape batch diverged from the per-instance chunked kernel"
    );
    let padded_regressed = batch_padded.speedup < 1.0;

    let slower = kernel_algo1.speedup < 1.0 || kernel_algo2.speedup < 1.0;
    let kernel = KernelBaseline {
        algo1: kernel_algo1,
        algo2: kernel_algo2,
        portfolio_batch: fresh_batch,
        batch_shared_oracle: shared,
        batch_unshared_oracle: unshared,
        batch_soa,
        batch_padded,
    };
    write_json(&kernel_output, "kernel", &kernel);

    eprintln!(
        "timing the class-DP kernels (scalar vs chunked) on {HET_KERNEL_INSTANCES} \
         paper-regime instances at n = {HET_KERNEL_TASKS} …"
    );
    let het_kernel = run_het_kernel_comparison();
    eprintln!(
        "  scalar {:.2} ms, chunked {:.2} ms → {:.2}× (bit-identical: {})",
        het_kernel.scalar_millis,
        het_kernel.chunked_millis,
        het_kernel.speedup,
        het_kernel.bit_identical,
    );
    assert!(
        het_kernel.bit_identical,
        "the chunked class-DP kernel diverged from the scalar reference"
    );
    let het_kernel_regressed = het_kernel.speedup < 1.3;

    eprintln!(
        "running algo_het vs greedy on {HET_INSTANCES} class-structured heterogeneous instances …"
    );
    let het = run_het_baseline(het_kernel);
    eprintln!(
        "  dp solved {}/{} ({} exact DP), greedy solved {}; algo_het {:.1} ms (incl. its \
         internal greedy run) vs greedy alone {:.1} ms; \
         mean failure gain {:.1}%, {} wins / {} losses",
        het.dp_solved,
        het.instances,
        het.dp_exact_solves,
        het.greedy_solved,
        het.dp_total_millis,
        het.greedy_total_millis,
        100.0 * het.mean_failure_gain,
        het.dp_wins,
        het.dp_losses,
    );
    let het_regressed = het.dp_losses > 0 || het.dp_solved < het.greedy_solved;
    write_json(&het_output, "het", &het);

    eprintln!(
        "running algo_het_lat vs latency-aware greedy on {HET_INSTANCES} latency-bounded \
         class-structured instances …"
    );
    let het_lat = run_het_lat_baseline();
    eprintln!(
        "  dp solved {}/{} ({} label DP, {} lagrangian), greedy solved {}; algo_het_lat \
         {:.1} ms (incl. its internal greedy run) vs greedy alone {:.1} ms; mean failure gain \
         {:.1}%, {} strict wins / {} losses, {} bound violations",
        het_lat.dp_solved,
        het_lat.instances,
        het_lat.dp_exact_solves,
        het_lat.lagrangian_solves,
        het_lat.greedy_solved,
        het_lat.dp_total_millis,
        het_lat.greedy_total_millis,
        100.0 * het_lat.mean_failure_gain,
        het_lat.dp_wins,
        het_lat.dp_losses,
        het_lat.bound_violations,
    );
    // The latency gate demands *strict* DP wins over the greedy pipeline at
    // the paper's 10-processor 3-class setup, on top of no losses, no
    // missed solves, and no bound violations.
    let het_lat_regressed = het_lat.dp_losses > 0
        || het_lat.dp_solved < het_lat.greedy_solved
        || het_lat.dp_wins == 0
        || het_lat.bound_violations > 0;
    write_json(&het_lat_output, "het_lat", &het_lat);

    eprintln!(
        "timing the repair ladder vs a cold re-solve on a single-processor failure \
         (n = {DP_TASKS}, p = {DP_PROCESSORS}) …"
    );
    let repair = run_repair_baseline();
    eprintln!(
        "  repair {:.3} ms vs cold {:.2} ms → {:.0}× \
         ({} local-patch / {} warm-dp / {} full-solve, reliability diff {:.1e})",
        repair.repair_millis,
        repair.cold_millis,
        repair.speedup,
        repair.local_patches,
        repair.warm_dps,
        repair.full_solves,
        repair.reliability_rel_diff,
    );
    let repair_regressed = repair.speedup < 10.0 || repair.reliability_rel_diff > 1e-12;
    write_json(&repair_output, "repair", &repair);

    eprintln!(
        "replaying a {SERVE_REQUESTS}-request duplicate-heavy stream through the \
         solver service …"
    );
    let serve = run_serve_baseline();
    eprintln!(
        "  {:.0} req/s sustained ({:.0}% duplicates; {} coalesced, {} shard hits, \
         {} absorbed, {} solves); latency p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms; \
         {} shed, {} overloaded, {} deadline violations",
        serve.throughput_req_per_s,
        100.0 * serve.duplicate_fraction,
        serve.coalesced,
        serve.shard_cache_hits,
        serve.absorbed_responses,
        serve.solves,
        serve.latency_p50_ms,
        serve.latency_p99_ms,
        serve.latency_p999_ms,
        serve.shed,
        serve.overloaded,
        serve.deadline_violations,
    );
    // The admission-control invariants are structural — they hold on any
    // host and assert unconditionally (flags or not).
    assert!(
        serve.requests >= 2_000,
        "the serve replay must cover at least 2 000 requests"
    );
    assert!(
        serve.duplicate_fraction >= 0.30,
        "the serve replay must be duplicate-heavy (≥ 30%)"
    );
    assert_eq!(
        serve.deadline_violations, 0,
        "a response was delivered past its deadline"
    );
    assert_eq!(
        serve.sheds_carrying_solves, 0,
        "a shed response carried solve work — sheds must be rejected, not solved"
    );
    // The wall-clock floors are environment-aware like every other timing
    // gate: the sustained-throughput floor and the p99 ceiling.
    let serve_regressed =
        serve.throughput_req_per_s < 2_000.0 || serve.latency_p99_ms > serve.deadline_ms;
    write_json(&serve_output, "serve", &serve);

    let mut obs_regressed = false;
    if enforce_obs {
        eprintln!(
            "measuring observability overhead ({OVERHEAD_REPS} batches per side, \
             median throughput) …"
        );
        // Disabled side first: any residual warm-up bias then favours the
        // *uninstrumented* baseline, so a passing guard is not an ordering
        // artifact.
        let disabled = overhead_throughput(false);
        let enabled = overhead_throughput(true);
        let ratio = enabled / disabled;
        // Throughput medians on starved runners (boxes pinned to one or two
        // cores) are dominated by scheduler jitter, not recording cost: the
        // same build measures 15–30% "overhead" run to run with the
        // instrumented side's absolute throughput unchanged (the *baseline*
        // moves). No fixed budget is meaningful there, so report the numbers
        // and enforce nothing; the tight 3% budget holds wherever there is
        // headroom to measure it.
        eprintln!(
            "  obs enabled {enabled:.1} instances/sec vs disabled {disabled:.1} \
             instances/sec ({:.1}% overhead; {cores} cores)",
            100.0 * (1.0 - ratio),
        );
        if starved {
            eprintln!(
                "  (≤2-core host: medians reflect scheduler jitter, not recording \
                 cost — reporting only, gate not enforced)"
            );
        } else {
            obs_regressed = ratio < 0.97;
        }
    }

    if enforce && slower {
        eprintln!("FAIL: the chunked kernel measured slower than the scalar reference");
        std::process::exit(1);
    }
    if enforce_het && het_regressed {
        eprintln!("FAIL: algo_het fell below the greedy baseline (losses or fewer solves)");
        std::process::exit(1);
    }
    if enforce_het_lat && het_lat_regressed {
        eprintln!(
            "FAIL: algo_het_lat regressed against the latency-aware greedy baseline \
             (losses, fewer solves, no strict wins, or bound violations)"
        );
        std::process::exit(1);
    }
    if obs_regressed {
        eprintln!(
            "FAIL: observability overhead exceeded the environment-aware budget \
             of the uninstrumented batch"
        );
        std::process::exit(1);
    }
    if enforce_batch && batch_regressed {
        if starved {
            eprintln!(
                "  (≤2-core host: batched SoA speedup {:.2}× reported only, \
                 1.4× floor not enforced)",
                kernel.batch_soa.speedup
            );
        } else {
            eprintln!(
                "FAIL: the batched SoA mega-kernel measured below 1.4× the per-instance \
                 chunked kernel on the same-shape stream (2× with the zmm opt-in build)"
            );
            std::process::exit(1);
        }
    }
    if enforce_batch && padded_regressed {
        if starved {
            eprintln!(
                "  (≤2-core host: padded near-shape speedup {:.2}× reported only, \
                 floor not enforced)",
                kernel.batch_padded.speedup
            );
        } else {
            eprintln!(
                "FAIL: the padded near-shape batch measured slower than per-instance \
                 chunked solves on the mixed-length stream"
            );
            std::process::exit(1);
        }
    }
    if enforce_het_kernel && het_kernel_regressed {
        if starved {
            eprintln!(
                "  (≤2-core host: class-DP kernel speedup {:.2}× reported only, \
                 1.3× floor not enforced)",
                het.het_kernel.speedup
            );
        } else {
            eprintln!(
                "FAIL: the chunked class-DP kernel measured below 1.3× the scalar \
                 reference at the paper's 10-processor 3-class n = 100 regime"
            );
            std::process::exit(1);
        }
    }
    if enforce_repair && repair_regressed {
        eprintln!(
            "FAIL: repairing a single-processor failure measured below 10× the cold \
             re-solve, or its reliability drifted from the cold optimum"
        );
        std::process::exit(1);
    }
    if enforce_serve && serve_regressed {
        if starved {
            eprintln!(
                "  (≤2-core host: serve throughput/p99 floors reported only — the \
                 structural deadline and shed invariants asserted above still hold)"
            );
        } else {
            eprintln!(
                "FAIL: the solver service fell below 2 000 req/s sustained or its \
                 p99 latency exceeded the request deadline on the duplicate-heavy replay"
            );
            std::process::exit(1);
        }
    }
}
