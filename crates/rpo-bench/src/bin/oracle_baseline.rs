//! Machine-readable perf baseline for the oracle refactor: times the
//! Algorithm 1/2 dynamic programs with and without the [`IntervalOracle`]
//! and drives a portfolio batch, then writes `BENCH_oracle.json`.
//!
//! Usage: `cargo run --release -p rpo-bench --bin oracle_baseline [output]`
//! (default output path `BENCH_oracle.json` in the working directory).
//!
//! The "naive" dynamic program reimplements the pre-oracle recurrence — it
//! recomputes the Eq. 9 replica-block reliability (three `exp`s per
//! candidate) inside the `(j, i, q)` loops and uses nested `Vec<Vec<_>>`
//! tables — exactly what every solver in the workspace did before the
//! oracle, kept here as the measurement baseline.

use rpo_algorithms::{
    optimize_reliability_homogeneous_with_oracle,
    optimize_reliability_with_period_bound_with_oracle,
};
use rpo_bench::{bench_chain, bench_hom_platform};
use rpo_model::{reliability, Interval, IntervalOracle, Platform, TaskChain};
use rpo_portfolio::{BatchConfig, BatchDriver, BoundsPolicy, PortfolioEngine};
use rpo_workload::InstanceGenerator;
use serde::Serialize;
use std::time::Instant;

/// Problem size of the DP comparison (the acceptance target of the oracle
/// refactor: ≥ 3× at n = 100, p = 20).
const DP_TASKS: usize = 100;
const DP_PROCESSORS: usize = 20;
const DP_REPS: usize = 9;
const BATCH_INSTANCES: usize = 120;

#[derive(Debug, Serialize)]
struct DpComparison {
    tasks: usize,
    processors: usize,
    max_replication: usize,
    naive_millis: f64,
    oracle_millis: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BackendSummary {
    backend: String,
    runs: usize,
    wins: usize,
    win_rate: f64,
    front_points: usize,
    total_micros: u64,
}

#[derive(Debug, Serialize)]
struct BatchSummary {
    instances: usize,
    feasible_instances: usize,
    elapsed_millis: f64,
    instances_per_sec: f64,
    backends: Vec<BackendSummary>,
}

#[derive(Debug, Serialize)]
struct OracleBaseline {
    algo1: DpComparison,
    algo2: DpComparison,
    portfolio_batch: BatchSummary,
}

/// The pre-oracle replicated homogeneous interval reliability: three `exp`s
/// per call, recomputed for every `(j, i, q)` candidate.
fn naive_replicated(chain: &TaskChain, platform: &Platform, interval: Interval, q: usize) -> f64 {
    let input_size = if interval.first == 0 {
        0.0
    } else {
        chain.output_size(interval.first - 1)
    };
    let block = reliability::replica_block_reliability(
        chain,
        platform,
        0,
        interval,
        input_size,
        interval.output_size(chain),
    );
    1.0 - (1.0 - block).powi(q as i32)
}

/// The pre-oracle dynamic program of Algorithms 1/2 (nested-vector tables,
/// per-candidate reliability recomputation), returning the best reliability.
fn naive_reliability_dp(
    chain: &TaskChain,
    platform: &Platform,
    admissible: impl Fn(Interval) -> bool,
) -> Option<f64> {
    let n = chain.len();
    let p = platform.num_processors();
    let k_max = platform.max_replication().min(p);

    let mut f = vec![vec![-1.0f64; p + 1]; n + 1];
    let mut choice = vec![vec![None::<(usize, usize)>; p + 1]; n + 1];
    f[0][0] = 1.0;

    for i in 1..=n {
        for j in 0..i {
            let interval = Interval {
                first: j,
                last: i - 1,
            };
            if !admissible(interval) {
                continue;
            }
            for q in 1..=k_max {
                let rel_interval = naive_replicated(chain, platform, interval, q);
                for k in q..=p {
                    let prev = f[j][k - q];
                    if prev < 0.0 {
                        continue;
                    }
                    let rel = prev * rel_interval;
                    if rel > f[i][k] {
                        f[i][k] = rel;
                        choice[i][k] = Some((j, q));
                    }
                }
            }
        }
    }
    std::hint::black_box(&choice);
    (1..=p)
        .map(|k| f[n][k])
        .filter(|&r| r >= 0.0)
        .max_by(|a, b| a.partial_cmp(b).expect("finite reliabilities"))
}

/// Median wall-clock of `reps` runs of `body`, in milliseconds.
fn time_median(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

fn compare_dp(chain: &TaskChain, platform: &Platform, period_bound: Option<f64>) -> DpComparison {
    let speed = platform.speed(0);
    let naive_millis = time_median(DP_REPS, || {
        let result = naive_reliability_dp(chain, platform, |interval| {
            period_bound.is_none_or(|bound| {
                rpo_model::timing::interval_period_requirement(chain, platform, interval, speed)
                    <= bound
            })
        });
        std::hint::black_box(result);
    });
    let oracle_millis = time_median(DP_REPS, || {
        // Oracle construction is part of the measured fast path: one oracle
        // per instance is exactly what the solvers pay.
        let oracle = IntervalOracle::new(chain, platform);
        let result = match period_bound {
            None => optimize_reliability_homogeneous_with_oracle(&oracle, chain, platform),
            Some(bound) => {
                optimize_reliability_with_period_bound_with_oracle(&oracle, chain, platform, bound)
            }
        };
        std::hint::black_box(result.ok());
    });
    DpComparison {
        tasks: chain.len(),
        processors: platform.num_processors(),
        max_replication: platform.max_replication(),
        naive_millis,
        oracle_millis,
        speedup: naive_millis / oracle_millis,
    }
}

fn run_batch() -> BatchSummary {
    let engine = PortfolioEngine::default();
    let driver = BatchDriver::new(BatchConfig {
        bounds: BoundsPolicy::default(),
        ..BatchConfig::default()
    });
    let generator = InstanceGenerator::paper_homogeneous(0x0AC1E);
    let report = driver.run(&engine, generator.stream(BATCH_INSTANCES));
    BatchSummary {
        instances: report.instances,
        feasible_instances: report.feasible_instances,
        elapsed_millis: report.elapsed.as_secs_f64() * 1e3,
        instances_per_sec: report.throughput(),
        backends: report
            .backend_stats
            .iter()
            .map(|s| BackendSummary {
                backend: s.backend.clone(),
                runs: s.runs,
                wins: s.wins,
                win_rate: s.win_rate(),
                front_points: s.front_points,
                total_micros: s.total_micros,
            })
            .collect(),
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_oracle.json".to_string());

    let chain = bench_chain(DP_TASKS, 42);
    let platform = bench_hom_platform(DP_PROCESSORS);

    eprintln!(
        "timing Algorithm 1 (n = {DP_TASKS}, p = {DP_PROCESSORS}, K = {}) …",
        platform.max_replication()
    );
    let algo1 = compare_dp(&chain, &platform, None);
    eprintln!(
        "  naive {:.2} ms, oracle {:.2} ms → {:.1}×",
        algo1.naive_millis, algo1.oracle_millis, algo1.speedup
    );

    // A period bound that keeps a healthy fraction of intervals admissible.
    let bound = 0.25 * chain.total_work() / platform.speed(0);
    eprintln!("timing Algorithm 2 (period bound {bound:.1}) …");
    let algo2 = compare_dp(&chain, &platform, Some(bound));
    eprintln!(
        "  naive {:.2} ms, oracle {:.2} ms → {:.1}×",
        algo2.naive_millis, algo2.oracle_millis, algo2.speedup
    );

    eprintln!("driving a {BATCH_INSTANCES}-instance portfolio batch …");
    let portfolio_batch = run_batch();
    eprintln!(
        "  {:.1} instances/sec, {} feasible",
        portfolio_batch.instances_per_sec, portfolio_batch.feasible_instances
    );

    let baseline = OracleBaseline {
        algo1,
        algo2,
        portfolio_batch,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("serialization cannot fail");
    std::fs::write(&output, format!("{json}\n")).expect("writing the baseline file");
    eprintln!("wrote {output}");
}
