//! Shared fixtures for the benchmark suite.
//!
//! The benches themselves live in `benches/`:
//!
//! * `figures` — one benchmark per paper figure (6–15), running a scaled-down
//!   version of the corresponding experiment sweep;
//! * `algorithms` — scaling of Algorithms 1/2, the heuristics and the exact
//!   solvers in the number of tasks and processors;
//! * `evaluation` — the Eq. (9) closed form, the series-parallel RBD and the
//!   partition-profile construction;
//! * `ablation` — design-choice ablations (routing operations vs exact RBD
//!   evaluation, greedy vs exhaustive allocation, profile sweep vs exhaustive
//!   re-solve, exhaustive vs ILP);
//! * `simulator` — Monte-Carlo and pipelined discrete-event throughput.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rpo_model::{Platform, TaskChain};
use rpo_workload::{ChainSpec, HeterogeneousPlatformSpec, HomogeneousPlatformSpec};

/// A deterministic paper-style chain with `n` tasks.
pub fn bench_chain(n: usize, seed: u64) -> TaskChain {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    ChainSpec::paper_with_tasks(n).generate(&mut rng)
}

/// The paper's homogeneous platform with `p` processors.
pub fn bench_hom_platform(p: usize) -> Platform {
    let spec = HomogeneousPlatformSpec {
        num_processors: p,
        ..HomogeneousPlatformSpec::paper()
    };
    spec.build()
}

/// A homogeneous platform with failure rates large enough that reliabilities
/// are far from 1 (useful for simulator benches).
pub fn bench_noisy_platform(p: usize) -> Platform {
    Platform::homogeneous(p, 1.0, 1e-3, 1.0, 1e-4, 3).expect("valid platform")
}

/// A deterministic paper-style heterogeneous platform with `p` processors
/// (every processor its own drawn speed, also for `p` beyond the paper's 10).
pub fn bench_het_platform(p: usize, seed: u64) -> Platform {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let spec = HeterogeneousPlatformSpec {
        num_processors: p,
        num_classes: p,
        ..HeterogeneousPlatformSpec::paper()
    };
    spec.generate(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_well_formed() {
        assert_eq!(bench_chain(15, 1), bench_chain(15, 1));
        assert_eq!(bench_chain(15, 1).len(), 15);
        assert!(bench_hom_platform(10).is_homogeneous());
        assert_eq!(bench_hom_platform(10).num_processors(), 10);
        assert!(!bench_het_platform(10, 2).is_homogeneous());
        assert!(bench_noisy_platform(4).failure_rate(0) > 1e-4);
    }
}
