//! Transient-failure sampling under the Shatz–Wang model.
//!
//! Failures arrive as a Poisson process of constant rate `λ` per time unit
//! and are transient ("hot" model): a failure only affects the operation
//! currently executing on the faulty component. The probability that an
//! operation of duration `d` is hit by at least one failure is therefore
//! `1 − e^{−λ d}`.

use rand::Rng;

/// Failure sampling for one hardware component (processor or link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Failure rate `λ` per time unit (non-negative).
    pub rate: f64,
}

impl FailureModel {
    /// Creates a failure model with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "failure rate must be finite and non-negative"
        );
        FailureModel { rate }
    }

    /// Probability that an operation of duration `duration` fails.
    pub fn failure_probability(&self, duration: f64) -> f64 {
        1.0 - (-self.rate * duration).exp()
    }

    /// Samples whether an operation of duration `duration` fails.
    pub fn operation_fails<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> bool {
        if self.rate == 0.0 || duration <= 0.0 {
            return false;
        }
        rng.gen::<f64>() < self.failure_probability(duration)
    }

    /// Samples the time to the next failure (exponential with rate `λ`).
    /// Returns `f64::INFINITY` for a zero rate.
    pub fn sample_time_to_failure<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.rate == 0.0 {
            return f64::INFINITY;
        }
        // Inverse-transform sampling; `1 - u` avoids ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn failure_probability_matches_closed_form() {
        let m = FailureModel::new(0.01);
        assert!((m.failure_probability(10.0) - (1.0 - (-0.1f64).exp())).abs() < 1e-15);
        assert_eq!(FailureModel::new(0.0).failure_probability(100.0), 0.0);
    }

    #[test]
    fn zero_rate_or_zero_duration_never_fails() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(!FailureModel::new(0.0).operation_fails(100.0, &mut rng));
        assert!(!FailureModel::new(1.0).operation_fails(0.0, &mut rng));
    }

    #[test]
    fn empirical_failure_rate_matches_probability() {
        let m = FailureModel::new(0.02);
        let duration = 15.0; // failure probability ≈ 0.259
        let expected = m.failure_probability(duration);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 200_000;
        let failures = (0..trials)
            .filter(|_| m.operation_fails(duration, &mut rng))
            .count();
        let empirical = failures as f64 / trials as f64;
        assert!(
            (empirical - expected).abs() < 5e-3,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn time_to_failure_has_exponential_mean() {
        let m = FailureModel::new(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let samples = 200_000;
        let mean: f64 = (0..samples)
            .map(|_| m.sample_time_to_failure(&mut rng))
            .sum::<f64>()
            / samples as f64;
        assert!(
            (mean - 2.0).abs() < 0.03,
            "mean {mean} should be close to 1/λ = 2"
        );
        assert_eq!(
            FailureModel::new(0.0).sample_time_to_failure(&mut rng),
            f64::INFINITY
        );
    }

    #[test]
    #[should_panic(expected = "failure rate must be finite and non-negative")]
    fn negative_rate_panics() {
        FailureModel::new(-1.0);
    }
}
