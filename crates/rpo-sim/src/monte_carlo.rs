//! Parallel Monte-Carlo estimation of the reliability, latency and period of
//! a mapping, validating the closed forms of Eqs. (3), (5), (6) and (9).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rpo_model::{IntervalOracle, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::dataset::CompiledMapping;
use crate::pipeline::{simulate_pipeline, PipelineConfig};

/// Configuration of a Monte-Carlo estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent data sets to simulate.
    pub num_datasets: usize,
    /// Base seed of the reproducible random streams.
    pub seed: u64,
    /// Number of data sets per parallel work chunk.
    pub chunk_size: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            num_datasets: 100_000,
            seed: 0xC0FFEE,
            chunk_size: 4096,
        }
    }
}

/// Aggregated Monte-Carlo estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloEstimate {
    /// Number of simulated data sets.
    pub datasets: usize,
    /// Number of data sets processed successfully (Eq. 9 event).
    pub successes: usize,
    /// Estimated reliability (`successes / datasets`).
    pub reliability: f64,
    /// Mean latency over the data sets for which the Eq. 3 latency is defined.
    pub mean_latency: f64,
    /// Achieved steady-state period measured by the pipelined discrete-event
    /// simulation (see [`crate::pipeline`]).
    pub achieved_period: f64,
}

impl MonteCarloEstimate {
    /// Half-width of the 95% confidence interval on the reliability estimate
    /// (normal approximation of the binomial).
    pub fn reliability_confidence95(&self) -> f64 {
        let p = self.reliability;
        1.96 * (p * (1.0 - p) / self.datasets as f64).sqrt()
    }
}

/// Runs the Monte-Carlo estimation: per-data-set failure injection in
/// parallel (Rayon) for reliability and latency, plus one pipelined
/// discrete-event run for the achieved period.
pub fn monte_carlo(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    config: &MonteCarloConfig,
) -> MonteCarloEstimate {
    assert!(
        config.num_datasets > 0,
        "at least one data set must be simulated"
    );
    let _span = rpo_obs::span!("sim.monte_carlo", datasets = config.num_datasets);
    rpo_obs::counter!("sim.monte_carlo.trials").add(config.num_datasets as u64);
    let chunk = config.chunk_size.max(1);
    let num_chunks = config.num_datasets.div_ceil(chunk);

    // Compile the mapping once: the per-dataset loop is then pure Bernoulli
    // sampling against oracle-precomputed probabilities (same random stream
    // and outcomes as the uncompiled `simulate_dataset`).
    let oracle = IntervalOracle::new(chain, platform);
    let compiled = CompiledMapping::compile(&oracle, platform, mapping);

    let (successes, latency_sum, latency_count) = (0..num_chunks)
        .into_par_iter()
        .map(|chunk_index| {
            // One independent, reproducible stream per chunk.
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(chunk_index as u64));
            let start = chunk_index * chunk;
            let count = chunk.min(config.num_datasets - start);
            let mut successes = 0usize;
            let mut latency_sum = 0.0f64;
            let mut latency_count = 0usize;
            for _ in 0..count {
                let outcome = compiled.simulate_dataset(&mut rng);
                if outcome.success {
                    successes += 1;
                }
                if let Some(latency) = outcome.latency {
                    latency_sum += latency;
                    latency_count += 1;
                }
            }
            (successes, latency_sum, latency_count)
        })
        .reduce(|| (0, 0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));

    let pipeline = simulate_pipeline(
        chain,
        platform,
        mapping,
        &PipelineConfig {
            num_datasets: 2_000.min(config.num_datasets.max(100)),
            seed: config.seed ^ 0x9E37_79B9,
            input_period: None,
        },
    );

    MonteCarloEstimate {
        datasets: config.num_datasets,
        successes,
        reliability: successes as f64 / config.num_datasets as f64,
        mean_latency: if latency_count == 0 {
            f64::NAN
        } else {
            latency_sum / latency_count as f64
        },
        achieved_period: pipeline.achieved_period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{Interval, MappedInterval, MappingEvaluation, PlatformBuilder};

    /// A mapping with failure rates large enough that the failure probability
    /// is measurable with a reasonable number of samples.
    fn setup() -> (TaskChain, Platform, Mapping) {
        let chain =
            TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (15.0, 3.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .processor(2.0, 4e-3)
            .processor(1.0, 2e-3)
            .processor(3.0, 6e-3)
            .processor(1.5, 3e-3)
            .processor(2.5, 5e-3)
            .bandwidth(1.0)
            .link_failure_rate(2e-3)
            .max_replication(3)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 3 }, vec![2, 3, 4]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        (chain, platform, mapping)
    }

    #[test]
    fn reliability_estimate_matches_closed_form() {
        let (c, p, m) = setup();
        let analytic = MappingEvaluation::evaluate(&c, &p, &m);
        let estimate = monte_carlo(
            &c,
            &p,
            &m,
            &MonteCarloConfig {
                num_datasets: 120_000,
                seed: 11,
                chunk_size: 8192,
            },
        );
        let tolerance = 3.0 * estimate.reliability_confidence95().max(1e-3);
        assert!(
            (estimate.reliability - analytic.reliability).abs() < tolerance,
            "simulated {} vs analytic {} (tolerance {tolerance})",
            estimate.reliability,
            analytic.reliability
        );
    }

    #[test]
    fn latency_estimate_matches_expected_latency() {
        let (c, p, m) = setup();
        let analytic = MappingEvaluation::evaluate(&c, &p, &m);
        let estimate = monte_carlo(
            &c,
            &p,
            &m,
            &MonteCarloConfig {
                num_datasets: 60_000,
                seed: 12,
                chunk_size: 4096,
            },
        );
        let relative_error =
            (estimate.mean_latency - analytic.expected_latency).abs() / analytic.expected_latency;
        assert!(
            relative_error < 0.02,
            "simulated {} vs analytic {} ({}%)",
            estimate.mean_latency,
            analytic.expected_latency,
            relative_error * 100.0
        );
    }

    #[test]
    fn achieved_period_matches_expected_period() {
        let (c, p, m) = setup();
        let analytic = MappingEvaluation::evaluate(&c, &p, &m);
        let estimate = monte_carlo(
            &c,
            &p,
            &m,
            &MonteCarloConfig {
                num_datasets: 2_000,
                seed: 13,
                chunk_size: 1024,
            },
        );
        let relative_error =
            (estimate.achieved_period - analytic.expected_period).abs() / analytic.expected_period;
        assert!(
            relative_error < 0.05,
            "simulated period {} vs analytic {} ({}%)",
            estimate.achieved_period,
            analytic.expected_period,
            relative_error * 100.0
        );
    }

    #[test]
    fn estimation_is_reproducible_for_a_seed() {
        let (c, p, m) = setup();
        let config = MonteCarloConfig {
            num_datasets: 20_000,
            seed: 5,
            chunk_size: 2048,
        };
        let a = monte_carlo(&c, &p, &m, &config);
        let b = monte_carlo(&c, &p, &m, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_platform_gives_reliability_one() {
        let chain = TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .identical_processors(2, 1.0, 0.0)
            .bandwidth(1.0)
            .link_failure_rate(0.0)
            .max_replication(1)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 0 }, vec![0]),
                MappedInterval::new(Interval { first: 1, last: 1 }, vec![1]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        let estimate = monte_carlo(
            &chain,
            &platform,
            &mapping,
            &MonteCarloConfig {
                num_datasets: 1_000,
                seed: 1,
                chunk_size: 100,
            },
        );
        assert_eq!(estimate.reliability, 1.0);
        assert_eq!(estimate.reliability_confidence95(), 0.0);
    }
}
