//! Discrete-event Monte-Carlo simulator of replicated pipelined execution
//! with transient processor and link failures.
//!
//! The paper evaluates mappings analytically (Eqs. 3–9). This crate provides
//! the corresponding *executable* model, used to validate those closed forms
//! and to experiment beyond them:
//!
//! * [`failure`] — Poisson transient-failure sampling (per-operation failure
//!   probability `1 − e^{−λ d}` and exponential time-to-failure draws);
//! * [`engine`] — a small binary-heap discrete-event engine;
//! * [`dataset`] — per-data-set failure injection through the replicated
//!   interval pipeline (reliability and latency semantics of Eqs. 3, 5, 9);
//! * [`pipeline`] — event-driven simulation of the *pipelined* execution of a
//!   stream of data sets, measuring the achieved period and per-data-set
//!   latencies;
//! * [`monte_carlo`] — parallel Monte-Carlo estimation (Rayon) with seeded,
//!   reproducible streams;
//! * [`fault`] — mid-run fault injection: scripted/seeded [`FaultPlan`]s fire
//!   platform deltas at chosen trial fractions and a caller-supplied repair
//!   loop keeps the simulation going on the repaired mapping.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod engine;
pub mod failure;
pub mod fault;
pub mod monte_carlo;
pub mod pipeline;

pub use dataset::{simulate_dataset, CompiledMapping, DatasetOutcome};
pub use engine::{Event, EventQueue};
pub use failure::FailureModel;
pub use fault::{monte_carlo_with_faults, FaultEvent, FaultPlan, FaultSegment, FaultSimReport};
pub use monte_carlo::{monte_carlo, MonteCarloConfig, MonteCarloEstimate};
pub use pipeline::{simulate_pipeline, PipelineConfig, PipelineReport};
