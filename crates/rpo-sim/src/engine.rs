//! A minimal discrete-event engine: a time-ordered event queue with stable
//! FIFO ordering of simultaneous events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<P> {
    /// Time at which the event fires.
    pub time: f64,
    /// Monotonically increasing sequence number (breaks ties FIFO).
    pub sequence: u64,
    /// User payload.
    pub payload: P,
}

impl<P> Eq for Event<P> where P: PartialEq {}

impl<P: PartialEq> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: PartialEq> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then(other.sequence.cmp(&self.sequence))
    }
}

/// A time-ordered queue of events.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<P: PartialEq> {
    heap: BinaryHeap<Event<P>>,
    next_sequence: u64,
    now: f64,
}

impl<P: PartialEq> EventQueue<P> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_sequence: 0,
            now: 0.0,
        }
    }

    /// Current simulated time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or lies in the past of the current simulated
    /// time (events may not be scheduled retroactively).
    pub fn schedule(&mut self, time: f64, payload: P) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {}",
            self.now
        );
        let event = Event {
            time,
            sequence: self.next_sequence,
            payload,
        };
        self.next_sequence += 1;
        self.heap.push(event);
    }

    /// Schedules `payload` after a delay relative to the current time.
    pub fn schedule_after(&mut self, delay: f64, payload: P) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest pending event and advances the simulated clock.
    pub fn pop(&mut self) -> Option<Event<P>> {
        let event = self.heap.pop()?;
        self.now = event.time;
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().payload, "first");
        assert_eq!(q.pop().unwrap().payload, "second");
        assert_eq!(q.pop().unwrap().payload, "third");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.schedule_after(2.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().time, 2.0);
        assert_eq!(q.now(), 2.0);
        q.schedule_after(10.0, ());
        assert_eq!(q.pop().unwrap().time, 5.0);
        assert_eq!(q.pop().unwrap().time, 12.0);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }
}
