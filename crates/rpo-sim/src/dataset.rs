//! Failure injection for a single data set traversing the replicated
//! pipeline.
//!
//! The semantics mirror the analytical model exactly:
//!
//! * a replica of interval `I_j` *delivers* the data set iff its incoming
//!   communication (from the routing operation), its computation, and its
//!   outgoing communication (towards the next routing operation) all survive
//!   their transient failures — the inner term of Eq. (9);
//! * the data set is *successfully processed* iff every interval has at least
//!   one delivering replica;
//! * the latency of the data set follows Eq. (3)/(5): per interval, the
//!   result is taken from the fastest replica whose **computation** succeeded
//!   (communication failures impact reliability, not the latency
//!   expectation), and one output communication time is added per interval.

use rand::Rng;
use rpo_model::{Mapping, Platform, TaskChain};

use crate::failure::FailureModel;

/// Outcome of pushing one data set through the mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetOutcome {
    /// Whether every interval had at least one fully delivering replica
    /// (the Eq. 9 success event).
    pub success: bool,
    /// End-to-end latency following the Eq. (3)/(5) semantics, when every
    /// interval had at least one replica whose computation succeeded.
    pub latency: Option<f64>,
}

/// Simulates the processing of one data set by `mapping`, drawing every
/// transient failure from `rng`.
pub fn simulate_dataset<R: Rng + ?Sized>(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    rng: &mut R,
) -> DatasetOutcome {
    let link_failures = FailureModel::new(platform.link_failure_rate());

    let mut success = true;
    let mut latency = Some(0.0);
    let mut input_size = 0.0;

    for mi in mapping.intervals() {
        let work = mi.interval.work(chain);
        let output_size = mi.interval.output_size(chain);
        let in_comm_time = platform.comm_time(input_size);
        let out_comm_time = platform.comm_time(output_size);

        let mut delivered = false;
        let mut fastest_compute: Option<f64> = None;
        for &u in &mi.processors {
            let processor_failures = FailureModel::new(platform.failure_rate(u));
            let compute_time = work / platform.speed(u);

            // Each replica has its own incoming and outgoing transfers (on its
            // own links to/from the routing operations).
            let in_ok = !link_failures.operation_fails(in_comm_time, rng);
            let compute_ok = !processor_failures.operation_fails(compute_time, rng);
            let out_ok = !link_failures.operation_fails(out_comm_time, rng);

            if in_ok && compute_ok && out_ok {
                delivered = true;
            }
            if compute_ok {
                fastest_compute = Some(match fastest_compute {
                    None => compute_time,
                    Some(best) => best.min(compute_time),
                });
            }
        }

        if !delivered {
            success = false;
        }
        latency = match (latency, fastest_compute) {
            (Some(total), Some(compute)) => Some(total + compute + out_comm_time),
            _ => None,
        };
        input_size = output_size;
    }

    DatasetOutcome { success, latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rpo_model::{Interval, MappedInterval, PlatformBuilder};

    fn setup(proc_rate: f64, link_rate: f64) -> (TaskChain, Platform, Mapping) {
        let chain = TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .identical_processors(4, 2.0, proc_rate)
            .bandwidth(1.0)
            .link_failure_rate(link_rate)
            .max_replication(2)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 2 }, vec![2, 3]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        (chain, platform, mapping)
    }

    #[test]
    fn perfect_hardware_always_succeeds_with_worst_case_free_latency() {
        let (c, p, m) = setup(0.0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let outcome = simulate_dataset(&c, &p, &m, &mut rng);
            assert!(outcome.success);
            // Latency = 30/2 + 6/1 + 30/2 = 36 on this homogeneous platform.
            assert!((outcome.latency.unwrap() - 36.0).abs() < 1e-12);
        }
    }

    #[test]
    fn certain_failures_always_fail() {
        let (c, p, m) = setup(1e6, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = simulate_dataset(&c, &p, &m, &mut rng);
        assert!(!outcome.success);
        assert!(outcome.latency.is_none());
    }

    #[test]
    fn latency_can_exist_even_when_communication_fails() {
        // Links always fail, processors never: the data set is lost (success
        // = false) but the Eq. 3 latency is still defined.
        let (c, p, m) = setup(0.0, 1e6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome = simulate_dataset(&c, &p, &m, &mut rng);
        assert!(!outcome.success);
        assert!(outcome.latency.is_some());
    }

    #[test]
    fn success_rate_is_between_all_and_nothing_for_moderate_rates() {
        let (c, p, m) = setup(0.02, 0.01);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trials = 5000;
        let successes = (0..trials)
            .filter(|_| simulate_dataset(&c, &p, &m, &mut rng).success)
            .count();
        assert!(successes > 0 && successes < trials);
    }
}
