//! Failure injection for a single data set traversing the replicated
//! pipeline.
//!
//! The semantics mirror the analytical model exactly:
//!
//! * a replica of interval `I_j` *delivers* the data set iff its incoming
//!   communication (from the routing operation), its computation, and its
//!   outgoing communication (towards the next routing operation) all survive
//!   their transient failures — the inner term of Eq. (9);
//! * the data set is *successfully processed* iff every interval has at least
//!   one delivering replica;
//! * the latency of the data set follows Eq. (3)/(5): per interval, the
//!   result is taken from the fastest replica whose **computation** succeeded
//!   (communication failures impact reliability, not the latency
//!   expectation), and one output communication time is added per interval.

use rand::Rng;
use rpo_model::{IntervalOracle, Mapping, Platform, TaskChain};

use crate::failure::FailureModel;

/// Outcome of pushing one data set through the mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetOutcome {
    /// Whether every interval had at least one fully delivering replica
    /// (the Eq. 9 success event).
    pub success: bool,
    /// End-to-end latency following the Eq. (3)/(5) semantics, when every
    /// interval had at least one replica whose computation succeeded.
    pub latency: Option<f64>,
}

/// Simulates the processing of one data set by `mapping`, drawing every
/// transient failure from `rng`.
pub fn simulate_dataset<R: Rng + ?Sized>(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    rng: &mut R,
) -> DatasetOutcome {
    let link_failures = FailureModel::new(platform.link_failure_rate());

    let mut success = true;
    let mut latency = Some(0.0);
    let mut input_size = 0.0;

    for mi in mapping.intervals() {
        let work = mi.interval.work(chain);
        let output_size = mi.interval.output_size(chain);
        let in_comm_time = platform.comm_time(input_size);
        let out_comm_time = platform.comm_time(output_size);

        let mut delivered = false;
        let mut fastest_compute: Option<f64> = None;
        for &u in &mi.processors {
            let processor_failures = FailureModel::new(platform.failure_rate(u));
            let compute_time = work / platform.speed(u);

            // Each replica has its own incoming and outgoing transfers (on its
            // own links to/from the routing operations).
            let in_ok = !link_failures.operation_fails(in_comm_time, rng);
            let compute_ok = !processor_failures.operation_fails(compute_time, rng);
            let out_ok = !link_failures.operation_fails(out_comm_time, rng);

            if in_ok && compute_ok && out_ok {
                delivered = true;
            }
            if compute_ok {
                fastest_compute = Some(match fastest_compute {
                    None => compute_time,
                    Some(best) => best.min(compute_time),
                });
            }
        }

        if !delivered {
            success = false;
        }
        latency = match (latency, fastest_compute) {
            (Some(total), Some(compute)) => Some(total + compute + out_comm_time),
            _ => None,
        };
        input_size = output_size;
    }

    DatasetOutcome { success, latency }
}

/// One Bernoulli draw of the compiled fast path: whether a draw is consumed
/// at all (mirroring [`FailureModel::operation_fails`]'s zero-rate /
/// zero-duration shortcut, so the random stream is identical to the naive
/// simulation) and the failure probability compared against.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledDraw {
    consumes_rng: bool,
    fail_probability: f64,
}

impl CompiledDraw {
    fn new(rate: f64, duration: f64, fail_probability: f64) -> Self {
        CompiledDraw {
            consumes_rng: rate > 0.0 && duration > 0.0,
            fail_probability,
        }
    }

    #[inline]
    fn fails<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.consumes_rng && rng.gen::<f64>() < self.fail_probability
    }
}

#[derive(Debug, Clone, PartialEq)]
struct CompiledReplica {
    compute_time: f64,
    in_comm: CompiledDraw,
    compute: CompiledDraw,
    out_comm: CompiledDraw,
}

#[derive(Debug, Clone, PartialEq)]
struct CompiledInterval {
    out_comm_time: f64,
    replicas: Vec<CompiledReplica>,
}

/// A mapping precompiled for Monte-Carlo failure injection: every per-replica
/// failure probability and every duration is computed **once** through the
/// [`IntervalOracle`], so pushing a data set through the pipeline is pure
/// Bernoulli sampling — no `exp`, no division, no hash of the model structure
/// in the hot loop. The random-stream layout matches [`simulate_dataset`]
/// draw for draw, so both paths produce identical outcomes for the same RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMapping {
    intervals: Vec<CompiledInterval>,
}

impl CompiledMapping {
    /// Compiles `mapping` against the instance's oracle.
    pub fn compile(oracle: &IntervalOracle, platform: &Platform, mapping: &Mapping) -> Self {
        let link_rate = platform.link_failure_rate();
        let intervals = mapping
            .intervals()
            .iter()
            .map(|mi| {
                let (first, last) = (mi.interval.first, mi.interval.last);
                let in_time = oracle.input_comm_time(first);
                let out_time = oracle.output_comm_time(last);
                let in_fail = 1.0 - oracle.input_comm_reliability(first);
                let out_fail = 1.0 - oracle.output_comm_reliability(last);
                let replicas = mi
                    .processors
                    .iter()
                    .map(|&u| {
                        let class = oracle.classes()[oracle.class_of(u)];
                        let compute_time = oracle.work(first, last) / class.speed;
                        CompiledReplica {
                            compute_time,
                            in_comm: CompiledDraw::new(link_rate, in_time, in_fail),
                            compute: CompiledDraw::new(
                                class.failure_rate,
                                compute_time,
                                1.0 - oracle.interval_reliability(u, first, last),
                            ),
                            out_comm: CompiledDraw::new(link_rate, out_time, out_fail),
                        }
                    })
                    .collect();
                CompiledInterval {
                    out_comm_time: out_time,
                    replicas,
                }
            })
            .collect();
        CompiledMapping { intervals }
    }

    /// Simulates the processing of one data set, drawing every transient
    /// failure from `rng` — the oracle-backed fast path of
    /// [`simulate_dataset`].
    pub fn simulate_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> DatasetOutcome {
        let mut success = true;
        let mut latency = Some(0.0);

        for interval in &self.intervals {
            let mut delivered = false;
            let mut fastest_compute: Option<f64> = None;
            for replica in &interval.replicas {
                let in_ok = !replica.in_comm.fails(rng);
                let compute_ok = !replica.compute.fails(rng);
                let out_ok = !replica.out_comm.fails(rng);

                if in_ok && compute_ok && out_ok {
                    delivered = true;
                }
                if compute_ok {
                    fastest_compute = Some(match fastest_compute {
                        None => replica.compute_time,
                        Some(best) => best.min(replica.compute_time),
                    });
                }
            }

            if !delivered {
                success = false;
            }
            latency = match (latency, fastest_compute) {
                (Some(total), Some(compute)) => Some(total + compute + interval.out_comm_time),
                _ => None,
            };
        }

        DatasetOutcome { success, latency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rpo_model::{Interval, MappedInterval, PlatformBuilder};

    fn setup(proc_rate: f64, link_rate: f64) -> (TaskChain, Platform, Mapping) {
        let chain = TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .identical_processors(4, 2.0, proc_rate)
            .bandwidth(1.0)
            .link_failure_rate(link_rate)
            .max_replication(2)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 2 }, vec![2, 3]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        (chain, platform, mapping)
    }

    #[test]
    fn compiled_mapping_matches_naive_simulation_draw_for_draw() {
        for (proc_rate, link_rate) in [(0.0, 0.0), (1e-3, 0.0), (0.0, 1e-2), (1e-3, 1e-2)] {
            let (c, p, m) = setup(proc_rate, link_rate);
            let oracle = IntervalOracle::new(&c, &p);
            let compiled = CompiledMapping::compile(&oracle, &p, &m);
            let mut naive_rng = ChaCha8Rng::seed_from_u64(99);
            let mut compiled_rng = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..500 {
                let naive = simulate_dataset(&c, &p, &m, &mut naive_rng);
                let fast = compiled.simulate_dataset(&mut compiled_rng);
                assert_eq!(naive, fast, "rates ({proc_rate}, {link_rate})");
            }
        }
    }

    #[test]
    fn perfect_hardware_always_succeeds_with_worst_case_free_latency() {
        let (c, p, m) = setup(0.0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let outcome = simulate_dataset(&c, &p, &m, &mut rng);
            assert!(outcome.success);
            // Latency = 30/2 + 6/1 + 30/2 = 36 on this homogeneous platform.
            assert!((outcome.latency.unwrap() - 36.0).abs() < 1e-12);
        }
    }

    #[test]
    fn certain_failures_always_fail() {
        let (c, p, m) = setup(1e6, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = simulate_dataset(&c, &p, &m, &mut rng);
        assert!(!outcome.success);
        assert!(outcome.latency.is_none());
    }

    #[test]
    fn latency_can_exist_even_when_communication_fails() {
        // Links always fail, processors never: the data set is lost (success
        // = false) but the Eq. 3 latency is still defined.
        let (c, p, m) = setup(0.0, 1e6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome = simulate_dataset(&c, &p, &m, &mut rng);
        assert!(!outcome.success);
        assert!(outcome.latency.is_some());
    }

    #[test]
    fn success_rate_is_between_all_and_nothing_for_moderate_rates() {
        let (c, p, m) = setup(0.02, 0.01);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trials = 5000;
        let successes = (0..trials)
            .filter(|_| simulate_dataset(&c, &p, &m, &mut rng).success)
            .count();
        assert!(successes > 0 && successes < trials);
    }
}
