//! Event-driven simulation of the pipelined execution of a stream of data
//! sets through the replicated interval mapping.
//!
//! Each interval is a pipeline *stage* that processes data sets in order, one
//! at a time. Communications are overlapped with computations (Section 2.2):
//! once a stage finishes a data set it immediately becomes available for the
//! next one, while the result travels to the next stage for one communication
//! time. The service time of a stage for a given data set is the computation
//! time of the fastest replica whose computation survived its transient
//! failures (the Eq. 3 semantics); if every replica fails, the worst-case
//! time is charged.
//!
//! With data sets injected as fast as possible, the measured steady-state
//! inter-completion time converges to the expected period of Eq. (6); with a
//! fixed input period `P ≥ EP`, the mean flow time converges to the expected
//! latency of Eq. (5).

use std::collections::VecDeque;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rpo_model::{Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::engine::EventQueue;
use crate::failure::FailureModel;

/// Configuration of a pipelined simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Number of data sets pushed through the pipeline.
    pub num_datasets: usize,
    /// Seed of the failure-injection stream.
    pub seed: u64,
    /// Input period between consecutive data sets; `None` injects all data
    /// sets at time 0 (saturation, for throughput measurement).
    pub input_period: Option<f64>,
}

/// Measurements of a pipelined simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Number of data sets that traversed the pipeline.
    pub datasets: usize,
    /// Steady-state average time between consecutive completions (the warm-up
    /// first 20% of completions is discarded).
    pub achieved_period: f64,
    /// Mean flow time (completion − arrival) over all data sets.
    pub mean_flow_time: f64,
    /// Completion time of the last data set (makespan of the run).
    pub makespan: f64,
}

#[derive(Debug, PartialEq)]
enum SimEvent {
    /// Data set `dataset` becomes available at stage `stage`.
    Arrive { stage: usize, dataset: usize },
    /// Stage `stage` finishes processing data set `dataset`.
    Finish { stage: usize, dataset: usize },
}

struct Stage {
    busy: bool,
    ready: VecDeque<usize>,
}

/// Runs the pipelined discrete-event simulation.
pub fn simulate_pipeline(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    config: &PipelineConfig,
) -> PipelineReport {
    assert!(
        config.num_datasets > 0,
        "at least one data set must be simulated"
    );
    let num_stages = mapping.num_intervals();
    let num_datasets = config.num_datasets;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // Pre-compute per-stage constants.
    let comm_times: Vec<f64> = mapping
        .intervals()
        .iter()
        .map(|mi| platform.comm_time(mi.interval.output_size(chain)))
        .collect();
    let worst_case: Vec<f64> = mapping
        .intervals()
        .iter()
        .map(|mi| {
            let slowest = mi
                .processors
                .iter()
                .map(|&u| platform.speed(u))
                .fold(f64::INFINITY, f64::min);
            mi.interval.work(chain) / slowest
        })
        .collect();

    // Sample the service time of one stage for one data set: the fastest
    // replica whose computation survives, or the worst case if none does.
    let sample_service = |stage: usize, rng: &mut ChaCha8Rng| -> f64 {
        let mi = mapping.interval(stage);
        let work = mi.interval.work(chain);
        let mut best: Option<f64> = None;
        for &u in &mi.processors {
            let duration = work / platform.speed(u);
            let failures = FailureModel::new(platform.failure_rate(u));
            if !failures.operation_fails(duration, rng) {
                best = Some(best.map_or(duration, |b: f64| b.min(duration)));
            }
        }
        best.unwrap_or(worst_case[stage])
    };

    let mut queue: EventQueue<SimEvent> = EventQueue::new();
    let mut stages: Vec<Stage> = (0..num_stages)
        .map(|_| Stage {
            busy: false,
            ready: VecDeque::new(),
        })
        .collect();
    let mut arrivals = vec![0.0f64; num_datasets];
    let mut completions = vec![f64::NAN; num_datasets];

    for (dataset, slot) in arrivals.iter_mut().enumerate() {
        let arrival = config
            .input_period
            .map_or(0.0, |period| dataset as f64 * period);
        *slot = arrival;
        queue.schedule(arrival, SimEvent::Arrive { stage: 0, dataset });
    }

    while let Some(event) = queue.pop() {
        let now = event.time;
        match event.payload {
            SimEvent::Arrive { stage, dataset } => {
                stages[stage].ready.push_back(dataset);
                if !stages[stage].busy {
                    let next = stages[stage].ready.pop_front().expect("just pushed");
                    stages[stage].busy = true;
                    let service = sample_service(stage, &mut rng);
                    queue.schedule(
                        now + service,
                        SimEvent::Finish {
                            stage,
                            dataset: next,
                        },
                    );
                }
            }
            SimEvent::Finish { stage, dataset } => {
                if stage + 1 < num_stages {
                    queue.schedule(
                        now + comm_times[stage],
                        SimEvent::Arrive {
                            stage: stage + 1,
                            dataset,
                        },
                    );
                } else {
                    completions[dataset] = now;
                }
                stages[stage].busy = false;
                if let Some(next) = stages[stage].ready.pop_front() {
                    stages[stage].busy = true;
                    let service = sample_service(stage, &mut rng);
                    queue.schedule(
                        now + service,
                        SimEvent::Finish {
                            stage,
                            dataset: next,
                        },
                    );
                }
            }
        }
    }

    debug_assert!(
        completions.iter().all(|c| c.is_finite()),
        "every data set must complete"
    );

    // Steady-state period: ignore the first 20% of completions as warm-up.
    let warmup = num_datasets / 5;
    let achieved_period = if num_datasets - warmup >= 2 {
        (completions[num_datasets - 1] - completions[warmup]) / (num_datasets - 1 - warmup) as f64
    } else {
        completions[num_datasets - 1]
    };
    let mean_flow_time = completions
        .iter()
        .zip(&arrivals)
        .map(|(c, a)| c - a)
        .sum::<f64>()
        / num_datasets as f64;

    PipelineReport {
        datasets: num_datasets,
        achieved_period,
        mean_flow_time,
        makespan: completions[num_datasets - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{Interval, MappedInterval, MappingEvaluation, PlatformBuilder};

    fn setup(failure_rate: f64) -> (TaskChain, Platform, Mapping) {
        let chain =
            TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (15.0, 3.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .processor(2.0, failure_rate)
            .processor(1.0, failure_rate)
            .processor(3.0, failure_rate)
            .processor(1.5, failure_rate)
            .bandwidth(1.0)
            .link_failure_rate(0.0)
            .max_replication(2)
            .build()
            .unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 3 }, vec![2, 3]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        (chain, platform, mapping)
    }

    #[test]
    fn failure_free_saturated_period_is_the_bottleneck_stage_time() {
        let (c, p, m) = setup(0.0);
        let report = simulate_pipeline(
            &c,
            &p,
            &m,
            &PipelineConfig {
                num_datasets: 500,
                seed: 1,
                input_period: None,
            },
        );
        // Stage costs: fastest replica always succeeds -> 30/2 = 15 and 45/3 = 15.
        assert!((report.achieved_period - 15.0).abs() < 1e-9);
        assert!(report.makespan >= 15.0 * 500.0 - 1e-6);
    }

    #[test]
    fn failure_free_latency_with_slow_input_matches_expected_latency() {
        let (c, p, m) = setup(0.0);
        let analytic = MappingEvaluation::evaluate(&c, &p, &m);
        let report = simulate_pipeline(
            &c,
            &p,
            &m,
            &PipelineConfig {
                num_datasets: 200,
                seed: 2,
                input_period: Some(100.0),
            },
        );
        // With an input period far above the bottleneck there is no queueing:
        // flow time = expected latency (failure-free: fastest replica wins).
        assert!(
            (report.mean_flow_time - analytic.expected_latency).abs()
                < 1e-9 + analytic.expected_latency * 1e-9,
            "flow time {} vs expected latency {}",
            report.mean_flow_time,
            analytic.expected_latency
        );
    }

    #[test]
    fn saturated_period_with_failures_approaches_expected_period() {
        let (c, p, m) = setup(0.01);
        let analytic = MappingEvaluation::evaluate(&c, &p, &m);
        let report = simulate_pipeline(
            &c,
            &p,
            &m,
            &PipelineConfig {
                num_datasets: 4_000,
                seed: 3,
                input_period: None,
            },
        );
        let relative =
            (report.achieved_period - analytic.expected_period).abs() / analytic.expected_period;
        assert!(
            relative < 0.05,
            "simulated {} vs analytic {} ({}%)",
            report.achieved_period,
            analytic.expected_period,
            relative * 100.0
        );
    }

    #[test]
    fn input_period_throttles_the_pipeline() {
        let (c, p, m) = setup(0.0);
        let report = simulate_pipeline(
            &c,
            &p,
            &m,
            &PipelineConfig {
                num_datasets: 300,
                seed: 4,
                input_period: Some(40.0),
            },
        );
        // Completions are spaced by the (slower) input period, not the stage time.
        assert!((report.achieved_period - 40.0).abs() < 1e-9);
    }

    #[test]
    fn reproducible_for_a_seed() {
        let (c, p, m) = setup(0.02);
        let config = PipelineConfig {
            num_datasets: 500,
            seed: 9,
            input_period: None,
        };
        assert_eq!(
            simulate_pipeline(&c, &p, &m, &config),
            simulate_pipeline(&c, &p, &m, &config)
        );
    }
}
