//! Mid-simulation fault injection: platform deltas fired at chosen trial
//! fractions of a Monte-Carlo run, with a caller-supplied repair loop.
//!
//! The plain [`crate::monte_carlo`] estimator assumes one fixed
//! `(chain, platform, mapping)` for the whole run. A [`FaultPlan`] breaks
//! that assumption the way production does: at chosen fractions of the trial
//! budget a [`PlatformDelta`] strikes (a processor dies, a speed degrades, a
//! work estimate is revised), the `repair` callback is invoked to produce a
//! post-delta `(chain, platform, mapping)`, and the simulation **continues
//! on the repaired mapping** — so the report shows reliability before and
//! after each event plus the wall-clock latency of every repair (also
//! recorded in the `repair.latency` histogram via `rpo-obs`).
//!
//! The repair logic itself lives upstream (`rpo-repair` wraps this with its
//! graded local-patch → warm-DP → full-solve ladder); taking it as a
//! callback keeps this crate free of any solver dependency.

use std::time::Instant;

use rpo_model::{Mapping, Platform, PlatformDelta, TaskChain};
use serde::{Deserialize, Serialize};

use crate::monte_carlo::{monte_carlo, MonteCarloConfig, MonteCarloEstimate};

/// One scheduled fault: a delta fired once the given fraction of the trial
/// budget has been simulated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Fraction of the total trial budget (in `[0, 1]`) after which the
    /// delta strikes.
    pub at_fraction: f64,
    /// The platform/workload change.
    pub delta: PlatformDelta,
}

/// A schedule of faults for one Monte-Carlo run, ordered by trial fraction.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, sorted by `at_fraction`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A scripted plan: the events are sorted by fraction (ties keep their
    /// relative order) and clamped to `[0, 1]`.
    pub fn scripted(mut events: Vec<FaultEvent>) -> Self {
        for event in &mut events {
            event.at_fraction = event.at_fraction.clamp(0.0, 1.0);
        }
        events.sort_by(|a, b| {
            a.at_fraction
                .partial_cmp(&b.at_fraction)
                .expect("finite fault fractions")
        });
        FaultPlan { events }
    }

    /// A seeded random kill plan: `kills` fail-stop events at uniform random
    /// fractions, each killing a uniformly chosen processor **of the
    /// platform alive at that point** (indices account for the shifts caused
    /// by earlier removals), never killing the last one.
    pub fn seeded_kills(seed: u64, kills: usize, num_processors: usize) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let kills = kills.min(num_processors.saturating_sub(1));
        // Draw and sort the fire times first, then pick victims in firing
        // order — each victim index must be valid on the platform alive *at
        // that point* (ids shift down after every earlier removal).
        let mut fractions: Vec<f64> = (0..kills).map(|_| rng.gen::<f64>()).collect();
        fractions.sort_by(|a, b| a.partial_cmp(b).expect("finite fractions"));
        let events = fractions
            .into_iter()
            .enumerate()
            .map(|(i, at_fraction)| {
                let alive = num_processors - i;
                let victim = ((rng.gen::<f64>() * alive as f64) as usize).min(alive - 1);
                FaultEvent {
                    at_fraction,
                    delta: PlatformDelta::ProcessorFailed(victim),
                }
            })
            .collect();
        FaultPlan { events }
    }
}

/// One homogeneous stretch of a fault-injected run: the trials simulated
/// between two consecutive events, all on the same mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSegment {
    /// The delta that *opened* this segment (`None` for the initial one).
    pub triggered_by: Option<PlatformDelta>,
    /// Monte-Carlo estimate over this segment's trials.
    pub estimate: MonteCarloEstimate,
    /// Wall-clock nanoseconds the repair opening this segment took
    /// (0 for the initial segment).
    pub repair_nanos: u64,
}

/// Report of a fault-injected Monte-Carlo run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSimReport {
    /// The per-mapping segments, in simulation order.
    pub segments: Vec<FaultSegment>,
    /// Events whose repair succeeded (each opens a segment).
    pub events_applied: usize,
    /// Events whose repair failed — the run stops at the first one, the
    /// remaining trial budget is not simulated.
    pub events_unrepaired: usize,
    /// Trials actually simulated (the full budget unless a repair failed).
    pub datasets: usize,
    /// Successful trials across all segments.
    pub successes: usize,
    /// Overall reliability across all segments (`successes / datasets`) —
    /// the lived reliability of the churning platform, blending pre- and
    /// post-fault mappings.
    pub overall_reliability: f64,
}

/// Runs a Monte-Carlo estimation under a [`FaultPlan`].
///
/// The trial budget of `config` is split at the plan's fractions. Each
/// boundary fires its delta and calls `repair`, which must return the
/// post-delta `(chain, platform, mapping)` to continue with — or `None` if
/// no feasible repair exists, which ends the run early (reported via
/// [`FaultSimReport::events_unrepaired`]). Repair wall time is recorded in
/// the `repair.latency` histogram.
///
/// Trials use the same seeded generator family as [`monte_carlo`], with a
/// per-segment seed offset, so a given `(config, plan)` is reproducible.
pub fn monte_carlo_with_faults(
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    config: &MonteCarloConfig,
    plan: &FaultPlan,
    mut repair: impl FnMut(&PlatformDelta) -> Option<(TaskChain, Platform, Mapping)>,
) -> FaultSimReport {
    let _span = rpo_obs::span!("sim.fault_injection", events = plan.events.len());
    let total = config.num_datasets;
    assert!(total > 0, "at least one data set must be simulated");

    // Segment boundaries in trial counts (deduplicated, strictly inside).
    let mut state = (chain.clone(), platform.clone(), mapping.clone());
    let mut segments = Vec::with_capacity(plan.events.len() + 1);
    let mut events_applied = 0;
    let mut events_unrepaired = 0;
    let mut simulated = 0usize;
    let mut successes = 0usize;
    let mut trigger: Option<PlatformDelta> = None;
    let mut repair_nanos = 0u64;

    let run_segment = |state: &(TaskChain, Platform, Mapping),
                       from: usize,
                       to: usize,
                       trigger: Option<PlatformDelta>,
                       repair_nanos: u64,
                       segments: &mut Vec<FaultSegment>,
                       successes: &mut usize| {
        if to <= from {
            return;
        }
        let estimate = monte_carlo(
            &state.0,
            &state.1,
            &state.2,
            &MonteCarloConfig {
                num_datasets: to - from,
                // Decorrelate segments without overlapping the chunk-indexed
                // streams of the plain estimator.
                seed: config
                    .seed
                    .wrapping_add((from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                chunk_size: config.chunk_size,
            },
        );
        *successes += estimate.successes;
        segments.push(FaultSegment {
            triggered_by: trigger,
            estimate,
            repair_nanos,
        });
    };

    for event in &plan.events {
        let boundary = ((event.at_fraction * total as f64) as usize).min(total);
        run_segment(
            &state,
            simulated,
            boundary,
            trigger,
            repair_nanos,
            &mut segments,
            &mut successes,
        );
        simulated = simulated.max(boundary);

        let started = Instant::now();
        let repaired = repair(&event.delta);
        let elapsed = started.elapsed().as_nanos() as u64;
        rpo_obs::histogram!("repair.latency").record_nanos(elapsed);
        match repaired {
            Some(next) => {
                events_applied += 1;
                trigger = Some(event.delta);
                repair_nanos = elapsed;
                state = next;
            }
            None => {
                events_unrepaired += 1;
                // No feasible mapping: the pipeline is down, stop here.
                return FaultSimReport {
                    segments,
                    events_applied,
                    events_unrepaired,
                    datasets: simulated,
                    successes,
                    overall_reliability: if simulated == 0 {
                        f64::NAN
                    } else {
                        successes as f64 / simulated as f64
                    },
                };
            }
        }
    }
    run_segment(
        &state,
        simulated,
        total,
        trigger,
        repair_nanos,
        &mut segments,
        &mut successes,
    );
    simulated = total;

    FaultSimReport {
        segments,
        events_applied,
        events_unrepaired,
        datasets: simulated,
        successes,
        overall_reliability: successes as f64 / simulated as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{Interval, MappedInterval};

    fn setup() -> (TaskChain, Platform, Mapping) {
        let chain =
            TaskChain::from_pairs(&[(10.0, 2.0), (20.0, 6.0), (30.0, 4.0), (15.0, 3.0)]).unwrap();
        let platform = Platform::homogeneous(4, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        let mapping = Mapping::new(
            vec![
                MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                MappedInterval::new(Interval { first: 2, last: 3 }, vec![2, 3]),
            ],
            &chain,
            &platform,
        )
        .unwrap();
        (chain, platform, mapping)
    }

    #[test]
    fn faultless_plan_matches_plain_monte_carlo_totals() {
        let (chain, platform, mapping) = setup();
        let config = MonteCarloConfig {
            num_datasets: 4_000,
            ..MonteCarloConfig::default()
        };
        let report = monte_carlo_with_faults(
            &chain,
            &platform,
            &mapping,
            &config,
            &FaultPlan::default(),
            |_| panic!("no events scheduled"),
        );
        assert_eq!(report.segments.len(), 1);
        assert_eq!(report.datasets, 4_000);
        assert_eq!(report.events_applied, 0);
        let expected = monte_carlo(&chain, &platform, &mapping, &config);
        assert_eq!(report.successes, expected.successes);
    }

    #[test]
    fn mid_run_event_splits_segments_and_uses_the_repaired_mapping() {
        let (chain, platform, mapping) = setup();
        let config = MonteCarloConfig {
            num_datasets: 6_000,
            ..MonteCarloConfig::default()
        };
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at_fraction: 0.5,
            delta: PlatformDelta::ProcessorFailed(3),
        }]);
        let mut calls = 0;
        let report = monte_carlo_with_faults(&chain, &platform, &mapping, &config, &plan, |d| {
            calls += 1;
            assert_eq!(*d, PlatformDelta::ProcessorFailed(3));
            let (c2, p2) = d.apply(&chain, &platform).unwrap();
            // Degraded repair: drop to one replica on the second interval.
            let m2 = Mapping::new(
                vec![
                    MappedInterval::new(Interval { first: 0, last: 1 }, vec![0, 1]),
                    MappedInterval::new(Interval { first: 2, last: 3 }, vec![2]),
                ],
                &c2,
                &p2,
            )
            .unwrap();
            Some((c2, p2, m2))
        });
        assert_eq!(calls, 1);
        assert_eq!(report.segments.len(), 2);
        assert_eq!(report.events_applied, 1);
        assert_eq!(report.datasets, 6_000);
        assert_eq!(report.segments[0].estimate.datasets, 3_000);
        assert_eq!(report.segments[1].estimate.datasets, 3_000);
        assert_eq!(
            report.segments[1].triggered_by,
            Some(PlatformDelta::ProcessorFailed(3))
        );
        // The un-replicated post-fault interval must hurt reliability.
        assert!(report.segments[1].estimate.reliability < report.segments[0].estimate.reliability);
    }

    #[test]
    fn unrepairable_event_stops_the_run() {
        let (chain, platform, mapping) = setup();
        let plan = FaultPlan::scripted(vec![FaultEvent {
            at_fraction: 0.25,
            delta: PlatformDelta::ProcessorFailed(0),
        }]);
        let config = MonteCarloConfig {
            num_datasets: 4_000,
            ..MonteCarloConfig::default()
        };
        let report = monte_carlo_with_faults(&chain, &platform, &mapping, &config, &plan, |_| None);
        assert_eq!(report.events_unrepaired, 1);
        assert_eq!(report.datasets, 1_000);
        assert_eq!(report.segments.len(), 1);
    }

    #[test]
    fn seeded_kill_plans_are_reproducible_and_respect_the_alive_count() {
        let a = FaultPlan::seeded_kills(9, 3, 4);
        let b = FaultPlan::seeded_kills(9, 3, 4);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 3);
        for (i, event) in a.events.iter().enumerate() {
            let alive = 4 - i;
            match event.delta {
                PlatformDelta::ProcessorFailed(u) => assert!(u < alive),
                _ => panic!("kill plans only fail processors"),
            }
        }
        // Never kills the last processor.
        assert_eq!(FaultPlan::seeded_kills(9, 10, 4).events.len(), 3);
    }
}
