use rpo_portfolio::cache::InstanceCache;
use rpo_portfolio::ProblemInstance;
use rpo_model::{Platform, TaskChain};
use rpo_portfolio::pareto::ParetoFront;
use std::sync::Arc;

fn instance(work: f64) -> ProblemInstance {
    let chain = TaskChain::from_pairs(&[(work, 1.0), (20.0, 0.0)]).unwrap();
    let platform = Platform::homogeneous(3, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
    ProblemInstance::unbounded(chain, platform)
}

#[test]
fn compaction_during_touch_corrupts_lru() {
    let mut cache = InstanceCache::new(2);
    let (a, b, c) = (instance(1.0), instance(2.0), instance(3.0));
    cache.put(&a, Arc::new(ParetoFront::new()));
    cache.put(&b, Arc::new(ParetoFront::new()));
    // 19 hits on b: the 19th push makes the touch log exceed 2*2+16 and
    // triggers compaction, which drops b's freshest touch.
    for _ in 0..19 {
        assert!(cache.get(&b).is_some());
    }
    // Now touch a: a is the most recently used entry.
    assert!(cache.get(&a).is_some());
    // Insert c: the LRU entry is b, so b must be evicted and a kept.
    cache.put(&c, Arc::new(ParetoFront::new()));
    assert!(cache.len() <= 2, "cache exceeded capacity: {}", cache.len());
    assert!(
        cache.get(&a).is_some(),
        "most-recently-used entry `a` was evicted instead of LRU `b`"
    );
}
