//! Integration suite for the [`InstanceCache`] LRU.
//!
//! Promoted from the PR 1 review scratch test: the original
//! `compaction_during_touch_corrupts_lru` reproducer (the touch-log
//! compaction used to drop the freshest touch of the entry being refreshed,
//! leaving it unevictable and corrupting the LRU order) now passes against
//! the fixed cache, alongside edge cases the unit tests do not cover:
//! capacity 1, re-putting an existing key, and eviction correctness after
//! long hit streaks.

use rpo_model::{Platform, TaskChain};
use rpo_portfolio::cache::InstanceCache;
use rpo_portfolio::pareto::ParetoFront;
use rpo_portfolio::ProblemInstance;
use std::sync::Arc;

fn instance(work: f64) -> ProblemInstance {
    let chain = TaskChain::from_pairs(&[(work, 1.0), (20.0, 0.0)]).unwrap();
    let platform = Platform::homogeneous(3, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
    ProblemInstance::unbounded(chain, platform)
}

fn front() -> Arc<ParetoFront> {
    Arc::new(ParetoFront::new())
}

/// The PR 1 review reproducer: a hit streak long enough to trigger touch-log
/// compaction must not corrupt the recency order.
#[test]
fn compaction_during_touch_preserves_lru_order() {
    let mut cache = InstanceCache::new(2);
    let (a, b, c) = (instance(1.0), instance(2.0), instance(3.0));
    cache.put(&a, front());
    cache.put(&b, front());
    // 19 hits on b: the 19th push makes the touch log exceed 2*2+16 and
    // triggers compaction, which used to drop b's freshest touch.
    for _ in 0..19 {
        assert!(cache.get(&b).is_some());
    }
    // Now touch a: a is the most recently used entry.
    assert!(cache.get(&a).is_some());
    // Insert c: the LRU entry is b, so b must be evicted and a kept.
    cache.put(&c, front());
    assert!(cache.len() <= 2, "cache exceeded capacity: {}", cache.len());
    assert!(
        cache.get(&a).is_some(),
        "most-recently-used entry `a` was evicted instead of LRU `b`"
    );
    assert!(cache.get(&b).is_none(), "LRU entry `b` was not evicted");
    assert!(cache.get(&c).is_some());
}

/// Capacity 1 degenerates to "remember only the last instance".
#[test]
fn capacity_one_keeps_only_the_latest_entry() {
    let mut cache = InstanceCache::new(1);
    let (a, b) = (instance(1.0), instance(2.0));
    cache.put(&a, front());
    assert!(cache.get(&a).is_some());
    cache.put(&b, front());
    assert_eq!(cache.len(), 1);
    assert!(cache.get(&a).is_none(), "a must be evicted by b");
    assert!(cache.get(&b).is_some());
    assert_eq!(cache.stats().evictions, 1);
    // And the survivor keeps answering after repeated hits.
    for _ in 0..50 {
        assert!(cache.get(&b).is_some());
    }
    assert_eq!(cache.len(), 1);
}

/// Re-putting an existing key must replace the stored front in place without
/// evicting anything else, and must refresh the entry's recency.
#[test]
fn re_put_of_an_existing_key_replaces_and_refreshes() {
    let mut cache = InstanceCache::new(2);
    let (a, b, c) = (instance(1.0), instance(2.0), instance(3.0));
    let first = front();
    let second = front();
    cache.put(&a, Arc::clone(&first));
    cache.put(&b, front());

    // Re-put a with a different front: same key, no eviction.
    cache.put(&a, Arc::clone(&second));
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.stats().evictions, 0);
    let hit = cache.get(&a).unwrap();
    assert!(Arc::ptr_eq(&hit, &second), "re-put must replace the front");
    assert!(!Arc::ptr_eq(&hit, &first));

    // The re-put refreshed a's recency, so inserting c evicts b.
    cache.put(&c, front());
    assert!(cache.get(&a).is_some());
    assert!(cache.get(&b).is_none());
    assert!(cache.get(&c).is_some());
}

/// A full round of evictions under interleaved hits keeps exactly the
/// `capacity` most recently used entries.
#[test]
fn interleaved_hits_and_inserts_keep_the_hottest_entries() {
    let mut cache = InstanceCache::new(3);
    let entries: Vec<ProblemInstance> = (0..6).map(|i| instance(1.0 + i as f64)).collect();
    for e in entries.iter().take(3) {
        cache.put(e, front());
    }
    // Keep 0 and 2 hot, let 1 go cold.
    for _ in 0..5 {
        assert!(cache.get(&entries[0]).is_some());
        assert!(cache.get(&entries[2]).is_some());
    }
    cache.put(&entries[3], front()); // evicts 1
    assert!(cache.get(&entries[1]).is_none());
    // 0 stays hot; 2 goes cold, 4 evicts it.
    assert!(cache.get(&entries[0]).is_some());
    assert!(cache.get(&entries[3]).is_some());
    cache.put(&entries[4], front()); // evicts 2
    assert!(cache.get(&entries[2]).is_none());
    assert_eq!(cache.len(), 3);
    assert_eq!(cache.stats().evictions, 2);
}
