//! Churn-replay mode: streams instances through **live repair sessions**
//! instead of independent solves.
//!
//! Where [`BatchDriver::run`](crate::BatchDriver::run) treats every instance
//! as a one-shot solve, [`BatchDriver::run_churn`](crate::BatchDriver::run_churn)
//! opens a [`RepairSession`] per instance, samples a seeded platform-churn
//! trace ([`ChurnTrace`]) from the paper's own exponential failure model, and
//! replays the trace through the graded repair ladder — tallying which rung
//! (local patch / warm DP / full solve) answered each event and how long
//! repairs took, against the cost of the cold initial solves.

use rpo_repair::{RepairSession, RepairTier};
use rpo_workload::{ChurnSpec, ChurnTrace, ExperimentInstance};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::batch::{BatchConfig, BatchDriver};

/// Configuration of a churn replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// The trace parameters (horizon, event cap, burst shape).
    pub spec: ChurnSpec,
    /// Base seed; instance `i` samples its trace with `seed + i`.
    pub seed: u64,
    /// Replay on each instance's heterogeneous platform instead of the
    /// homogeneous one.
    pub heterogeneous: bool,
    /// Optional worst-case period bound each session solves and repairs
    /// under (`None` = pure reliability optimization).
    pub period_bound: Option<f64>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            spec: ChurnSpec::paper(),
            seed: 0xC0FFEE,
            heterogeneous: false,
            period_bound: None,
        }
    }
}

/// The report of one churn replay. Serde-serializable for `--report-json`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Instances replayed (sessions opened).
    pub instances: usize,
    /// Instances whose initial solve found no feasible mapping (no session).
    pub infeasible_instances: usize,
    /// Churn events replayed across all sessions.
    pub events: usize,
    /// Events absorbed by the local-patch tier.
    pub local_patches: usize,
    /// Events absorbed by the warm-DP tier.
    pub warm_dps: usize,
    /// Events needing a cold full solve.
    pub full_solves: usize,
    /// Events no repair could absorb (the session kept its pre-delta state).
    pub unrepaired: usize,
    /// Total wall-clock spent inside the cold initial solves.
    pub solve_time: Duration,
    /// Total wall-clock spent inside repairs.
    pub repair_time: Duration,
    /// Wall-clock of the whole replay.
    pub elapsed: Duration,
    /// Sum over sessions of the final reliability after all repairs (divide
    /// by `instances − infeasible_instances` for the mean).
    pub final_reliability_sum: f64,
}

impl ChurnReport {
    /// Mean nanoseconds per repair event (0 with no events).
    pub fn mean_repair_nanos(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.repair_time.as_nanos() as f64 / self.events as f64
        }
    }

    /// Mean nanoseconds per cold initial solve (0 with no sessions).
    pub fn mean_solve_nanos(&self) -> f64 {
        let sessions = self.instances - self.infeasible_instances;
        if sessions == 0 {
            0.0
        } else {
            self.solve_time.as_nanos() as f64 / sessions as f64
        }
    }
}

impl std::fmt::Display for ChurnReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "churn: {} sessions ({} infeasible) replayed {} events in {:.2?}",
            self.instances, self.infeasible_instances, self.events, self.elapsed,
        )?;
        writeln!(
            f,
            "tiers: {} local-patch / {} warm-dp / {} full-solve, {} unrepaired",
            self.local_patches, self.warm_dps, self.full_solves, self.unrepaired,
        )?;
        writeln!(
            f,
            "mean cold solve {:.1}us vs mean repair {:.1}us ({:.1}x)",
            self.mean_solve_nanos() / 1e3,
            self.mean_repair_nanos() / 1e3,
            self.mean_solve_nanos() / self.mean_repair_nanos().max(1.0),
        )
    }
}

impl BatchDriver {
    /// Replays a seeded churn trace through a live [`RepairSession`] for
    /// every instance of `stream`, in parallel across the driver's workers.
    ///
    /// Each instance gets its own trace (`config.seed + index`) sampled from
    /// its platform's failure rates, so the replay is deterministic for a
    /// given `(stream, config)`.
    pub fn run_churn<I>(&self, batch: &BatchConfig, config: &ChurnConfig, stream: I) -> ChurnReport
    where
        I: IntoIterator<Item = ExperimentInstance>,
        I::IntoIter: Send,
    {
        let _span = rpo_obs::span!("churn.replay");
        let start = Instant::now();
        let workers = batch.workers.max(1);
        let source = Mutex::new(stream.into_iter().enumerate());
        let shared: Mutex<ChurnReport> = Mutex::new(ChurnReport::default());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = ChurnReport::default();
                    loop {
                        let next = source.lock().expect("churn stream lock poisoned").next();
                        let Some((index, experiment)) = next else {
                            break;
                        };
                        local.instances += 1;
                        let platform = if config.heterogeneous {
                            experiment.heterogeneous.clone()
                        } else {
                            experiment.homogeneous.clone()
                        };
                        let trace = ChurnTrace::generate(
                            &platform,
                            &config.spec,
                            config.seed.wrapping_add(index as u64),
                        );
                        let solve_start = Instant::now();
                        let session = RepairSession::new(
                            experiment.chain.clone(),
                            platform,
                            config.period_bound,
                        );
                        local.solve_time += solve_start.elapsed();
                        let Ok(mut session) = session else {
                            local.infeasible_instances += 1;
                            continue;
                        };
                        for event in &trace.events {
                            local.events += 1;
                            let repair_start = Instant::now();
                            match session.apply(&event.delta) {
                                Ok(report) => match report.tier {
                                    RepairTier::LocalPatch => local.local_patches += 1,
                                    RepairTier::WarmDp => local.warm_dps += 1,
                                    RepairTier::FullSolve => local.full_solves += 1,
                                },
                                Err(_) => local.unrepaired += 1,
                            }
                            local.repair_time += repair_start.elapsed();
                        }
                        local.final_reliability_sum += session.reliability();
                    }
                    let mut report = shared.lock().expect("churn report lock poisoned");
                    report.instances += local.instances;
                    report.infeasible_instances += local.infeasible_instances;
                    report.events += local.events;
                    report.local_patches += local.local_patches;
                    report.warm_dps += local.warm_dps;
                    report.full_solves += local.full_solves;
                    report.unrepaired += local.unrepaired;
                    report.solve_time += local.solve_time;
                    report.repair_time += local.repair_time;
                    report.final_reliability_sum += local.final_reliability_sum;
                });
            }
        });
        let mut report = shared.into_inner().expect("churn report lock poisoned");
        report.elapsed = start.elapsed();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_workload::InstanceGenerator;

    #[test]
    fn churn_replay_repairs_paper_scale_instances() {
        let driver = BatchDriver::default();
        let batch = BatchConfig {
            workers: 2,
            ..BatchConfig::default()
        };
        // High-churn spec on the paper's 1e-8-rate platforms: shorten the
        // horizon massively so the burst dominates and events are certain.
        let config = ChurnConfig {
            spec: ChurnSpec {
                horizon: 1e6,
                max_events: 4,
                min_alive: 2,
                burst_kills: 3,
                burst_at: 0.5,
            },
            ..ChurnConfig::default()
        };
        let generator = InstanceGenerator::paper_homogeneous(2024);
        let report = driver.run_churn(&batch, &config, generator.stream(6));
        assert_eq!(report.instances, 6);
        assert_eq!(report.infeasible_instances, 0);
        // Every instance's burst fires: 3 kills each.
        assert_eq!(report.events, 18);
        assert_eq!(report.unrepaired, 0);
        let repaired = report.local_patches + report.warm_dps + report.full_solves;
        assert_eq!(repaired, report.events);
        // Paper instances use K=3 on 10 processors: the optimum leaves
        // processors free, so kills are overwhelmingly local patches.
        assert!(report.local_patches > 0, "expected local patches");
        let mean = report.final_reliability_sum / 6.0;
        assert!(mean > 0.9, "post-churn reliability collapsed: {mean}");
    }

    #[test]
    fn churn_replay_is_deterministic_in_counts() {
        let driver = BatchDriver::default();
        let batch = BatchConfig {
            workers: 1,
            ..BatchConfig::default()
        };
        let config = ChurnConfig::default();
        let generator = InstanceGenerator::paper_homogeneous(7);
        let a = driver.run_churn(&batch, &config, generator.batch(4));
        let b = driver.run_churn(&batch, &config, generator.batch(4));
        assert_eq!(a.events, b.events);
        assert_eq!(
            (a.local_patches, a.warm_dps, a.full_solves),
            (b.local_patches, b.warm_dps, b.full_solves)
        );
        assert_eq!(a.final_reliability_sum, b.final_reliability_sum);
    }
}
