//! Parallel solver-portfolio engine for the tri-criteria interval-mapping
//! problem.
//!
//! The paper supplies *many* solvers — the polynomial Algorithms 1–2 and the
//! period minimizer, the Section 7 Heur-L/Heur-P + allocation heuristics,
//! the Section 5.4 ILP and the exhaustive enumeration — each with its own
//! applicability envelope (homogeneous only, small instances only, bound
//! shapes). This crate races them as a **portfolio**, in the spirit of
//! parallel solver frameworks such as Bobpp: every applicable backend runs
//! on the instance, and their candidates are merged into a tri-criteria
//! **Pareto front** (reliability ↑, worst-case period ↓, worst-case
//! latency ↓).
//!
//! The moving parts:
//!
//! * [`SolverBackend`] ([`backend`]) — one uniform
//!   `solve(&ProblemInstance, &Budget) -> Vec<CandidateMapping>` interface
//!   with per-backend applicability checks;
//! * [`backends`] — the eight adapters over `rpo-algorithms`;
//! * [`ParetoFront`] ([`pareto`]) — dominance filtering with deterministic
//!   tie-breaking, so results are thread-schedule independent — plus the
//!   [`StreamingFront`] candidates flow into as each backend finishes,
//!   re-certified through the instance's shared oracle;
//! * [`PortfolioEngine`] ([`engine`]) — the parallel race itself: worker
//!   threads pull backends from a shared queue, with run-all and
//!   first-feasible-wins modes and a wall-clock budget;
//! * [`InstanceCache`] ([`cache`]) — an LRU keyed by the canonical hash of
//!   `(chain, platform, bounds)`, so repeated solves are O(1) — and the
//!   chain-keyed [`OracleCache`] that lets near-duplicate instances (same
//!   chain/platform, different bounds) share one [`rpo_model::IntervalOracle`];
//! * [`BatchDriver`] ([`batch`]) — streams `rpo-workload` instance batches
//!   through the engine and reports throughput and per-backend win rates;
//!   with [`BatchConfig::bucketed`] it shape-buckets homogeneous instances
//!   through the batched SoA mega-kernel
//!   ([`rpo_algorithms::solve_batch`]), one instance per SIMD lane, and
//!   routes everything else down the per-instance remainder path;
//! * [`BatchDriver::run_churn`] ([`churn`]) — the self-healing mode: one
//!   live [`rpo_repair::RepairSession`] per instance, replaying a seeded
//!   platform-churn trace through the graded repair ladder and tallying
//!   which tier absorbed each event.
//!
//! ```
//! use rpo_model::{Platform, TaskChain};
//! use rpo_portfolio::{PortfolioEngine, ProblemInstance};
//!
//! let chain = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0)]).unwrap();
//! let platform = Platform::homogeneous(4, 1.0, 1e-4, 1.0, 1e-5, 2).unwrap();
//! let instance = ProblemInstance::new(chain, platform, 70.0, 130.0).unwrap();
//!
//! let engine = PortfolioEngine::default();
//! let outcome = engine.solve(&instance);
//! assert!(outcome.is_feasible());
//! assert!(outcome.front.is_mutually_non_dominated());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod backends;
pub mod batch;
pub mod cache;
pub mod churn;
pub mod engine;
pub mod pareto;

pub use backend::{
    Applicability, Budget, CandidateMapping, ProblemInstance, SolveContext, SolverBackend,
};
pub use backends::default_backends;
pub use batch::{BackendStats, BatchConfig, BatchDriver, BatchReport, BoundsPolicy, ThreadSplit};
pub use cache::{CacheStats, InstanceCache, OracleCache};
pub use churn::{ChurnConfig, ChurnReport};
pub use engine::{BackendRun, PortfolioEngine, PortfolioOutcome, RaceMode, RunStatus};
pub use pareto::{ParetoFront, StreamingFront};
