//! The [`SolverBackend`] abstraction: one uniform `solve` interface over
//! every solver of `rpo-algorithms`, with per-backend applicability checks.
//!
//! Every solve receives the instance's shared [`IntervalOracle`], built once
//! by the engine and handed to all backends, so none of them recomputes the
//! Eq. 5–9 interval metrics from scratch.

use crate::pareto::StreamingFront;
use rpo_algorithms::DpScratch;
use rpo_model::{
    Canonical, CanonicalHasher, IntervalOracle, Mapping, MappingEvaluation, Platform, TaskChain,
};
use std::sync::Arc;
use std::time::Duration;

/// One tri-criteria problem instance: a chain, a platform, and the real-time
/// bounds a mapping must satisfy (`f64::INFINITY` for an absent bound).
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemInstance {
    /// The task chain.
    pub chain: TaskChain,
    /// The target platform.
    pub platform: Platform,
    /// Worst-case period bound `P`.
    pub period_bound: f64,
    /// Worst-case latency bound `L`.
    pub latency_bound: f64,
}

impl ProblemInstance {
    /// Creates an instance, validating that both bounds are positive
    /// (`f64::INFINITY` is allowed and means "unbounded").
    pub fn new(
        chain: TaskChain,
        platform: Platform,
        period_bound: f64,
        latency_bound: f64,
    ) -> Result<Self, String> {
        if period_bound <= 0.0 || period_bound.is_nan() {
            return Err("period bound must be positive (or infinite)".to_string());
        }
        if latency_bound <= 0.0 || latency_bound.is_nan() {
            return Err("latency bound must be positive (or infinite)".to_string());
        }
        Ok(ProblemInstance {
            chain,
            platform,
            period_bound,
            latency_bound,
        })
    }

    /// An instance with no real-time bounds (pure reliability optimization).
    pub fn unbounded(chain: TaskChain, platform: Platform) -> Self {
        ProblemInstance {
            chain,
            platform,
            period_bound: f64::INFINITY,
            latency_bound: f64::INFINITY,
        }
    }

    /// The canonical cache key of this instance: a structure-sensitive hash
    /// of `(chain, platform, period bound, latency bound)`.
    pub fn canonical_key(&self) -> u64 {
        let mut hasher = CanonicalHasher::new();
        self.chain.canonical_digest(&mut hasher);
        self.platform.canonical_digest(&mut hasher);
        hasher.write_f64(self.period_bound);
        hasher.write_f64(self.latency_bound);
        hasher.finish()
    }

    /// Whether `evaluation` satisfies this instance's bounds.
    pub fn admits(&self, evaluation: &MappingEvaluation) -> bool {
        evaluation.meets(self.period_bound, self.latency_bound)
    }

    /// The chain-level cache key of this instance: the canonical hash of
    /// `(chain, platform)` **without** the bounds. Instances that differ only
    /// in their bounds share this key — and therefore share one cached
    /// [`IntervalOracle`] in the engine's oracle cache.
    pub fn oracle_key(&self) -> u64 {
        rpo_model::oracle_cache_key(&self.chain, &self.platform)
    }

    /// Builds the shared interval-metrics oracle for this instance. The
    /// engine resolves oracles through its chain-keyed cache (see
    /// [`Self::oracle_key`]) and hands the same `Arc` to every backend; the
    /// oracle is derived data and not part of the instance cache key.
    pub fn build_oracle(&self) -> Arc<IntervalOracle> {
        IntervalOracle::shared(&self.chain, &self.platform)
    }

    /// A finite stand-in for the period bound, needed by solvers that reject
    /// infinite bounds (`algo_alloc_heterogeneous`): the worst possible
    /// single-interval period on the slowest processor, doubled.
    pub fn finite_period_bound(&self) -> f64 {
        if self.period_bound.is_finite() {
            self.period_bound
        } else {
            2.0 * self.chain.total_work() / self.platform.min_speed()
                + self.platform.comm_time(self.chain.max_boundary_output())
        }
    }
}

/// Resource limits under which a backend runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Wall-clock limit for one whole portfolio solve. Backends not yet
    /// started when it expires are skipped (running ones finish).
    pub time_limit: Option<Duration>,
    /// Largest chain length the exhaustive-enumeration solver accepts
    /// (`O(2^{n-1})` partitions).
    pub max_exhaustive_tasks: usize,
    /// Largest chain length the ILP solver accepts (its branch-and-bound
    /// grows much faster than the exhaustive enumeration).
    pub max_ilp_tasks: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            time_limit: None,
            max_exhaustive_tasks: 14,
            max_ilp_tasks: 8,
        }
    }
}

impl Budget {
    /// A budget with a wall-clock limit per portfolio solve.
    pub fn with_time_limit(limit: Duration) -> Self {
        Budget {
            time_limit: Some(limit),
            ..Budget::default()
        }
    }
}

/// Whether a backend can run on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// The backend can run.
    Applicable,
    /// The backend cannot run, with the reason (e.g. "heterogeneous
    /// platform", "instance too large").
    Skip(&'static str),
}

impl Applicability {
    /// `true` iff the backend can run.
    pub fn is_applicable(&self) -> bool {
        matches!(self, Applicability::Applicable)
    }
}

/// One mapping proposed by a backend, with its five-criteria evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateMapping {
    /// Name of the backend that produced the mapping.
    pub backend: &'static str,
    /// The proposed mapping.
    pub mapping: Mapping,
    /// Its evaluation on the instance.
    pub evaluation: MappingEvaluation,
}

impl CandidateMapping {
    /// Builds a candidate by evaluating `mapping` on the instance.
    pub fn evaluate(backend: &'static str, instance: &ProblemInstance, mapping: Mapping) -> Self {
        let evaluation = MappingEvaluation::evaluate(&instance.chain, &instance.platform, &mapping);
        CandidateMapping {
            backend,
            mapping,
            evaluation,
        }
    }

    /// Builds a candidate through the shared oracle's fast evaluation path
    /// (bit-identical to [`CandidateMapping::evaluate`]).
    pub fn evaluate_with_oracle(
        backend: &'static str,
        oracle: &IntervalOracle,
        mapping: Mapping,
    ) -> Self {
        let evaluation = oracle.evaluate(&mapping);
        CandidateMapping {
            backend,
            mapping,
            evaluation,
        }
    }

    /// A deterministic fingerprint of the mapping structure, used for
    /// tie-breaking between criteria-identical candidates.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = CanonicalHasher::new();
        hasher.write_usize(self.mapping.num_intervals());
        for mapped in self.mapping.intervals() {
            hasher.write_usize(mapped.interval.first);
            hasher.write_usize(mapped.interval.last);
            hasher.write_usize(mapped.processors.len());
            for &processor in &mapped.processors {
                hasher.write_usize(processor);
            }
        }
        hasher.finish()
    }
}

/// Mutable per-solve state the engine lends to each backend run: a pooled
/// DP scratch (allocation reuse across the instances of a batch) and a live
/// view of the solve's streaming Pareto front for mid-solve dominance
/// probes.
pub struct SolveContext<'a> {
    /// DP arenas from the engine's scratch pool. [`DpScratch::reset`] was
    /// called before lending, so only allocations carry over between
    /// instances — never another instance's admissibility data.
    pub scratch: &'a mut DpScratch,
    /// The solve's streaming front, when the engine is racing one. Backends
    /// that sweep many candidate profiles can call
    /// [`StreamingFront::is_dominated`] mid-solve and abandon profiles that
    /// are already strictly dominated — dominance only ever tightens as the
    /// front grows, so an early abandon can never change the final front.
    pub front: Option<&'a StreamingFront>,
}

impl SolveContext<'_> {
    /// Whether `candidate` is already strictly dominated by the front being
    /// streamed into (always `false` when no front is attached).
    pub fn is_dominated(&self, candidate: &CandidateMapping) -> bool {
        self.front
            .is_some_and(|front| front.is_dominated(candidate))
    }
}

/// A solver that can participate in the portfolio race.
///
/// Implementations adapt the entry points of `rpo-algorithms` (Algorithms
/// 1–2, the period minimizer, the heterogeneous class DP, the Section 7
/// heuristics, the exact solvers) to one uniform interface. `solve` returns
/// *all* candidate mappings worth aggregating — heuristic backends typically
/// return one candidate per interval count, enriching the Pareto front
/// beyond the single best-reliability answer.
pub trait SolverBackend: Send + Sync {
    /// Short display name (`"Algo-1"`, `"Heur-P"`, "`ILP`", …).
    fn name(&self) -> &'static str;

    /// Whether this backend can run on `instance` under `budget`.
    fn applicability(&self, instance: &ProblemInstance, budget: &Budget) -> Applicability;

    /// Runs the backend and returns its candidate mappings (possibly empty).
    /// Candidates need not satisfy the instance bounds; the engine filters.
    ///
    /// `oracle` is the instance's shared interval-metrics kernel: one
    /// `Arc<IntervalOracle>` built per solve and handed to every backend.
    /// `ctx` lends the engine's pooled DP scratch and (when racing) the live
    /// streaming front.
    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        budget: &Budget,
        ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping>;
}
