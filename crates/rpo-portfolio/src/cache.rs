//! Canonical-hash LRU caches: solved Pareto fronts keyed by the full
//! `(chain, platform, bounds)` instance, and shared [`IntervalOracle`]s keyed
//! by `(chain, platform)` only — so near-duplicate instances (same chain and
//! platform, different bounds) reuse one oracle even when their fronts miss.

use crate::backend::ProblemInstance;
use crate::pareto::ParetoFront;
use rpo_model::{IntervalOracle, Platform, TaskChain};
use rpo_obs::Counter;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the portfolio.
    pub misses: u64,
    /// Entries evicted to respect the capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct LruEntry<T> {
    payload: T,
    last_used: u64,
}

/// The LRU machinery shared by both caches: a map from 64-bit canonical
/// hashes to payloads, with recency tracked by a lazy queue of `(tick, key)`
/// touches — eviction pops stale touches until it finds the genuinely
/// least-recently-used entry, giving amortized O(1) updates instead of an
/// O(capacity) scan. Payloads carry whatever exact-match data the wrapper
/// needs to rule out hash collisions (a collision degrades to a miss, never
/// a wrong answer).
struct LruCore<T> {
    capacity: usize,
    entries: HashMap<u64, LruEntry<T>>,
    /// Touch log: `(tick, key)`, oldest first; entries are stale when the
    /// keyed entry has a newer `last_used`.
    touches: VecDeque<(u64, u64)>,
    clock: u64,
    stats: CacheStats,
    /// Global `<family>.{hits,misses,evictions}` registry counters, bumped
    /// alongside the per-cache [`CacheStats`] (which engine-level accessors
    /// and tests keep reading unchanged).
    obs: ObsCounters,
}

/// Pre-resolved registry counters for one cache family.
struct ObsCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ObsCounters {
    fn new(family: &str) -> Self {
        let registry = rpo_obs::global();
        ObsCounters {
            hits: registry.counter(&format!("{family}.hits")),
            misses: registry.counter(&format!("{family}.misses")),
            evictions: registry.counter(&format!("{family}.evictions")),
        }
    }
}

impl<T> LruCore<T> {
    fn new(capacity: usize, family: &str) -> Self {
        LruCore {
            capacity,
            entries: HashMap::new(),
            touches: VecDeque::new(),
            clock: 0,
            stats: CacheStats::default(),
            obs: ObsCounters::new(family),
        }
    }

    /// Records a fresh touch for `key`. The keyed entry **must already be
    /// stored**: its `last_used` is updated *before* the touch log is
    /// compacted, so compaction can never drop the freshest touch of a live
    /// entry (that was the LRU-corruption bug found in the PR 1 review).
    fn touch(&mut self, key: u64) {
        self.clock += 1;
        let tick = self.clock;
        self.entries
            .get_mut(&key)
            .expect("touch is only called for stored entries")
            .last_used = tick;
        self.touches.push_back((tick, key));
        // Keep the touch log proportional to the live entry count so a long
        // streak of hits cannot grow it without bound (amortized O(1)).
        if self.touches.len() > 2 * self.entries.len() + 16 {
            let entries = &self.entries;
            self.touches
                .retain(|(tick, key)| entries.get(key).is_some_and(|e| e.last_used == *tick));
        }
    }

    /// Looks up `key`, verifying the payload against a structural equality
    /// check before counting a hit (and refreshing recency on one).
    fn get(&mut self, key: u64, matches: impl FnOnce(&T) -> bool) -> Option<&T> {
        let hit = self
            .entries
            .get(&key)
            .is_some_and(|entry| matches(&entry.payload));
        if hit {
            self.touch(key);
            self.stats.hits += 1;
            self.obs.hits.inc();
            self.entries.get(&key).map(|entry| &entry.payload)
        } else {
            self.stats.misses += 1;
            self.obs.misses.inc();
            None
        }
    }

    /// Stores `payload` under `key`, evicting the least recently used entry
    /// if the cache is full. No-op at capacity 0.
    fn put(&mut self, key: u64, payload: T) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.evict_lru();
        }
        // Insert first, then touch: touch keeps the entry's `last_used` and
        // the touch log consistent under compaction.
        self.entries.insert(
            key,
            LruEntry {
                payload,
                last_used: self.clock,
            },
        );
        self.touch(key);
    }

    /// Removes the least-recently-used entry by draining stale touches.
    fn evict_lru(&mut self) {
        while let Some((tick, key)) = self.touches.pop_front() {
            match self.entries.get(&key) {
                Some(entry) if entry.last_used == tick => {
                    self.entries.remove(&key);
                    self.stats.evictions += 1;
                    self.obs.evictions.inc();
                    return;
                }
                _ => continue, // stale touch: the entry was refreshed or evicted
            }
        }
    }
}

/// An LRU map from canonical instance hashes to solved Pareto fronts.
///
/// Keys are the 64-bit [`ProblemInstance::canonical_key`]; on lookup the
/// stored instance is compared structurally, so a hash collision degrades to
/// a miss instead of returning a wrong front.
pub struct InstanceCache {
    core: LruCore<(ProblemInstance, Arc<ParetoFront>)>,
}

impl InstanceCache {
    /// A cache holding at most `capacity` fronts (capacity 0 disables it).
    pub fn new(capacity: usize) -> Self {
        InstanceCache {
            core: LruCore::new(capacity, "cache.instance"),
        }
    }

    /// Looks up the front for `instance`, refreshing its recency on a hit.
    /// The returned `Arc` shares the stored front — no deep copy.
    pub fn get(&mut self, instance: &ProblemInstance) -> Option<Arc<ParetoFront>> {
        self.core
            .get(instance.canonical_key(), |(stored, _)| stored == instance)
            .map(|(_, front)| Arc::clone(front))
    }

    /// Stores the solved front for `instance`, evicting the least recently
    /// used entry if the cache is full.
    pub fn put(&mut self, instance: &ProblemInstance, front: Arc<ParetoFront>) {
        self.core
            .put(instance.canonical_key(), (instance.clone(), front));
    }

    /// Current number of cached fronts.
    pub fn len(&self) -> usize {
        self.core.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.core.entries.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.core.stats
    }
}

/// An LRU map from canonical `(chain, platform)` hashes to shared
/// [`IntervalOracle`]s.
///
/// The oracle is bound-independent derived data, so instances differing only
/// in their period/latency bounds — which miss the [`InstanceCache`] — still
/// share one oracle here: the batch driver pays the `O(n + p)` interval
/// precomputation once per distinct chain/platform pair instead of once per
/// solve.
pub struct OracleCache {
    core: LruCore<(TaskChain, Platform, Arc<IntervalOracle>)>,
}

impl OracleCache {
    /// A cache holding at most `capacity` oracles (capacity 0 disables it).
    pub fn new(capacity: usize) -> Self {
        OracleCache {
            core: LruCore::new(capacity, "cache.oracle"),
        }
    }

    /// The cached oracle for `instance`'s chain and platform, if present.
    pub fn get(&mut self, instance: &ProblemInstance) -> Option<Arc<IntervalOracle>> {
        self.core
            .get(instance.oracle_key(), |(chain, platform, _)| {
                chain == &instance.chain && platform == &instance.platform
            })
            .map(|(_, _, oracle)| Arc::clone(oracle))
    }

    /// Stores a freshly built oracle for `instance`'s chain and platform.
    pub fn put(&mut self, instance: &ProblemInstance, oracle: Arc<IntervalOracle>) {
        self.core.put(
            instance.oracle_key(),
            (instance.chain.clone(), instance.platform.clone(), oracle),
        );
    }

    /// The shared oracle for `instance`'s chain and platform: answered from
    /// the cache when present, freshly built (and stored) otherwise. Callers
    /// holding the cache behind a lock should prefer `get` + build + `put`
    /// so the `O(n + p)` construction happens outside the critical section.
    pub fn get_or_build(&mut self, instance: &ProblemInstance) -> Arc<IntervalOracle> {
        if let Some(oracle) = self.get(instance) {
            return oracle;
        }
        let oracle = instance.build_oracle();
        self.put(instance, Arc::clone(&oracle));
        oracle
    }

    /// Current number of cached oracles.
    pub fn len(&self) -> usize {
        self.core.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.core.entries.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.core.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{Platform, TaskChain};

    fn instance(work: f64) -> ProblemInstance {
        let chain = TaskChain::from_pairs(&[(work, 1.0), (20.0, 0.0)]).unwrap();
        let platform = Platform::homogeneous(3, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        ProblemInstance::unbounded(chain, platform)
    }

    fn empty_front() -> Arc<ParetoFront> {
        Arc::new(ParetoFront::new())
    }

    #[test]
    fn hit_after_put_miss_before() {
        let mut cache = InstanceCache::new(8);
        let a = instance(10.0);
        assert!(cache.get(&a).is_none());
        cache.put(&a, empty_front());
        assert!(cache.get(&a).is_some());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = InstanceCache::new(2);
        let (a, b, c) = (instance(1.0), instance(2.0), instance(3.0));
        cache.put(&a, empty_front());
        cache.put(&b, empty_front());
        assert!(cache.get(&a).is_some()); // refresh a: b is now coldest
        cache.put(&c, empty_front());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn repeated_refreshes_do_not_confuse_eviction() {
        let mut cache = InstanceCache::new(2);
        let (a, b, c) = (instance(1.0), instance(2.0), instance(3.0));
        cache.put(&a, empty_front());
        cache.put(&b, empty_front());
        // Touch `a` many times, leaving a pile of stale log entries.
        for _ in 0..10 {
            assert!(cache.get(&a).is_some());
        }
        cache.put(&c, empty_front()); // must evict b, not a
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn hits_share_the_front_instead_of_copying() {
        let mut cache = InstanceCache::new(4);
        let a = instance(1.0);
        let front = empty_front();
        cache.put(&a, Arc::clone(&front));
        let hit = cache.get(&a).unwrap();
        assert!(Arc::ptr_eq(&front, &hit));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = InstanceCache::new(0);
        let a = instance(1.0);
        cache.put(&a, empty_front());
        assert!(cache.get(&a).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn oracle_cache_shares_across_bound_variants() {
        let mut cache = OracleCache::new(8);
        let base = instance(10.0);
        let mut tighter = base.clone();
        tighter.period_bound = 35.0;
        // Different bounds → different instance keys, same oracle.
        assert_ne!(base.canonical_key(), tighter.canonical_key());
        let first = cache.get_or_build(&base);
        let second = cache.get_or_build(&tighter);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn oracle_cache_distinguishes_chains() {
        let mut cache = OracleCache::new(8);
        let a = cache.get_or_build(&instance(10.0));
        let b = cache.get_or_build(&instance(11.0));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_oracle_cache_still_builds() {
        let mut cache = OracleCache::new(0);
        let a = instance(10.0);
        let first = cache.get_or_build(&a);
        let second = cache.get_or_build(&a);
        assert!(!Arc::ptr_eq(&first, &second)); // rebuilt every time
        assert!(cache.is_empty());
    }
}
