//! Adapters exposing every `rpo-algorithms` solver as a [`SolverBackend`].
//!
//! | backend | wraps | applicability |
//! |---|---|---|
//! | `Algo-1` | [`rpo_algorithms::optimize_reliability_homogeneous_with_scratch`] | homogeneous |
//! | `Algo-2` | [`rpo_algorithms::optimize_with_period_bound_scratch`] | homogeneous, finite period bound |
//! | `Period-Opt` | [`rpo_algorithms::minimize_period_with_reliability_bound_with_scratch`] | homogeneous |
//! | `Heur-L` | Heur-L partitions + Algo-Alloc / Section 7.2 allocation | always |
//! | `Heur-P` | Heur-P partitions + Algo-Alloc / Section 7.2 allocation | always |
//! | `Het-Dp` | [`rpo_algorithms::algo_het_with_oracle`] (exact class-level DP) | heterogeneous, few classes |
//! | `Het-Dp-Lat` | [`rpo_algorithms::algo_het_lat_with_scratch`] (latency-aware label DP + Lagrangian fallback) | heterogeneous, few classes, finite latency bound |
//! | `Het-Sweep` | Section 7.2 allocation swept over tightened period targets | heterogeneous |
//! | `ILP` | [`rpo_algorithms::exact::optimal_by_ilp_with_oracle`] | homogeneous, small instances |
//! | `Exhaustive` | [`rpo_algorithms::exact::optimal_homogeneous_with_oracle`] | homogeneous, bounded size |
//!
//! All adapters read their interval metrics from the one
//! [`IntervalOracle`] the engine builds per instance, so racing ten
//! backends costs a single metrics precomputation. The DP-based adapters
//! additionally run on the engine's pooled
//! [`DpScratch`](rpo_algorithms::DpScratch) arenas
//! (via [`SolveContext`]), and the sweep adapters consult the live
//! streaming front to abandon already-dominated profiles mid-solve.

use crate::backend::{
    Applicability, Budget, CandidateMapping, ProblemInstance, SolveContext, SolverBackend,
};
use rpo_algorithms::alloc::algo_alloc_with_oracle;
use rpo_algorithms::alloc_het::{algo_alloc_heterogeneous_with_oracle, AllocationConstraints};
use rpo_algorithms::exact;
use rpo_algorithms::heur_l::heur_l_partition_with_oracle;
use rpo_algorithms::heur_p::heur_p_partition_with_oracle;
use rpo_algorithms::{
    algo_het_lat_with_scratch, algo_het_with_oracle, het_dp_applicable, het_dp_applicable_platform,
    minimize_period_with_reliability_bound_with_scratch,
    optimize_reliability_homogeneous_with_scratch, optimize_with_period_bound_scratch,
};
use rpo_model::{IntervalOracle, IntervalPartition};

const SKIP_HETEROGENEOUS: &str = "requires a homogeneous platform";
const SKIP_HOMOGENEOUS: &str = "requires a heterogeneous platform";
const SKIP_TOO_LARGE: &str = "instance exceeds the exact-solver size cap";
const SKIP_NO_PERIOD_BOUND: &str = "needs a finite period bound";
const SKIP_NO_LATENCY_BOUND: &str = "needs a finite latency bound";
const SKIP_TOO_MANY_CLASSES: &str = "class count exceeds the heterogeneous DP cap";

/// The full default portfolio: all ten backends.
pub fn default_backends() -> Vec<Box<dyn SolverBackend>> {
    vec![
        Box::new(Algo1Backend),
        Box::new(Algo2Backend),
        Box::new(PeriodOptBackend),
        Box::new(HeuristicBackend::heur_l()),
        Box::new(HeuristicBackend::heur_p()),
        Box::new(HetDpBackend),
        Box::new(HetDpLatBackend),
        Box::new(HetSweepBackend),
        Box::new(IlpBackend),
        Box::new(ExhaustiveBackend),
    ]
}

/// Algorithm 1: unconstrained reliability optimization (homogeneous DP).
pub struct Algo1Backend;

impl SolverBackend for Algo1Backend {
    fn name(&self) -> &'static str {
        "Algo-1"
    }

    fn applicability(&self, instance: &ProblemInstance, _budget: &Budget) -> Applicability {
        if instance.platform.is_homogeneous() {
            Applicability::Applicable
        } else {
            Applicability::Skip(SKIP_HETEROGENEOUS)
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        optimize_reliability_homogeneous_with_scratch(
            oracle,
            &instance.chain,
            &instance.platform,
            ctx.scratch,
        )
        .map(|solution| {
            vec![CandidateMapping::evaluate_with_oracle(
                self.name(),
                oracle,
                solution.mapping,
            )]
        })
        .unwrap_or_default()
    }
}

/// Algorithm 2: reliability optimization under the period bound.
pub struct Algo2Backend;

impl SolverBackend for Algo2Backend {
    fn name(&self) -> &'static str {
        "Algo-2"
    }

    fn applicability(&self, instance: &ProblemInstance, _budget: &Budget) -> Applicability {
        if !instance.platform.is_homogeneous() {
            Applicability::Skip(SKIP_HETEROGENEOUS)
        } else if !instance.period_bound.is_finite() {
            Applicability::Skip(SKIP_NO_PERIOD_BOUND)
        } else {
            Applicability::Applicable
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        optimize_with_period_bound_scratch(
            oracle,
            &instance.chain,
            &instance.platform,
            instance.period_bound,
            ctx.scratch,
        )
        .map(|solution| {
            vec![CandidateMapping::evaluate_with_oracle(
                self.name(),
                oracle,
                solution.mapping,
            )]
        })
        .unwrap_or_default()
    }
}

/// The Section 5.2 converse problem: the minimal-period mapping (with an
/// essentially unconstrained reliability bound), a natural Pareto extreme.
pub struct PeriodOptBackend;

impl SolverBackend for PeriodOptBackend {
    fn name(&self) -> &'static str {
        "Period-Opt"
    }

    fn applicability(&self, instance: &ProblemInstance, _budget: &Budget) -> Applicability {
        if instance.platform.is_homogeneous() {
            Applicability::Applicable
        } else {
            Applicability::Skip(SKIP_HETEROGENEOUS)
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        minimize_period_with_reliability_bound_with_scratch(
            oracle,
            &instance.chain,
            &instance.platform,
            f64::MIN_POSITIVE,
            ctx.scratch,
        )
        .map(|solution| {
            vec![CandidateMapping::evaluate_with_oracle(
                self.name(),
                oracle,
                solution.mapping,
            )]
        })
        .unwrap_or_default()
    }
}

/// The Section 7 two-step heuristics, returning one candidate per interval
/// count instead of only the best-reliability one (richer Pareto fronts).
pub struct HeuristicBackend {
    name: &'static str,
    partition: fn(&IntervalOracle, usize) -> IntervalPartition,
}

impl HeuristicBackend {
    /// Heur-L (Algorithm 3): cut at the smallest communication costs.
    pub fn heur_l() -> Self {
        HeuristicBackend {
            name: "Heur-L",
            partition: heur_l_partition_with_oracle,
        }
    }

    /// Heur-P (Algorithm 4): balance the interval works.
    pub fn heur_p() -> Self {
        HeuristicBackend {
            name: "Heur-P",
            partition: heur_p_partition_with_oracle,
        }
    }
}

impl SolverBackend for HeuristicBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn applicability(&self, _instance: &ProblemInstance, _budget: &Budget) -> Applicability {
        Applicability::Applicable
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        _ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        let chain = &instance.chain;
        let platform = &instance.platform;
        let homogeneous = oracle.is_homogeneous();
        let constraints = AllocationConstraints::none();
        let period_bound = instance.finite_period_bound();

        let mut candidates = Vec::new();
        for num_intervals in 1..=chain.len().min(platform.num_processors()) {
            let partition = (self.partition)(oracle, num_intervals);
            let mapping = if homogeneous {
                algo_alloc_with_oracle(oracle, chain, platform, &partition)
            } else {
                algo_alloc_heterogeneous_with_oracle(
                    oracle,
                    chain,
                    platform,
                    &partition,
                    period_bound,
                    &constraints,
                )
            };
            if let Ok(mapping) = mapping {
                candidates.push(CandidateMapping::evaluate_with_oracle(
                    self.name, oracle, mapping,
                ));
            }
        }
        candidates
    }
}

/// The exact class-level heterogeneous DP (`algo_het`): optimal reliability
/// under the instance's period bound whenever the platform has few distinct
/// processor classes. The first *exact* heterogeneous optimizer of the
/// portfolio — on class-structured platforms its candidate certifiably
/// dominates every greedy candidate's reliability.
pub struct HetDpBackend;

impl SolverBackend for HetDpBackend {
    fn name(&self) -> &'static str {
        "Het-Dp"
    }

    fn applicability(&self, instance: &ProblemInstance, _budget: &Budget) -> Applicability {
        if instance.platform.is_homogeneous() {
            Applicability::Skip(SKIP_HOMOGENEOUS)
        } else if !het_dp_applicable_platform(&instance.platform) {
            Applicability::Skip(SKIP_TOO_MANY_CLASSES)
        } else {
            Applicability::Applicable
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        _ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        debug_assert!(het_dp_applicable(oracle));
        let period_bound = instance
            .period_bound
            .is_finite()
            .then_some(instance.period_bound);
        algo_het_with_oracle(oracle, &instance.chain, &instance.platform, period_bound)
            .map(|solution| {
                vec![CandidateMapping::evaluate_with_oracle(
                    self.name(),
                    oracle,
                    solution.mapping,
                )]
            })
            .unwrap_or_default()
    }
}

/// The latency-aware exact heterogeneous solver (`algo_het_lat`): optimal
/// reliability under the instance's period **and latency** bounds whenever
/// the platform has few distinct processor classes — the paper's full
/// tri-criteria problem, the one case the period-only `Het-Dp` cannot
/// certify. Runs the `(boundary, budgets, latency-so-far)` label DP with a
/// Lagrangian penalty sweep as overflow fallback; its candidate is probed
/// against the live streaming front and dropped when already strictly
/// dominated (sound: dominance only tightens as the front grows).
pub struct HetDpLatBackend;

impl SolverBackend for HetDpLatBackend {
    fn name(&self) -> &'static str {
        "Het-Dp-Lat"
    }

    fn applicability(&self, instance: &ProblemInstance, _budget: &Budget) -> Applicability {
        if instance.platform.is_homogeneous() {
            Applicability::Skip(SKIP_HOMOGENEOUS)
        } else if !instance.latency_bound.is_finite() {
            Applicability::Skip(SKIP_NO_LATENCY_BOUND)
        } else if !het_dp_applicable_platform(&instance.platform) {
            Applicability::Skip(SKIP_TOO_MANY_CLASSES)
        } else {
            Applicability::Applicable
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        debug_assert!(het_dp_applicable(oracle));
        let period_bound = instance
            .period_bound
            .is_finite()
            .then_some(instance.period_bound);
        algo_het_lat_with_scratch(
            oracle,
            &instance.chain,
            &instance.platform,
            period_bound,
            instance.latency_bound,
            ctx.scratch,
        )
        .map(|solution| {
            // Surface which strategy produced the mapping (label DP,
            // Lagrangian fallback, or greedy) in the trace — the
            // once-silent fallback this backend is probed for.
            let method = solution.method;
            let _span = rpo_obs::recorder().span_fields("het_lat.result", || {
                vec![("method".to_string(), format!("{method:?}").into())]
            });
            // Feed the *whole* merged latency–reliability front into the
            // streaming front, not just the max-reliability optimum: the
            // label DP discovers every non-dominated trade-off anyway, and
            // the faster-but-less-reliable points enrich the portfolio's
            // Pareto front for free. Points the live front already strictly
            // dominates are dropped (sound: dominance only tightens).
            let candidates: Vec<CandidateMapping> = solution
                .front
                .into_iter()
                .map(|point| {
                    CandidateMapping::evaluate_with_oracle(self.name(), oracle, point.mapping)
                })
                .filter(|candidate| {
                    let dominated = ctx.is_dominated(candidate);
                    if dominated {
                        rpo_obs::counter!("backend.dominated_aborts").inc();
                    }
                    !dominated
                })
                .collect();
            candidates
        })
        .unwrap_or_default()
    }
}

/// Heterogeneous-only strategy: sweeps the Section 7.2 allocator over a
/// geometric ladder of *tightened* period targets. Tighter targets force the
/// allocator towards faster processors, trading reliability for period and
/// populating the Pareto front between the heuristics' extremes.
///
/// Each profile's candidate is probed against the live streaming front
/// ([`SolveContext::is_dominated`]): profiles that are already strictly
/// dominated mid-solve are abandoned instead of carried to the end — sound
/// because dominance only tightens as the front grows.
pub struct HetSweepBackend;

/// Number of period targets swept by [`HetSweepBackend`].
const SWEEP_STEPS: usize = 4;

impl SolverBackend for HetSweepBackend {
    fn name(&self) -> &'static str {
        "Het-Sweep"
    }

    fn applicability(&self, instance: &ProblemInstance, _budget: &Budget) -> Applicability {
        if instance.platform.is_homogeneous() {
            Applicability::Skip(SKIP_HOMOGENEOUS)
        } else {
            Applicability::Applicable
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        let chain = &instance.chain;
        let platform = &instance.platform;
        let constraints = AllocationConstraints::none();

        // Sweep from the tightest conceivable period (largest task on the
        // fastest processor) up to the instance bound (or its finite
        // surrogate).
        let lower = chain.max_task_work() / platform.max_speed();
        let upper = instance.finite_period_bound();
        if lower <= 0.0 || upper < lower {
            return Vec::new();
        }
        // A degenerate sweep (bound exactly at the critical-path floor)
        // still tries that single target.
        let steps = if upper > lower { SWEEP_STEPS } else { 0 };
        let ratio = if steps > 0 {
            (upper / lower).powf(1.0 / steps as f64)
        } else {
            1.0
        };

        let mut candidates = Vec::new();
        for step in 0..=steps {
            let target = lower * ratio.powi(step as i32);
            for num_intervals in 1..=chain.len().min(platform.num_processors()) {
                for partition_fn in [heur_l_partition_with_oracle, heur_p_partition_with_oracle] {
                    let partition = partition_fn(oracle, num_intervals);
                    if let Ok(mapping) = algo_alloc_heterogeneous_with_oracle(
                        oracle,
                        chain,
                        platform,
                        &partition,
                        target,
                        &constraints,
                    ) {
                        let candidate =
                            CandidateMapping::evaluate_with_oracle(self.name(), oracle, mapping);
                        // Abandon profiles the live front already strictly
                        // dominates: they can never enter the final front.
                        if !ctx.is_dominated(&candidate) {
                            candidates.push(candidate);
                        } else {
                            rpo_obs::counter!("backend.dominated_aborts").inc();
                        }
                    }
                }
            }
        }
        candidates
    }
}

/// The Section 5.4 integer linear program, solved by `rpo-lp`.
pub struct IlpBackend;

impl SolverBackend for IlpBackend {
    fn name(&self) -> &'static str {
        "ILP"
    }

    fn applicability(&self, instance: &ProblemInstance, budget: &Budget) -> Applicability {
        if !instance.platform.is_homogeneous() {
            Applicability::Skip(SKIP_HETEROGENEOUS)
        } else if instance.chain.len() > budget.max_ilp_tasks {
            Applicability::Skip(SKIP_TOO_LARGE)
        } else {
            Applicability::Applicable
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        _ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        exact::optimal_by_ilp_with_oracle(
            oracle,
            &instance.chain,
            &instance.platform,
            instance.period_bound,
            instance.latency_bound,
        )
        .map(|solution| {
            vec![CandidateMapping::evaluate_with_oracle(
                self.name(),
                oracle,
                solution.mapping,
            )]
        })
        .unwrap_or_default()
    }
}

/// The certified-optimal exhaustive partition enumeration + Algo-Alloc.
pub struct ExhaustiveBackend;

impl SolverBackend for ExhaustiveBackend {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn applicability(&self, instance: &ProblemInstance, budget: &Budget) -> Applicability {
        let cap = budget
            .max_exhaustive_tasks
            .min(exact::exhaustive::MAX_EXHAUSTIVE_TASKS);
        if !instance.platform.is_homogeneous() {
            Applicability::Skip(SKIP_HETEROGENEOUS)
        } else if instance.chain.len() > cap {
            Applicability::Skip(SKIP_TOO_LARGE)
        } else {
            Applicability::Applicable
        }
    }

    fn solve(
        &self,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        _budget: &Budget,
        _ctx: &mut SolveContext<'_>,
    ) -> Vec<CandidateMapping> {
        exact::optimal_homogeneous_with_oracle(
            oracle,
            &instance.chain,
            &instance.platform,
            instance.period_bound,
            instance.latency_bound,
        )
        .map(|solution| {
            vec![CandidateMapping::evaluate_with_oracle(
                self.name(),
                oracle,
                solution.mapping,
            )]
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_algorithms::DpScratch;
    use rpo_model::{Platform, PlatformBuilder, TaskChain};

    /// Runs a backend with a fresh scratch and no streaming front, the way
    /// unit tests exercise a single adapter.
    fn solve_alone(
        backend: &dyn SolverBackend,
        instance: &ProblemInstance,
        oracle: &IntervalOracle,
        budget: &Budget,
    ) -> Vec<CandidateMapping> {
        let mut scratch = DpScratch::new();
        let mut ctx = SolveContext {
            scratch: &mut scratch,
            front: None,
        };
        backend.solve(instance, oracle, budget, &mut ctx)
    }

    fn hom_instance() -> ProblemInstance {
        let chain =
            TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap();
        let platform = Platform::homogeneous(5, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        ProblemInstance::new(chain, platform, 70.0, 130.0).unwrap()
    }

    fn het_instance() -> ProblemInstance {
        let chain =
            TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap();
        let platform = PlatformBuilder::new()
            .processor(4.0, 1e-3)
            .processor(2.0, 1e-3)
            .processor(1.0, 1e-3)
            .processor(3.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(2)
            .build()
            .unwrap();
        ProblemInstance::new(chain, platform, 50.0, 150.0).unwrap()
    }

    #[test]
    fn applicability_separates_platform_classes() {
        let budget = Budget::default();
        let hom = hom_instance();
        let het = het_instance();
        for backend in default_backends() {
            match backend.name() {
                "Heur-L" | "Heur-P" => {
                    assert!(backend.applicability(&hom, &budget).is_applicable());
                    assert!(backend.applicability(&het, &budget).is_applicable());
                }
                "Het-Sweep" | "Het-Dp" | "Het-Dp-Lat" => {
                    assert!(!backend.applicability(&hom, &budget).is_applicable());
                    assert!(backend.applicability(&het, &budget).is_applicable());
                }
                _ => {
                    assert!(backend.applicability(&hom, &budget).is_applicable());
                    assert!(!backend.applicability(&het, &budget).is_applicable());
                }
            }
        }
    }

    #[test]
    fn size_caps_gate_the_exact_solvers() {
        let chain = TaskChain::from_pairs(&vec![(10.0, 1.0); 16]).unwrap();
        let platform = Platform::homogeneous(4, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        let instance = ProblemInstance::unbounded(chain, platform);
        let budget = Budget::default();
        assert!(!IlpBackend.applicability(&instance, &budget).is_applicable());
        assert!(!ExhaustiveBackend
            .applicability(&instance, &budget)
            .is_applicable());
        assert!(Algo1Backend
            .applicability(&instance, &budget)
            .is_applicable());
    }

    #[test]
    fn heuristic_backends_return_multiple_candidates() {
        let instance = hom_instance();
        let oracle = instance.build_oracle();
        let budget = Budget::default();
        let candidates = solve_alone(&HeuristicBackend::heur_p(), &instance, &oracle, &budget);
        assert!(
            candidates.len() > 1,
            "expected one candidate per interval count"
        );
        for candidate in &candidates {
            assert_eq!(candidate.backend, "Heur-P");
        }
    }

    #[test]
    fn exact_backends_agree_on_the_reliability_optimum() {
        let instance = hom_instance();
        let oracle = instance.build_oracle();
        let budget = Budget::default();
        let exhaustive = solve_alone(&ExhaustiveBackend, &instance, &oracle, &budget);
        let ilp = solve_alone(&IlpBackend, &instance, &oracle, &budget);
        assert_eq!(exhaustive.len(), 1);
        assert_eq!(ilp.len(), 1);
        assert!(
            (exhaustive[0].evaluation.reliability - ilp[0].evaluation.reliability).abs() < 1e-9
        );
    }

    #[test]
    fn het_sweep_produces_period_diverse_candidates() {
        let instance = het_instance();
        let oracle = instance.build_oracle();
        let candidates = solve_alone(&HetSweepBackend, &instance, &oracle, &Budget::default());
        assert!(!candidates.is_empty());
        let min = candidates
            .iter()
            .map(|c| c.evaluation.worst_case_period)
            .fold(f64::INFINITY, f64::min);
        let max = candidates
            .iter()
            .map(|c| c.evaluation.worst_case_period)
            .fold(0.0f64, f64::max);
        assert!(max > min, "sweep should explore different period regimes");
    }

    #[test]
    fn het_dp_dominates_every_period_feasible_sweep_candidate() {
        let instance = het_instance();
        let oracle = instance.build_oracle();
        let budget = Budget::default();
        let dp = solve_alone(&HetDpBackend, &instance, &oracle, &budget);
        assert_eq!(dp.len(), 1, "the class DP returns one exact candidate");
        assert!(dp[0].evaluation.worst_case_period <= instance.period_bound);
        for backend in [
            Box::new(HetSweepBackend) as Box<dyn SolverBackend>,
            Box::new(HeuristicBackend::heur_l()),
            Box::new(HeuristicBackend::heur_p()),
        ] {
            for candidate in solve_alone(backend.as_ref(), &instance, &oracle, &budget) {
                if candidate.evaluation.worst_case_period <= instance.period_bound {
                    assert!(
                        dp[0].evaluation.reliability >= candidate.evaluation.reliability,
                        "{} produced a period-feasible candidate more reliable than the DP",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn het_dp_lat_needs_a_finite_latency_bound() {
        let budget = Budget::default();
        let bounded = het_instance();
        assert!(HetDpLatBackend
            .applicability(&bounded, &budget)
            .is_applicable());
        let mut unbounded = bounded.clone();
        unbounded.latency_bound = f64::INFINITY;
        assert_eq!(
            HetDpLatBackend.applicability(&unbounded, &budget),
            Applicability::Skip(SKIP_NO_LATENCY_BOUND)
        );
    }

    #[test]
    fn het_dp_lat_dominates_every_fully_feasible_candidate() {
        let instance = het_instance();
        let oracle = instance.build_oracle();
        let budget = Budget::default();
        let dp = solve_alone(&HetDpLatBackend, &instance, &oracle, &budget);
        assert_eq!(dp.len(), 1, "the latency DP returns one exact candidate");
        assert!(dp[0].evaluation.worst_case_period <= instance.period_bound);
        assert!(dp[0].evaluation.worst_case_latency <= instance.latency_bound);
        for backend in [
            Box::new(HetSweepBackend) as Box<dyn SolverBackend>,
            Box::new(HeuristicBackend::heur_l()),
            Box::new(HeuristicBackend::heur_p()),
            Box::new(HetDpBackend),
        ] {
            for candidate in solve_alone(backend.as_ref(), &instance, &oracle, &budget) {
                if instance.admits(&candidate.evaluation) {
                    assert!(
                        dp[0].evaluation.reliability >= candidate.evaluation.reliability,
                        "{} produced a fully-feasible candidate more reliable than the \
                         latency DP",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_backed_candidates_match_direct_evaluation() {
        let instance = hom_instance();
        let oracle = instance.build_oracle();
        for candidate in solve_alone(
            &HeuristicBackend::heur_l(),
            &instance,
            &oracle,
            &Budget::default(),
        ) {
            let direct = rpo_model::MappingEvaluation::evaluate(
                &instance.chain,
                &instance.platform,
                &candidate.mapping,
            );
            assert_eq!(candidate.evaluation, direct);
        }
    }
}
