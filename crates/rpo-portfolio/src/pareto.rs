//! Tri-criteria Pareto aggregation of candidate mappings.
//!
//! The paper's three antagonistic criteria order mappings by **reliability**
//! (higher is better), **worst-case period** (lower is better) and
//! **worst-case latency** (lower is better). The [`ParetoFront`] keeps every
//! candidate not dominated under that order, with deterministic tie-breaking
//! between criteria-identical candidates, so merging the same candidate sets
//! always yields the same front regardless of thread scheduling.

use crate::backend::CandidateMapping;
use rpo_model::IntervalOracle;
use std::sync::Mutex;

/// Returns `true` if `a` dominates `b`: no worse on all three criteria and
/// strictly better on at least one.
pub fn dominates(a: &CandidateMapping, b: &CandidateMapping) -> bool {
    let (ar, ap, al) = (
        a.evaluation.reliability,
        a.evaluation.worst_case_period,
        a.evaluation.worst_case_latency,
    );
    let (br, bp, bl) = (
        b.evaluation.reliability,
        b.evaluation.worst_case_period,
        b.evaluation.worst_case_latency,
    );
    ar >= br && ap <= bp && al <= bl && (ar > br || ap < bp || al < bl)
}

/// `true` if the two candidates are identical on all three criteria.
fn criteria_equal(a: &CandidateMapping, b: &CandidateMapping) -> bool {
    a.evaluation.reliability == b.evaluation.reliability
        && a.evaluation.worst_case_period == b.evaluation.worst_case_period
        && a.evaluation.worst_case_latency == b.evaluation.worst_case_latency
}

/// Deterministic preference between criteria-identical candidates: fewer
/// intervals first, then backend name, then the mapping fingerprint.
fn tie_key(candidate: &CandidateMapping) -> (usize, &'static str, u64) {
    (
        candidate.mapping.num_intervals(),
        candidate.backend,
        candidate.fingerprint(),
    )
}

/// The set of mutually non-dominated candidate mappings.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    points: Vec<CandidateMapping>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront { points: Vec::new() }
    }

    /// Builds a front from any candidate collection.
    pub fn from_candidates<I: IntoIterator<Item = CandidateMapping>>(candidates: I) -> Self {
        let mut front = ParetoFront::new();
        for candidate in candidates {
            front.insert(candidate);
        }
        front
    }

    /// Offers a candidate to the front. Returns `true` if it was kept
    /// (i.e. it is not dominated by, nor a tie-break loser against, any
    /// current point).
    pub fn insert(&mut self, candidate: CandidateMapping) -> bool {
        for existing in &self.points {
            if dominates(existing, &candidate) {
                return false;
            }
            if criteria_equal(existing, &candidate) {
                // Deterministic tie-break: keep the smaller key.
                return if tie_key(&candidate) < tie_key(existing) {
                    let position = self
                        .points
                        .iter()
                        .position(|p| criteria_equal(p, &candidate))
                        .expect("existing point found above");
                    self.points[position] = candidate;
                    true
                } else {
                    false
                };
            }
        }
        self.points
            .retain(|existing| !dominates(&candidate, existing));
        self.points.push(candidate);
        true
    }

    /// Merges another front into this one.
    pub fn merge(&mut self, other: ParetoFront) {
        for point in other.points {
            self.insert(point);
        }
    }

    /// The points of the front, sorted by decreasing reliability, then
    /// increasing period, then increasing latency, then the deterministic
    /// tie key. The order (and the content) is independent of insertion
    /// order.
    pub fn points(&self) -> Vec<&CandidateMapping> {
        let mut sorted: Vec<&CandidateMapping> = self.points.iter().collect();
        sorted.sort_by(|a, b| {
            b.evaluation
                .reliability
                .partial_cmp(&a.evaluation.reliability)
                .expect("finite reliabilities")
                .then(
                    a.evaluation
                        .worst_case_period
                        .total_cmp(&b.evaluation.worst_case_period),
                )
                .then(
                    a.evaluation
                        .worst_case_latency
                        .total_cmp(&b.evaluation.worst_case_latency),
                )
                .then_with(|| tie_key(a).cmp(&tie_key(b)))
        });
        sorted
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the front has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most reliable point (first in [`Self::points`] order), if any.
    /// Single pass — no sort or allocation, so it is cheap in batch loops.
    pub fn best_reliability(&self) -> Option<&CandidateMapping> {
        self.points.iter().min_by(|a, b| {
            b.evaluation
                .reliability
                .total_cmp(&a.evaluation.reliability)
                .then(
                    a.evaluation
                        .worst_case_period
                        .total_cmp(&b.evaluation.worst_case_period),
                )
                .then(
                    a.evaluation
                        .worst_case_latency
                        .total_cmp(&b.evaluation.worst_case_latency),
                )
                .then_with(|| tie_key(a).cmp(&tie_key(b)))
        })
    }

    /// The point with the smallest worst-case period, if any.
    pub fn best_period(&self) -> Option<&CandidateMapping> {
        self.points.iter().min_by(|a, b| {
            a.evaluation
                .worst_case_period
                .total_cmp(&b.evaluation.worst_case_period)
                .then_with(|| tie_key(a).cmp(&tie_key(b)))
        })
    }

    /// Whether `candidate` is **strictly dominated** by some current point
    /// (criteria-identical candidates are *not* dominated — the tie-break
    /// may still prefer them). A cheap read-only probe: no insertion, no
    /// eviction.
    pub fn is_dominated(&self, candidate: &CandidateMapping) -> bool {
        self.points
            .iter()
            .any(|existing| dominates(existing, candidate))
    }

    /// Checks the front invariant: no point dominates another. Used by the
    /// test-suite and the examples as a structural assertion.
    pub fn is_mutually_non_dominated(&self) -> bool {
        for (i, a) in self.points.iter().enumerate() {
            for (j, b) in self.points.iter().enumerate() {
                if i != j && dominates(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

/// A thread-safe Pareto front that candidates **stream into** as backends
/// finish, replacing the engine's post-race front rebuild.
///
/// Each offered candidate is first **re-certified** through the instance's
/// shared [`IntervalOracle`]: its evaluation is recomputed by the oracle's
/// exact Eq. 3–9 path (bit-identical to `MappingEvaluation::evaluate`, cheap
/// — no per-boundary exponentials), so every dominance comparison inside the
/// front is made on one consistent evaluator regardless of which backend
/// produced the candidate. [`ParetoFront::insert`] is insertion-order
/// independent (deterministic tie-breaking), so streaming from racing worker
/// threads yields *exactly* the front a sequential batch rebuild would — the
/// workspace property tests assert that equality.
#[derive(Debug, Default)]
pub struct StreamingFront {
    inner: Mutex<ParetoFront>,
}

impl StreamingFront {
    /// An empty streaming front.
    pub fn new() -> Self {
        StreamingFront::default()
    }

    /// Re-certifies `candidate` through `oracle` and offers it to the front.
    /// Returns `true` if it was kept.
    pub fn offer(&self, oracle: &IntervalOracle, mut candidate: CandidateMapping) -> bool {
        candidate.evaluation = oracle.evaluate(&candidate.mapping);
        self.insert(candidate)
    }

    /// Offers an already-certified candidate to the front (the caller has
    /// re-evaluated it through the instance's oracle — the engine does this
    /// *before* its feasibility filter, so the filter and the front judge
    /// one consistent evaluation). Returns `true` if it was kept.
    pub fn insert(&self, candidate: CandidateMapping) -> bool {
        self.inner
            .lock()
            .expect("streaming front lock poisoned")
            .insert(candidate)
    }

    /// Whether `candidate` is already **strictly dominated** by the current
    /// front — a cheap probe (no insertion) for backends that want to
    /// abandon a candidate profile mid-solve.
    ///
    /// Sound to act on at any time: front points are only ever evicted by
    /// points that dominate them, and dominance is transitive, so a
    /// candidate dominated *now* stays dominated in the final front no
    /// matter what else streams in. Skipping it can therefore never change
    /// the front — only save the work of carrying it.
    pub fn is_dominated(&self, candidate: &CandidateMapping) -> bool {
        self.inner
            .lock()
            .expect("streaming front lock poisoned")
            .is_dominated(candidate)
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("streaming front lock poisoned")
            .len()
    }

    /// `true` if no candidate has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the stream and returns the aggregated front.
    pub fn into_front(self) -> ParetoFront {
        self.inner
            .into_inner()
            .expect("streaming front lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CandidateMapping;
    use rpo_model::{Interval, MappedInterval, Mapping, MappingEvaluation, Platform, TaskChain};

    fn fixture() -> (TaskChain, Platform) {
        let chain = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 0.0)]).unwrap();
        let platform = Platform::homogeneous(4, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        (chain, platform)
    }

    /// A candidate with forged criteria (the mapping itself is irrelevant to
    /// the dominance logic).
    fn candidate(
        backend: &'static str,
        reliability: f64,
        period: f64,
        latency: f64,
    ) -> CandidateMapping {
        let (chain, platform) = fixture();
        let mapping = Mapping::new(
            vec![MappedInterval::new(Interval { first: 0, last: 2 }, vec![0])],
            &chain,
            &platform,
        )
        .unwrap();
        CandidateMapping {
            backend,
            mapping,
            evaluation: MappingEvaluation {
                reliability,
                expected_latency: latency,
                worst_case_latency: latency,
                expected_period: period,
                worst_case_period: period,
            },
        }
    }

    #[test]
    fn dominated_points_are_rejected_or_evicted() {
        let mut front = ParetoFront::new();
        assert!(front.insert(candidate("a", 0.9, 10.0, 20.0)));
        // Dominated: worse everywhere.
        assert!(!front.insert(candidate("b", 0.8, 11.0, 21.0)));
        // Dominates the first point: evicts it.
        assert!(front.insert(candidate("c", 0.95, 9.0, 19.0)));
        assert_eq!(front.len(), 1);
        assert_eq!(front.points()[0].backend, "c");
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut front = ParetoFront::new();
        front.insert(candidate("reliable", 0.99, 50.0, 80.0));
        front.insert(candidate("fast", 0.90, 10.0, 80.0));
        front.insert(candidate("low-latency", 0.90, 50.0, 40.0));
        assert_eq!(front.len(), 3);
        assert!(front.is_mutually_non_dominated());
    }

    #[test]
    fn insertion_order_does_not_change_the_front() {
        let candidates = vec![
            candidate("a", 0.9, 10.0, 20.0),
            candidate("b", 0.95, 12.0, 20.0),
            candidate("c", 0.9, 10.0, 18.0),
            candidate("d", 0.85, 9.0, 25.0),
            candidate("e", 0.95, 12.0, 22.0),
        ];
        let forward = ParetoFront::from_candidates(candidates.clone());
        let reversed = ParetoFront::from_candidates(candidates.into_iter().rev());
        let names = |front: &ParetoFront| -> Vec<&'static str> {
            front.points().iter().map(|p| p.backend).collect()
        };
        assert_eq!(names(&forward), names(&reversed));
    }

    #[test]
    fn criteria_ties_break_deterministically() {
        let mut forward = ParetoFront::new();
        forward.insert(candidate("x", 0.9, 10.0, 20.0));
        forward.insert(candidate("y", 0.9, 10.0, 20.0));
        let mut reversed = ParetoFront::new();
        reversed.insert(candidate("y", 0.9, 10.0, 20.0));
        reversed.insert(candidate("x", 0.9, 10.0, 20.0));
        assert_eq!(forward.len(), 1);
        assert_eq!(reversed.len(), 1);
        assert_eq!(forward.points()[0].backend, reversed.points()[0].backend);
    }

    #[test]
    fn accessors_pick_the_extremes() {
        let mut front = ParetoFront::new();
        front.insert(candidate("reliable", 0.99, 50.0, 80.0));
        front.insert(candidate("fast", 0.90, 10.0, 80.0));
        assert_eq!(front.best_reliability().unwrap().backend, "reliable");
        assert_eq!(front.best_period().unwrap().backend, "fast");
    }
}
