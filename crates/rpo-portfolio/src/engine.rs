//! The parallel portfolio engine: races every applicable backend on an
//! instance across worker threads and aggregates their candidates into a
//! Pareto front.

use crate::backend::{Applicability, Budget, ProblemInstance, SolveContext, SolverBackend};
use crate::backends::default_backends;
use crate::cache::{CacheStats, InstanceCache, OracleCache};
use crate::pareto::{ParetoFront, StreamingFront};
use rpo_algorithms::DpScratch;
use rpo_obs::{Counter, Histogram};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How the engine races its backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RaceMode {
    /// Run every applicable backend and merge everything (deterministic
    /// front: the merge order is the fixed backend order, not thread order).
    #[default]
    RunAll,
    /// Stop dispatching new backends once one has produced a feasible
    /// candidate; backends already running still contribute. Lower latency,
    /// but which backends ran depends on timing.
    FirstFeasible,
}

/// What happened to one backend during a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The backend ran to completion.
    Completed,
    /// The backend was not applicable (with the reason).
    Skipped(&'static str),
    /// The time budget expired before the backend was dispatched.
    DeadlineExpired,
    /// First-feasible mode: a winner emerged before this backend started.
    Preempted,
    /// The caller supplied this backend's candidates precomputed (e.g. from
    /// the batched SoA mega-kernel), so the backend was not dispatched; its
    /// candidates were re-certified and merged like a completed run's.
    Precomputed,
}

/// Per-backend outcome of one portfolio solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendRun {
    /// Backend name.
    pub backend: &'static str,
    /// What happened.
    pub status: RunStatus,
    /// Candidates the backend returned.
    pub candidates: usize,
    /// Candidates satisfying the instance bounds.
    pub feasible: usize,
    /// Wall-clock spent inside the backend, in microseconds.
    pub micros: u64,
}

/// The result of one portfolio solve.
#[derive(Debug, Clone, Default)]
pub struct PortfolioOutcome {
    /// The merged Pareto front (only bound-feasible candidates). Shared
    /// with the engine cache, so cache hits never deep-copy mappings.
    pub front: Arc<ParetoFront>,
    /// Per-backend diagnostics, in fixed backend order.
    pub runs: Vec<BackendRun>,
    /// Whether the front came from the instance cache.
    pub from_cache: bool,
    /// Whether the solve's deadline (budget time limit or an explicit
    /// [`PortfolioEngine::solve_until`] deadline) expired before every
    /// runnable backend could be dispatched. An expired solve's front is
    /// *partial* — whatever the backends that did run produced — and is
    /// deliberately not cached, so a later unconstrained solve of the same
    /// instance is not poisoned by it.
    pub deadline_expired: bool,
}

impl PortfolioOutcome {
    /// `true` if at least one feasible mapping was found.
    pub fn is_feasible(&self) -> bool {
        !self.front.is_empty()
    }
}

/// What one worker records for one backend: its slot index, final status,
/// bound-feasible candidate count, raw candidate count, and wall-clock
/// micros. The candidates themselves are not carried here — they stream
/// into the shared [`StreamingFront`] the moment the backend finishes.
type WorkerResult = (usize, RunStatus, usize, usize, u64);

/// A pool of [`DpScratch`] arenas shared across every solve of an engine:
/// the DP-based backends of a batch reuse allocations across *instances*
/// instead of growing fresh arenas per solve. Only allocations are pooled —
/// [`DpScratch::reset`] wipes all admissibility data on release, so no
/// instance ever sees another instance's warm-start state.
pub(crate) struct ScratchPool {
    stack: Mutex<Vec<DpScratch>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ScratchPool {
    pub(crate) fn new(capacity: usize) -> Self {
        ScratchPool {
            stack: Mutex::new(Vec::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Pops a pooled scratch (hit) or allocates a fresh one (miss).
    fn acquire(&self) -> DpScratch {
        let pooled = self.stack.lock().expect("scratch pool lock poisoned").pop();
        match pooled {
            Some(scratch) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                rpo_obs::counter!("cache.scratch.hits").inc();
                scratch
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                rpo_obs::counter!("cache.scratch.misses").inc();
                DpScratch::new()
            }
        }
    }

    /// Returns a scratch to the pool, wiping its instance-specific state
    /// first. Over-capacity arenas are dropped (counted as evictions).
    fn release(&self, mut scratch: DpScratch) {
        scratch.reset();
        let mut stack = self.stack.lock().expect("scratch pool lock poisoned");
        if stack.len() < self.capacity {
            stack.push(scratch);
        } else {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            rpo_obs::counter!("cache.scratch.evictions").inc();
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A reusable, thread-safe portfolio solver.
///
/// The engine owns a set of [`SolverBackend`]s, a [`Budget`], and an LRU
/// instance cache. [`PortfolioEngine::solve`] takes `&self`, so one engine
/// can serve many threads concurrently (the batch driver does exactly that).
pub struct PortfolioEngine {
    backends: Vec<Box<dyn SolverBackend>>,
    budget: Budget,
    mode: RaceMode,
    threads: usize,
    cache: Mutex<InstanceCache>,
    /// Chain-keyed oracle cache: near-duplicate instances (same chain and
    /// platform, different bounds) miss the front cache above but share one
    /// `Arc<IntervalOracle>` here, lifting the interval-metrics
    /// precomputation out of the per-solve path.
    oracles: Mutex<OracleCache>,
    /// DP-arena pool: one scratch per busy worker, reused across the
    /// instances of a batch (allocation reuse only).
    scratch: ScratchPool,
    /// Per-backend registry handles (`backend.solve.<name>` histograms and
    /// `backend.feasible.<name>` counters), resolved once at construction
    /// so the per-run hot path never does a name lookup.
    backend_obs: Vec<BackendObs>,
}

struct BackendObs {
    solve: Histogram,
    feasible: Counter,
}

impl Default for PortfolioEngine {
    fn default() -> Self {
        PortfolioEngine::new(default_backends(), Budget::default())
    }
}

impl PortfolioEngine {
    /// Default cache capacity (solved fronts kept in memory).
    pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

    /// Default oracle-cache capacity (shared interval-metrics kernels kept
    /// in memory; an oracle is O(n + p·classes) floats, far smaller than a
    /// front of mappings).
    pub const DEFAULT_ORACLE_CACHE_CAPACITY: usize = 256;

    /// Default scratch-pool capacity: enough for one busy DP backend per
    /// worker of a wide batch; arenas beyond it are simply dropped.
    pub const DEFAULT_SCRATCH_POOL_CAPACITY: usize = 64;

    /// An engine racing `backends` under `budget`, in [`RaceMode::RunAll`],
    /// with one worker thread per available core.
    pub fn new(backends: Vec<Box<dyn SolverBackend>>, budget: Budget) -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let registry = rpo_obs::global();
        let backend_obs = backends
            .iter()
            .map(|backend| BackendObs {
                solve: registry.histogram(&format!("backend.solve.{}", backend.name())),
                feasible: registry.counter(&format!("backend.feasible.{}", backend.name())),
            })
            .collect();
        PortfolioEngine {
            backends,
            budget,
            mode: RaceMode::RunAll,
            threads,
            cache: Mutex::new(InstanceCache::new(Self::DEFAULT_CACHE_CAPACITY)),
            oracles: Mutex::new(OracleCache::new(Self::DEFAULT_ORACLE_CACHE_CAPACITY)),
            scratch: ScratchPool::new(Self::DEFAULT_SCRATCH_POOL_CAPACITY),
            backend_obs,
        }
    }

    /// Sets the race mode.
    pub fn with_mode(mut self, mode: RaceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the number of worker threads used per solve (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the instance-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Mutex::new(InstanceCache::new(capacity));
        self
    }

    /// Sets the oracle-cache capacity (0 disables oracle sharing across
    /// solves: every solve builds a fresh oracle, as before this cache).
    pub fn with_oracle_cache_capacity(mut self, capacity: usize) -> Self {
        self.oracles = Mutex::new(OracleCache::new(capacity));
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The number of worker threads used per solve.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The backend names, in fixed dispatch order.
    pub fn backend_names(&self) -> Vec<&'static str> {
        self.backends.iter().map(|b| b.name()).collect()
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock poisoned").stats()
    }

    /// Oracle-cache hit/miss counters.
    pub fn oracle_cache_stats(&self) -> CacheStats {
        self.oracles
            .lock()
            .expect("oracle cache lock poisoned")
            .stats()
    }

    /// Scratch-pool counters: hits are backend runs that reused a pooled DP
    /// arena from an earlier solve instead of allocating fresh.
    pub fn scratch_pool_stats(&self) -> CacheStats {
        self.scratch.stats()
    }

    /// Solves one instance: answers from the cache when possible, otherwise
    /// races all applicable backends in parallel and caches the result.
    pub fn solve(&self, instance: &ProblemInstance) -> PortfolioOutcome {
        self.solve_with_threads(instance, self.threads)
    }

    /// [`PortfolioEngine::solve`] with an explicit per-solve worker count,
    /// overriding the engine-wide [`Self::threads`] for this call only. This
    /// is what lets the batch driver pick the thread split *per instance* at
    /// dispatch time: small instances run inline (`threads = 1`, spawn-free)
    /// under wide instance-level parallelism, large ones get backend-level
    /// parallelism.
    pub fn solve_with_threads(
        &self,
        instance: &ProblemInstance,
        threads: usize,
    ) -> PortfolioOutcome {
        self.solve_inner(instance, threads, Vec::new(), None)
    }

    /// [`PortfolioEngine::solve_with_threads`] with externally precomputed
    /// backend results: each `(backend name, candidates)` pair replaces that
    /// backend's dispatch. The precomputed candidates flow through exactly
    /// the same pipeline as a live backend's — re-certified through the
    /// shared oracle, filtered by the instance bounds, merged into the
    /// streaming front — so the portfolio contract (bit-exact reliability,
    /// Pareto front semantics) is unchanged. This is the seam the batch
    /// driver's shape-bucketing uses: the SoA mega-kernel solves the
    /// Algo-1/Algo-2 DP for a whole bucket at once and hands each instance's
    /// lane results here, while every other backend still races normally.
    ///
    /// A backend named with an *empty* candidate list is still suppressed —
    /// that marks "the precomputed path ran this solver and found nothing",
    /// which a rerun could only reproduce.
    pub fn solve_with_precomputed(
        &self,
        instance: &ProblemInstance,
        threads: usize,
        precomputed: Vec<(&'static str, Vec<crate::backend::CandidateMapping>)>,
    ) -> PortfolioOutcome {
        self.solve_inner(instance, threads, precomputed, None)
    }

    /// [`PortfolioEngine::solve_with_threads`] with an explicit wall-clock
    /// deadline for this call, tightening (never loosening) the budget's
    /// time limit. Backends not yet dispatched when the deadline passes are
    /// marked [`RunStatus::DeadlineExpired`] and the outcome's
    /// [`PortfolioOutcome::deadline_expired`] flag is set; the (partial)
    /// front is returned but not cached. This is the serving layer's
    /// entry point: a request's residual deadline maps directly onto it.
    pub fn solve_until(
        &self,
        instance: &ProblemInstance,
        threads: usize,
        deadline: Option<Instant>,
    ) -> PortfolioOutcome {
        self.solve_inner(instance, threads, Vec::new(), deadline)
    }

    /// Resolves the instance's shared interval-metrics oracle through the
    /// chain-keyed cache, building it outside the lock on a miss (concurrent
    /// batch workers must not serialize on construction; a rare duplicate
    /// build is cheaper than a critical section around it).
    pub(crate) fn oracle_for(&self, instance: &ProblemInstance) -> Arc<rpo_model::IntervalOracle> {
        let cached = self
            .oracles
            .lock()
            .expect("oracle cache lock poisoned")
            .get(instance);
        match cached {
            Some(oracle) => oracle,
            None => {
                let oracle = instance.build_oracle();
                self.oracles
                    .lock()
                    .expect("oracle cache lock poisoned")
                    .put(instance, Arc::clone(&oracle));
                oracle
            }
        }
    }

    fn solve_inner(
        &self,
        instance: &ProblemInstance,
        threads: usize,
        precomputed: Vec<(&'static str, Vec<crate::backend::CandidateMapping>)>,
        deadline_override: Option<Instant>,
    ) -> PortfolioOutcome {
        if let Some(front) = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .get(instance)
        {
            return PortfolioOutcome {
                front,
                runs: Vec::new(),
                from_cache: true,
                deadline_expired: false,
            };
        }

        let _solve_span = rpo_obs::span!(
            "engine.solve",
            tasks = instance.chain.len(),
            threads = threads
        );
        let start = Instant::now();
        // Effective deadline: the tighter of the budget's time limit and the
        // caller's explicit deadline (a serve request's residual deadline).
        let deadline = match (
            self.budget.time_limit.map(|limit| start + limit),
            deadline_override,
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };

        // Applicability pass: fixed backend order. Backends whose results
        // arrive precomputed are not dispatched.
        let mut runs: Vec<BackendRun> = self
            .backends
            .iter()
            .map(|backend| {
                let status = if precomputed.iter().any(|(name, _)| *name == backend.name()) {
                    RunStatus::Precomputed
                } else {
                    match backend.applicability(instance, &self.budget) {
                        Applicability::Applicable => RunStatus::Completed, // provisional
                        Applicability::Skip(reason) => RunStatus::Skipped(reason),
                    }
                };
                BackendRun {
                    backend: backend.name(),
                    status,
                    candidates: 0,
                    feasible: 0,
                    micros: 0,
                }
            })
            .collect();
        let runnable: Vec<usize> = (0..self.backends.len())
            .filter(|&i| runs[i].status == RunStatus::Completed)
            .collect();

        // One interval-metrics oracle per instance, shared by every backend —
        // resolved through the chain-keyed cache, so near-duplicate instances
        // (same chain/platform, different bounds) reuse a previous solve's
        // oracle instead of rebuilding the Eq. 5–9 precomputation.
        let oracle = self.oracle_for(instance);

        // Race the runnable backends: worker threads pull indices from a
        // shared queue, so a slow backend never blocks the others. Feasible
        // candidates stream into the shared front the moment each backend
        // finishes (ParetoFront::insert is insertion-order independent, so
        // the front still never depends on thread scheduling).
        let queue = AtomicUsize::new(0);
        let winner_found = AtomicBool::new(false);
        let expired = AtomicBool::new(false);
        let streaming = StreamingFront::new();

        // Seed the front with the precomputed results, through the same
        // re-certify → bound-filter → merge pipeline a live backend's
        // candidates take. Seeding before the race also lets FirstFeasible
        // mode preempt on a precomputed winner.
        for (name, mut candidates) in precomputed {
            let total = candidates.len();
            for candidate in &mut candidates {
                candidate.evaluation = oracle.evaluate(&candidate.mapping);
            }
            candidates.retain(|c| instance.admits(&c.evaluation));
            if !candidates.is_empty() {
                winner_found.store(true, Ordering::Release);
            }
            let feasible = candidates.len();
            if let Some(index) = self.backends.iter().position(|b| b.name() == name) {
                runs[index].candidates = total;
                runs[index].feasible = feasible;
                self.backend_obs[index].feasible.add(feasible as u64);
            }
            for candidate in candidates {
                streaming.insert(candidate);
            }
        }
        let results: Mutex<Vec<WorkerResult>> = Mutex::new(Vec::with_capacity(runnable.len()));
        let workers = threads.max(1).min(runnable.len().max(1));

        let worker = || {
            // One pooled DP scratch per worker, reused across every backend
            // this worker runs, and returned to the pool (reset) at the end.
            let mut scratch = self.scratch.acquire();
            loop {
                // Deadline check *before* dequeuing the next slot: when the
                // budget expires mid-backend, the worker returning from that
                // backend latches the expiry here, so every undispatched slot
                // — including ones other workers are about to pull — is shed
                // promptly and reported instead of silently starting late.
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    expired.store(true, Ordering::Release);
                }
                let slot = queue.fetch_add(1, Ordering::Relaxed);
                let Some(&index) = runnable.get(slot) else {
                    break;
                };
                let backend = &self.backends[index];

                let outcome = if self.mode == RaceMode::FirstFeasible
                    && winner_found.load(Ordering::Acquire)
                {
                    (RunStatus::Preempted, 0, 0, 0)
                } else if expired.load(Ordering::Acquire)
                    || deadline.is_some_and(|d| Instant::now() >= d)
                {
                    expired.store(true, Ordering::Release);
                    (RunStatus::DeadlineExpired, 0, 0, 0)
                } else {
                    let backend_span = rpo_obs::recorder().span_fields("backend.solve", || {
                        vec![("backend".to_string(), backend.name().into())]
                    });
                    let backend_start = Instant::now();
                    let mut ctx = SolveContext {
                        scratch: &mut scratch,
                        front: Some(&streaming),
                    };
                    let mut candidates = backend.solve(instance, &oracle, &self.budget, &mut ctx);
                    let elapsed = backend_start.elapsed();
                    drop(backend_span);
                    self.backend_obs[index].solve.record(elapsed);
                    let micros = elapsed.as_micros() as u64;
                    let total = candidates.len();
                    // Re-certify through the shared oracle *before* the
                    // bound filter, so feasibility and front dominance judge
                    // one consistent evaluation (a backend's own evaluation
                    // could differ by an ulp around a bound).
                    for candidate in &mut candidates {
                        candidate.evaluation = oracle.evaluate(&candidate.mapping);
                    }
                    candidates.retain(|c| instance.admits(&c.evaluation));
                    if !candidates.is_empty() {
                        winner_found.store(true, Ordering::Release);
                    }
                    let feasible = candidates.len();
                    self.backend_obs[index].feasible.add(feasible as u64);
                    for candidate in candidates {
                        streaming.insert(candidate);
                    }
                    (RunStatus::Completed, feasible, total, micros)
                };
                let (run_status, feasible, total, micros) = outcome;
                results
                    .lock()
                    .expect("result lock poisoned")
                    .push((index, run_status, feasible, total, micros));
            }
            self.scratch.release(scratch);
        };
        if workers <= 1 {
            // Single-worker solves run inline on the calling thread: a batch
            // driver racing many instances across its own workers must not
            // pay a thread spawn per backend of every solve.
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        for (index, status, feasible, total, micros) in
            results.into_inner().expect("result lock poisoned")
        {
            runs[index].status = status;
            runs[index].feasible = feasible;
            runs[index].candidates = total;
            runs[index].micros = micros;
        }

        let deadline_expired = expired.load(Ordering::Acquire)
            || runs
                .iter()
                .any(|run| run.status == RunStatus::DeadlineExpired);
        let front = Arc::new(streaming.into_front());
        if deadline_expired {
            // A deadline-expired front is partial: caching it would poison
            // later unconstrained solves (and coalesced duplicate requests in
            // the serving layer) with whatever subset of backends happened to
            // finish in time.
            rpo_obs::counter!("engine.deadline_expired").inc();
        } else {
            self.cache
                .lock()
                .expect("cache lock poisoned")
                .put(instance, Arc::clone(&front));
        }
        PortfolioOutcome {
            front,
            runs,
            from_cache: false,
            deadline_expired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{Platform, TaskChain};

    fn instance() -> ProblemInstance {
        let chain =
            TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap();
        let platform = Platform::homogeneous(5, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap();
        ProblemInstance::new(chain, platform, 70.0, 130.0).unwrap()
    }

    #[test]
    fn solve_produces_a_non_dominated_feasible_front() {
        let engine = PortfolioEngine::default();
        let outcome = engine.solve(&instance());
        assert!(outcome.is_feasible());
        assert!(outcome.front.is_mutually_non_dominated());
        for point in outcome.front.points() {
            assert!(point.evaluation.worst_case_period <= 70.0 + 1e-9);
            assert!(point.evaluation.worst_case_latency <= 130.0 + 1e-9);
        }
        // The exhaustive backend ran, so the front's best reliability is the
        // certified optimum.
        let exact = rpo_algorithms::exact::optimal_homogeneous(
            &instance().chain,
            &instance().platform,
            70.0,
            130.0,
        )
        .unwrap();
        let best = outcome.front.best_reliability().unwrap();
        assert!((best.evaluation.reliability - exact.reliability).abs() < 1e-12);
    }

    #[test]
    fn repeated_solves_hit_the_cache_and_agree() {
        let engine = PortfolioEngine::default();
        let first = engine.solve(&instance());
        let second = engine.solve(&instance());
        assert!(!first.from_cache);
        assert!(second.from_cache);
        let criteria = |outcome: &PortfolioOutcome| -> Vec<(f64, f64, f64)> {
            outcome
                .front
                .points()
                .iter()
                .map(|p| {
                    (
                        p.evaluation.reliability,
                        p.evaluation.worst_case_period,
                        p.evaluation.worst_case_latency,
                    )
                })
                .collect()
        };
        assert_eq!(criteria(&first), criteria(&second));
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn runs_report_skips_with_reasons() {
        let engine = PortfolioEngine::default();
        let outcome = engine.solve(&instance());
        // On a homogeneous platform the heterogeneous sweep must be skipped.
        let het = outcome
            .runs
            .iter()
            .find(|r| r.backend == "Het-Sweep")
            .unwrap();
        assert!(matches!(het.status, RunStatus::Skipped(_)));
        let completed = outcome
            .runs
            .iter()
            .filter(|r| r.status == RunStatus::Completed)
            .count();
        assert!(
            completed >= 5,
            "expected at least five backends to run, got {completed}"
        );
    }

    #[test]
    fn first_feasible_mode_still_returns_a_valid_front() {
        let engine = PortfolioEngine::default().with_mode(RaceMode::FirstFeasible);
        let outcome = engine.solve(&instance());
        assert!(outcome.is_feasible());
        assert!(outcome.front.is_mutually_non_dominated());
    }

    #[test]
    fn near_duplicate_instances_share_one_oracle() {
        let engine = PortfolioEngine::default();
        let base = instance();
        let mut tighter = base.clone();
        tighter.period_bound = 60.0;
        let first = engine.solve(&base);
        let second = engine.solve(&tighter);
        // Different bounds: the front cache misses, the oracle cache hits.
        assert!(!first.from_cache && !second.from_cache);
        let stats = engine.oracle_cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        // Both fronts are valid for their own bounds.
        for point in second.front.points() {
            assert!(point.evaluation.worst_case_period <= 60.0 + 1e-9);
        }
    }

    #[test]
    fn disabled_oracle_cache_builds_fresh_oracles() {
        let engine = PortfolioEngine::default().with_oracle_cache_capacity(0);
        let base = instance();
        let mut tighter = base.clone();
        tighter.period_bound = 60.0;
        let a = engine.solve(&base);
        let b = engine.solve(&tighter);
        assert!(a.is_feasible() && b.is_feasible());
        assert_eq!(engine.oracle_cache_stats().hits, 0);
    }

    #[test]
    fn single_threaded_and_parallel_solves_agree() {
        let sequential = PortfolioEngine::default().with_threads(1);
        let parallel = PortfolioEngine::default().with_threads(8);
        let a = sequential.solve(&instance());
        let b = parallel.solve(&instance());
        let keys = |outcome: &PortfolioOutcome| -> Vec<(u64, &'static str)> {
            outcome
                .front
                .points()
                .iter()
                .map(|p| (p.fingerprint(), p.backend))
                .collect()
        };
        assert_eq!(keys(&a), keys(&b));
    }
}
