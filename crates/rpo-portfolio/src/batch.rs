//! The batch driver: streams thousands of generated instances through the
//! portfolio engine across worker threads and reports throughput and
//! per-backend win rates.

use crate::backend::ProblemInstance;
use crate::cache::CacheStats;
use crate::engine::{PortfolioEngine, RunStatus};
use rpo_workload::ExperimentInstance;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the real-time bounds of a streamed instance are derived from its
/// chain and platform (the paper sets absolute bounds; relative slacks keep
/// a comparable feasibility mix across random instances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsPolicy {
    /// Worst-case period bound = `slack × max_i w_i / s_max`.
    pub period_slack: f64,
    /// Worst-case latency bound = `slack × W / s_max`.
    pub latency_slack: f64,
}

impl Default for BoundsPolicy {
    fn default() -> Self {
        BoundsPolicy {
            period_slack: 1.5,
            latency_slack: 1.2,
        }
    }
}

impl BoundsPolicy {
    /// Unbounded instances (pure reliability optimization).
    pub fn unbounded() -> Self {
        BoundsPolicy {
            period_slack: f64::INFINITY,
            latency_slack: f64::INFINITY,
        }
    }

    /// Builds the portfolio instance for one generated experiment instance.
    pub fn instance(
        &self,
        experiment: &ExperimentInstance,
        heterogeneous: bool,
    ) -> ProblemInstance {
        let platform = if heterogeneous {
            &experiment.heterogeneous
        } else {
            &experiment.homogeneous
        };
        let speed = platform.max_speed();
        let period_bound = self.period_slack * experiment.chain.max_task_work() / speed;
        let latency_bound = self.latency_slack * experiment.chain.total_work() / speed;
        ProblemInstance {
            chain: experiment.chain.clone(),
            platform: platform.clone(),
            period_bound,
            latency_bound,
        }
    }
}

/// Batch driver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Thread budget for the batch. The driver divides it by the engine's
    /// per-solve thread count, so instance-level and backend-level
    /// parallelism compose without oversubscribing the machine.
    pub workers: usize,
    /// Bound derivation policy.
    pub bounds: BoundsPolicy,
    /// Solve each instance on its heterogeneous platform instead of the
    /// homogeneous one.
    pub heterogeneous: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            bounds: BoundsPolicy::default(),
            heterogeneous: false,
        }
    }
}

/// Aggregated statistics for one backend across a batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Backend name.
    pub backend: String,
    /// Instances on which the backend completed.
    pub runs: usize,
    /// Instances where the backend produced the winning (most reliable)
    /// front point.
    pub wins: usize,
    /// Total Pareto points contributed across all instances.
    pub front_points: usize,
    /// Total wall-clock spent inside the backend, in microseconds.
    pub total_micros: u64,
}

impl BackendStats {
    /// Win rate over the instances this backend ran on.
    pub fn win_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.wins as f64 / self.runs as f64
        }
    }
}

/// The report of one batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Instances streamed.
    pub instances: usize,
    /// Instances with at least one feasible mapping.
    pub feasible_instances: usize,
    /// Instances answered from the engine cache.
    pub cache_answered: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// Per-backend statistics, sorted by wins then name.
    pub backend_stats: Vec<BackendStats>,
    /// Front-cache counters after the batch.
    pub cache: CacheStats,
    /// Oracle-cache counters after the batch: hits are solves that reused a
    /// previous instance's interval-metrics kernel (same chain and platform,
    /// possibly different bounds).
    pub oracle_cache: CacheStats,
}

impl BatchReport {
    /// Instances solved per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds > 0.0 {
            self.instances as f64 / seconds
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} instances in {:.2?} ({:.1} instances/sec), {} feasible, {} from cache",
            self.instances,
            self.elapsed,
            self.throughput(),
            self.feasible_instances,
            self.cache_answered,
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_ratio(),
            self.cache.evictions,
        )?;
        writeln!(
            f,
            "oracle cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
            self.oracle_cache.hits,
            self.oracle_cache.misses,
            100.0 * self.oracle_cache.hit_ratio(),
            self.oracle_cache.evictions,
        )?;
        writeln!(
            f,
            "{:<12} {:>6} {:>6} {:>9} {:>13} {:>11}",
            "backend", "runs", "wins", "win-rate", "front-points", "time"
        )?;
        for stats in &self.backend_stats {
            writeln!(
                f,
                "{:<12} {:>6} {:>6} {:>8.1}% {:>13} {:>9.1}ms",
                stats.backend,
                stats.runs,
                stats.wins,
                100.0 * stats.win_rate(),
                stats.front_points,
                stats.total_micros as f64 / 1e3,
            )?;
        }
        Ok(())
    }
}

/// Streams instances through a [`PortfolioEngine`] with a pool of worker
/// threads pulling from a shared queue.
#[derive(Default)]
pub struct BatchDriver {
    config: BatchConfig,
}

impl BatchDriver {
    /// A driver with the given configuration.
    pub fn new(config: BatchConfig) -> Self {
        BatchDriver { config }
    }

    /// Runs every instance of `stream` through `engine` and aggregates the
    /// per-backend statistics. The stream is consumed lazily — instances
    /// are generated one at a time as workers become free, so arbitrarily
    /// long batches run in O(workers) memory.
    pub fn run<I>(&self, engine: &PortfolioEngine, stream: I) -> BatchReport
    where
        I: IntoIterator<Item = ExperimentInstance>,
        I::IntoIter: Send,
    {
        let bounds = self.config.bounds;
        let heterogeneous = self.config.heterogeneous;
        self.drive(
            engine,
            stream
                .into_iter()
                .map(move |experiment| bounds.instance(&experiment, heterogeneous)),
        )
    }

    /// Like [`BatchDriver::run`], for pre-built portfolio instances.
    pub fn run_instances(
        &self,
        engine: &PortfolioEngine,
        instances: Vec<ProblemInstance>,
    ) -> BatchReport {
        self.drive(engine, instances.into_iter())
    }

    /// The shared worker loop: threads pull the next instance from the
    /// mutex-guarded iterator (held only while generating one instance),
    /// solve it, and fold their local tallies at the end.
    fn drive<J>(&self, engine: &PortfolioEngine, instances: J) -> BatchReport
    where
        J: Iterator<Item = ProblemInstance> + Send,
    {
        let start = Instant::now();
        // Divide the thread budget between instance-level parallelism
        // (workers here) and backend-level parallelism (engine threads).
        let workers = (self.config.workers / engine.threads().max(1)).max(1);
        let source = Mutex::new(instances);

        #[derive(Default)]
        struct Tally {
            count: usize,
            feasible: usize,
            cache_answered: usize,
            stats: HashMap<&'static str, BackendStats>,
        }

        let tally: Mutex<Tally> = Mutex::new(Tally::default());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Tally::default();
                    loop {
                        let Some(instance) =
                            source.lock().expect("instance stream lock poisoned").next()
                        else {
                            break;
                        };
                        local.count += 1;
                        let outcome = engine.solve(&instance);
                        if outcome.is_feasible() {
                            local.feasible += 1;
                        }
                        if outcome.from_cache {
                            local.cache_answered += 1;
                            continue; // per-backend stats were counted once
                        }
                        let winner = outcome.front.best_reliability().map(|p| p.backend);
                        for run in &outcome.runs {
                            if run.status != RunStatus::Completed {
                                continue;
                            }
                            let entry =
                                local
                                    .stats
                                    .entry(run.backend)
                                    .or_insert_with(|| BackendStats {
                                        backend: run.backend.to_string(),
                                        ..BackendStats::default()
                                    });
                            entry.runs += 1;
                            entry.total_micros += run.micros;
                            if winner == Some(run.backend) {
                                entry.wins += 1;
                            }
                        }
                        for point in outcome.front.points() {
                            if let Some(entry) = local.stats.get_mut(point.backend) {
                                entry.front_points += 1;
                            }
                        }
                    }
                    // Fold the worker-local tally into the shared one.
                    let mut shared = tally.lock().expect("tally lock poisoned");
                    shared.count += local.count;
                    shared.feasible += local.feasible;
                    shared.cache_answered += local.cache_answered;
                    for (name, stats) in local.stats {
                        let entry = shared.stats.entry(name).or_insert_with(|| BackendStats {
                            backend: stats.backend.clone(),
                            ..BackendStats::default()
                        });
                        entry.runs += stats.runs;
                        entry.wins += stats.wins;
                        entry.front_points += stats.front_points;
                        entry.total_micros += stats.total_micros;
                    }
                });
            }
        });

        let tally = tally.into_inner().expect("tally lock poisoned");
        let mut backend_stats: Vec<BackendStats> = tally.stats.into_values().collect();
        backend_stats.sort_by(|a, b| b.wins.cmp(&a.wins).then_with(|| a.backend.cmp(&b.backend)));

        BatchReport {
            instances: tally.count,
            feasible_instances: tally.feasible,
            cache_answered: tally.cache_answered,
            elapsed: start.elapsed(),
            backend_stats,
            cache: engine.cache_stats(),
            oracle_cache: engine.oracle_cache_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_workload::InstanceGenerator;

    #[test]
    fn small_batch_reports_consistent_counts() {
        let engine = PortfolioEngine::default().with_threads(1);
        let driver = BatchDriver::new(BatchConfig {
            workers: 2,
            bounds: BoundsPolicy::default(),
            heterogeneous: false,
        });
        let generator = InstanceGenerator::paper_homogeneous(2024);
        let report = driver.run(&engine, generator.stream(12));
        assert_eq!(report.instances, 12);
        assert!(
            report.feasible_instances > 0,
            "paper-style instances should be solvable"
        );
        assert!(report.throughput() > 0.0);
        let total_wins: usize = report.backend_stats.iter().map(|s| s.wins).sum();
        assert_eq!(
            total_wins,
            report.feasible_instances - report.cache_answered
        );
    }

    #[test]
    fn duplicate_instances_are_answered_by_the_cache() {
        let engine = PortfolioEngine::default().with_threads(1);
        let driver = BatchDriver::new(BatchConfig {
            workers: 1,
            ..BatchConfig::default()
        });
        let generator = InstanceGenerator::paper_homogeneous(7);
        let mut instances: Vec<ExperimentInstance> = generator.batch(3);
        instances.extend(generator.batch(3)); // same three again
        let report = driver.run(&engine, instances);
        assert_eq!(report.instances, 6);
        assert_eq!(report.cache_answered, 3);
        assert_eq!(report.cache.hits, 3);
    }

    #[test]
    fn heterogeneous_batches_use_the_heterogeneous_platform() {
        let engine = PortfolioEngine::default().with_threads(1);
        let driver = BatchDriver::new(BatchConfig {
            workers: 2,
            bounds: BoundsPolicy {
                period_slack: 3.0,
                latency_slack: 2.0,
            },
            heterogeneous: true,
        });
        let generator = InstanceGenerator::paper_heterogeneous(11);
        let report = driver.run(&engine, generator.stream(6));
        assert_eq!(report.instances, 6);
        // The heterogeneous-only backend must have run.
        assert!(report
            .backend_stats
            .iter()
            .any(|s| s.backend == "Het-Sweep" && s.runs > 0));
        // The homogeneous-only exact solvers must not have.
        assert!(report
            .backend_stats
            .iter()
            .all(|s| s.backend != "Exhaustive"));
    }
}
