//! The batch driver: streams thousands of generated instances through the
//! portfolio engine across worker threads and reports throughput and
//! per-backend win rates.

use crate::backend::{CandidateMapping, ProblemInstance};
use crate::cache::CacheStats;
use crate::engine::{PortfolioEngine, PortfolioOutcome, RunStatus};
use rpo_algorithms::{solve_batch, BatchLane, BatchScratch, LANES};
use rpo_model::{CanonicalHasher, IntervalOracle};
use rpo_obs::MetricsSnapshot;
use rpo_workload::ExperimentInstance;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the real-time bounds of a streamed instance are derived from its
/// chain and platform (the paper sets absolute bounds; relative slacks keep
/// a comparable feasibility mix across random instances).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsPolicy {
    /// Worst-case period bound = `slack × max_i w_i / s_max`.
    pub period_slack: f64,
    /// Worst-case latency bound = `slack × W / s_max`.
    pub latency_slack: f64,
}

impl Default for BoundsPolicy {
    fn default() -> Self {
        BoundsPolicy {
            period_slack: 1.5,
            latency_slack: 1.2,
        }
    }
}

impl BoundsPolicy {
    /// Unbounded instances (pure reliability optimization).
    pub fn unbounded() -> Self {
        BoundsPolicy {
            period_slack: f64::INFINITY,
            latency_slack: f64::INFINITY,
        }
    }

    /// Builds the portfolio instance for one generated experiment instance.
    pub fn instance(
        &self,
        experiment: &ExperimentInstance,
        heterogeneous: bool,
    ) -> ProblemInstance {
        let platform = if heterogeneous {
            &experiment.heterogeneous
        } else {
            &experiment.homogeneous
        };
        let speed = platform.max_speed();
        let period_bound = self.period_slack * experiment.chain.max_task_work() / speed;
        let latency_bound = self.latency_slack * experiment.chain.total_work() / speed;
        ProblemInstance {
            chain: experiment.chain.clone(),
            platform: platform.clone(),
            period_bound,
            latency_bound,
        }
    }
}

/// How the driver divides its thread budget between instance-level and
/// per-solve (backend-level) parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSplit {
    /// Fixed division: worker count = `workers / engine.threads()`, every
    /// solve uses the engine's per-solve thread count. (The pre-adaptive
    /// behavior.)
    Static,
    /// Decided **per instance at dispatch time**: instances whose DP volume
    /// `n² · p` is at most the threshold solve inline single-threaded
    /// (spawn-free) under full instance-level width; larger instances get
    /// the engine's per-solve parallelism instead. Small instances dominate
    /// paper-scale batches, so this recovers the wide `threads(1)`
    /// configuration automatically while still parallelizing the occasional
    /// big solve. Concurrent deep solves are bounded by permits
    /// (`workers / engine.threads()`), so a batch of *only* large instances
    /// degrades to roughly the static division instead of oversubscribing.
    Adaptive {
        /// Largest `n² · p` still considered a small instance.
        small_volume: usize,
    },
}

impl Default for ThreadSplit {
    /// Adaptive, with the cutover placed between paper-scale instances
    /// (`15² · 10 ≈ 2×10³`) and the bench's large ones (`100² · 20 = 2×10⁵`).
    fn default() -> Self {
        ThreadSplit::Adaptive {
            small_volume: 100_000,
        }
    }
}

/// Batch driver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Thread budget for the batch. How it is divided between instance-level
    /// and per-solve parallelism is decided by [`BatchConfig::split`].
    pub workers: usize,
    /// Bound derivation policy.
    pub bounds: BoundsPolicy,
    /// Solve each instance on its heterogeneous platform instead of the
    /// homogeneous one.
    pub heterogeneous: bool,
    /// Thread-split policy (static division vs per-instance adaptive).
    pub split: ThreadSplit,
    /// Shape-bucket the ingress stream through the batched SoA mega-kernel:
    /// homogeneous instances of the same `(n, p, k_max, class signature)`
    /// shape are grouped and their Algo-1/Algo-2 DP runs in lockstep, one
    /// instance per SIMD lane; every other backend still races per instance
    /// ([`PortfolioEngine::solve_with_precomputed`]). Heterogeneous or
    /// otherwise ineligible instances take the per-instance path as the
    /// remainder loop. Off by default: bucketing pays off on streams with
    /// many same-shape instances, and delays answers until a bucket fills
    /// (or the stream ends).
    pub bucketed: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            bounds: BoundsPolicy::default(),
            heterogeneous: false,
            split: ThreadSplit::default(),
            bucketed: false,
        }
    }
}

/// Aggregated statistics for one backend across a batch.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BackendStats {
    /// Backend name.
    pub backend: String,
    /// Instances on which the backend completed.
    pub runs: usize,
    /// Instances where the backend produced the winning (most reliable)
    /// front point.
    pub wins: usize,
    /// Total Pareto points contributed across all instances.
    pub front_points: usize,
    /// Total wall-clock spent inside the backend, in microseconds.
    pub total_micros: u64,
}

impl BackendStats {
    /// Win rate over the instances this backend ran on.
    pub fn win_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.wins as f64 / self.runs as f64
        }
    }
}

/// The report of one batch run. Fully serde-serializable, so runs can be
/// exported with `--report-json` and diffed machine-to-machine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BatchReport {
    /// Instances streamed.
    pub instances: usize,
    /// Instances with at least one feasible mapping.
    pub feasible_instances: usize,
    /// Instances answered from the engine cache.
    pub cache_answered: usize,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
    /// Per-backend statistics, sorted by wins then name.
    pub backend_stats: Vec<BackendStats>,
    /// Front-cache counters after the batch.
    pub cache: CacheStats,
    /// Oracle-cache counters after the batch: hits are solves that reused a
    /// previous instance's interval-metrics kernel (same chain and platform,
    /// possibly different bounds).
    pub oracle_cache: CacheStats,
    /// Scratch-pool counters after the batch: hits are backend runs that
    /// reused a pooled DP arena from an earlier instance (allocation reuse
    /// only; admissibility data stays per-instance).
    pub scratch_pool: CacheStats,
    /// Instances the adaptive split solved inline single-threaded under
    /// wide instance-level parallelism — small instances, plus large ones
    /// that found all deep permits taken (0 under [`ThreadSplit::Static`]).
    pub wide_solves: usize,
    /// Instances the adaptive split handed per-solve parallelism
    /// (0 under [`ThreadSplit::Static`]).
    pub deep_solves: usize,
    /// Peak number of concurrently committed solver threads across the
    /// batch (each in-flight solve counts its per-solve thread width).
    /// Adaptive deep solves are sized by the live commitment at dispatch
    /// ([`deep_solve_width`]), so a deep solve dispatched into a busy batch
    /// only ever receives the idle capacity — the peak stays below
    /// `2 × workers` (exactly: `2 × workers − permits`) regardless of the
    /// engine's configured per-solve thread count, and transient spikes
    /// shrink towards `workers` as the batch fills up.
    pub max_committed_threads: usize,
    /// Shape buckets dispatched through the SoA mega-kernel — full
    /// `LANES`-wide buckets plus the partial ones flushed at stream end
    /// (0 when bucketing is off).
    #[serde(default)]
    pub buckets_dispatched: usize,
    /// Instances answered through a mega-kernel bucket.
    #[serde(default)]
    pub bucketed_instances: usize,
    /// Bucketed instances that ran as *padded* lanes — shorter than their
    /// bucket's longest instance under the near-shape `(p, K)` bucketing,
    /// so part of their DP arena was dead rows. The honest occupancy
    /// companion to `batch.lane_occupancy`: a full 8-lane bucket with 5
    /// padded lanes did real work in all 8 lanes but wasted arena slack
    /// proportional to the length spread.
    #[serde(default)]
    pub padded_lanes: usize,
    /// Bucketing-ineligible instances (heterogeneous platform, out-of-range
    /// shape) routed down the per-instance portfolio path while bucketing
    /// was on.
    #[serde(default)]
    pub remainder_solves: usize,
    /// The global metrics recorded *during this batch* (the registry delta
    /// between batch start and end): per-backend solve-time histograms,
    /// cache counters, queue-wait vs solve-time split, solver-layer
    /// counters. Empty when observability is disabled.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
}

/// Width of a deep solve dispatched while `committed` solver threads are
/// already live across the batch: the engine's per-solve thread count,
/// shrunk to the idle capacity `workers − committed` (plus the dispatching
/// worker's own slot), never below an inline solve. Sizing by the *live*
/// commitment — instead of handing every deep solve the full per-solve
/// width — bounds the batch's transient oversubscription: a deep solve
/// dispatched into a busy batch degrades towards an inline solve instead of
/// stacking a full thread team on top of the busy workers.
pub(crate) fn deep_solve_width(deep_threads: usize, workers: usize, committed: usize) -> usize {
    deep_threads
        .min(workers.saturating_sub(committed) + 1)
        .max(1)
}

/// Worker-local batch accounting, folded into the shared tally at the end.
#[derive(Default)]
struct Tally {
    count: usize,
    feasible: usize,
    cache_answered: usize,
    wide: usize,
    deep: usize,
    buckets: usize,
    bucketed: usize,
    padded: usize,
    remainder: usize,
    stats: HashMap<&'static str, BackendStats>,
}

/// Folds one solve's outcome into the worker-local tally (feasibility,
/// cache answers, per-backend runs/wins/front points). Shared by the
/// per-instance path and the bucketed mega-kernel path, so both modes
/// account identically.
fn record_outcome(local: &mut Tally, outcome: &PortfolioOutcome) {
    if outcome.is_feasible() {
        local.feasible += 1;
    }
    if outcome.from_cache {
        local.cache_answered += 1;
        return; // per-backend stats were counted once
    }
    let winner = outcome.front.best_reliability().map(|p| p.backend);
    for run in &outcome.runs {
        // Precomputed runs carry the mega-kernel's candidates for this
        // backend: same results, different executor — counted like a
        // completed run so win rates stay comparable across modes.
        if !matches!(run.status, RunStatus::Completed | RunStatus::Precomputed) {
            continue;
        }
        let entry = local
            .stats
            .entry(run.backend)
            .or_insert_with(|| BackendStats {
                backend: run.backend.to_string(),
                ..BackendStats::default()
            });
        entry.runs += 1;
        entry.total_micros += run.micros;
        if winner == Some(run.backend) {
            entry.wins += 1;
            rpo_obs::global()
                .counter(&format!("backend.win.{}", run.backend))
                .inc();
        }
    }
    for point in outcome.front.points() {
        if let Some(entry) = local.stats.get_mut(point.backend) {
            entry.front_points += 1;
        }
    }
}

/// The mega-kernel shape key of an instance, or `None` when it must take
/// the per-instance remainder path. Eligible instances are homogeneous and
/// within the kernel's packed-traceback ranges; the key hashes the
/// **near-shape** `(p, k_max)` plus the platform-class signature (always
/// one class here) — the task count is deliberately left out, because the
/// kernel pads shorter lanes to the bucket's longest instance (NaN-masked
/// dead rows), so mixed-`n` streams still fill `LANES`-wide buckets instead
/// of fragmenting into one bucket per length. Work/failure/speed numerics
/// are free to differ per lane as before.
fn bucket_key(instance: &ProblemInstance) -> Option<u64> {
    if !instance.platform.is_homogeneous() {
        return None;
    }
    let n = instance.chain.len();
    let p = instance.platform.num_processors();
    let k_max = instance.platform.max_replication().min(p);
    if n == 0 || n >= (1 << 24) || k_max > 0xFF {
        return None;
    }
    let mut hasher = CanonicalHasher::new();
    hasher.write_usize(p);
    hasher.write_usize(k_max);
    hasher.write_usize(1); // class signature: homogeneous = one class
    Some(hasher.finish())
}

/// Dispatches one shape bucket: the SoA mega-kernel solves the Algo-1 DP
/// (all lanes unbounded) and, where period bounds are finite, the Algo-2 DP
/// (actual per-lane bounds) for every instance at once; each instance then
/// finishes through [`PortfolioEngine::solve_with_precomputed`], which
/// re-certifies the lane results and races the remaining backends.
fn solve_bucket(
    engine: &PortfolioEngine,
    instances: &[ProblemInstance],
    scratch: &mut BatchScratch,
    local: &mut Tally,
) {
    rpo_obs::counter!("dp.batch.buckets").inc();
    local.buckets += 1;
    // Near-shape accounting: lanes shorter than the bucket's longest
    // instance run padded in the kernel.
    let n_max = instances
        .iter()
        .map(|inst| inst.chain.len())
        .max()
        .unwrap_or(0);
    local.padded += instances
        .iter()
        .filter(|inst| inst.chain.len() < n_max)
        .count();
    let oracles: Vec<Arc<IntervalOracle>> = instances
        .iter()
        .map(|inst| engine.oracle_for(inst))
        .collect();

    // Algo-1 pass: the unconstrained reliability DP on every lane.
    let lanes: Vec<BatchLane> = instances
        .iter()
        .zip(&oracles)
        .map(|(inst, oracle)| BatchLane {
            oracle,
            chain: &inst.chain,
            platform: &inst.platform,
            period_bound: None,
        })
        .collect();
    let mut algo1 = solve_batch(&lanes, scratch).into_iter();

    // Algo-2 pass: the period-bounded DP, only for lanes with a finite
    // bound (matching the Algo-2 backend's applicability gate). Lanes
    // without one would just repeat the Algo-1 result.
    let any_bounded = instances.iter().any(|inst| inst.period_bound.is_finite());
    let mut algo2 = if any_bounded {
        let lanes: Vec<BatchLane> = instances
            .iter()
            .zip(&oracles)
            .map(|(inst, oracle)| BatchLane {
                oracle,
                chain: &inst.chain,
                platform: &inst.platform,
                period_bound: inst.period_bound.is_finite().then_some(inst.period_bound),
            })
            .collect();
        solve_batch(&lanes, scratch)
    } else {
        vec![None; instances.len()]
    }
    .into_iter();

    for (instance, oracle) in instances.iter().zip(&oracles) {
        let mut precomputed: Vec<(&'static str, Vec<CandidateMapping>)> = Vec::new();
        let candidates = |solution: Option<rpo_algorithms::OptimalMapping>, name| {
            solution
                .map(|s| {
                    vec![CandidateMapping::evaluate_with_oracle(
                        name, oracle, s.mapping,
                    )]
                })
                .unwrap_or_default()
        };
        precomputed.push(("Algo-1", candidates(algo1.next().flatten(), "Algo-1")));
        let algo2_result = algo2.next().flatten();
        if instance.period_bound.is_finite() {
            precomputed.push(("Algo-2", candidates(algo2_result, "Algo-2")));
        }
        let solve_start = Instant::now();
        let outcome = engine.solve_with_precomputed(instance, 1, precomputed);
        rpo_obs::histogram!("batch.solve").record(solve_start.elapsed());
        record_outcome(local, &outcome);
        local.bucketed += 1;
    }
}

impl BatchReport {
    /// Instances solved per second of wall-clock time. Empty or
    /// zero-duration batches report 0.0 — never a non-finite value, which
    /// would corrupt the serde JSON report envelope (JSON has no
    /// `Infinity`/`NaN` literals).
    pub fn throughput(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds > 0.0 && self.instances > 0 {
            self.instances as f64 / seconds
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} instances in {:.2?} ({:.1} instances/sec), {} feasible, {} from cache",
            self.instances,
            self.elapsed,
            self.throughput(),
            self.feasible_instances,
            self.cache_answered,
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_ratio(),
            self.cache.evictions,
        )?;
        writeln!(
            f,
            "oracle cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
            self.oracle_cache.hits,
            self.oracle_cache.misses,
            100.0 * self.oracle_cache.hit_ratio(),
            self.oracle_cache.evictions,
        )?;
        writeln!(
            f,
            "scratch pool: {} hits / {} misses ({:.0}% hit rate); split: {} wide / {} deep \
             (peak {} committed threads)",
            self.scratch_pool.hits,
            self.scratch_pool.misses,
            100.0 * self.scratch_pool.hit_ratio(),
            self.wide_solves,
            self.deep_solves,
            self.max_committed_threads,
        )?;
        if self.buckets_dispatched > 0 || self.remainder_solves > 0 {
            writeln!(
                f,
                "buckets: {} dispatched covering {} instances ({:.1} lanes/bucket, \
                 {} padded), {} remainder solves",
                self.buckets_dispatched,
                self.bucketed_instances,
                self.bucketed_instances as f64 / self.buckets_dispatched.max(1) as f64,
                self.padded_lanes,
                self.remainder_solves,
            )?;
        }
        writeln!(
            f,
            "{:<12} {:>6} {:>6} {:>9} {:>13} {:>11}",
            "backend", "runs", "wins", "win-rate", "front-points", "time"
        )?;
        for stats in &self.backend_stats {
            writeln!(
                f,
                "{:<12} {:>6} {:>6} {:>8.1}% {:>13} {:>9.1}ms",
                stats.backend,
                stats.runs,
                stats.wins,
                100.0 * stats.win_rate(),
                stats.front_points,
                stats.total_micros as f64 / 1e3,
            )?;
        }
        Ok(())
    }
}

/// Streams instances through a [`PortfolioEngine`] with a pool of worker
/// threads pulling from a shared queue.
#[derive(Default)]
pub struct BatchDriver {
    config: BatchConfig,
}

impl BatchDriver {
    /// A driver with the given configuration.
    pub fn new(config: BatchConfig) -> Self {
        BatchDriver { config }
    }

    /// Runs every instance of `stream` through `engine` and aggregates the
    /// per-backend statistics. The stream is consumed lazily — instances
    /// are generated one at a time as workers become free, so arbitrarily
    /// long batches run in O(workers) memory.
    pub fn run<I>(&self, engine: &PortfolioEngine, stream: I) -> BatchReport
    where
        I: IntoIterator<Item = ExperimentInstance>,
        I::IntoIter: Send,
    {
        let bounds = self.config.bounds;
        let heterogeneous = self.config.heterogeneous;
        self.drive(
            engine,
            stream
                .into_iter()
                .map(move |experiment| bounds.instance(&experiment, heterogeneous)),
        )
    }

    /// Like [`BatchDriver::run`], for pre-built portfolio instances.
    pub fn run_instances(
        &self,
        engine: &PortfolioEngine,
        instances: Vec<ProblemInstance>,
    ) -> BatchReport {
        self.drive(engine, instances.into_iter())
    }

    /// The shared worker loop: threads pull the next instance from the
    /// mutex-guarded iterator (held only while generating one instance),
    /// solve it, and fold their local tallies at the end.
    fn drive<J>(&self, engine: &PortfolioEngine, instances: J) -> BatchReport
    where
        J: Iterator<Item = ProblemInstance> + Send,
    {
        let _span = rpo_obs::span!("batch.drive", workers = self.config.workers);
        // The report embeds only the metrics recorded during *this* batch:
        // snapshot the global registry now and export the delta at the end.
        let metrics_base = rpo_obs::global().snapshot();
        let start = Instant::now();
        // Divide the thread budget between instance-level parallelism
        // (workers here) and backend-level parallelism (engine threads).
        // Static split divides up front; the adaptive split keeps the full
        // width and decides the per-solve thread count per instance.
        let workers = match self.config.split {
            ThreadSplit::Static => (self.config.workers / engine.threads().max(1)).max(1),
            ThreadSplit::Adaptive { .. } => self.config.workers.max(1),
        };
        let split = self.config.split;
        let deep_threads = engine.threads().max(1).min(self.config.workers.max(1));
        // Adaptive mode keeps the full instance-level width, so concurrent
        // deep solves could oversubscribe by workers × deep_threads. Bound
        // them with permits: at most workers/deep_threads solves run deep at
        // once; a large instance that cannot get a permit falls back to an
        // inline solve. On top of the permits, each deep solve is sized by
        // the **live thread commitment** at dispatch (`deep_solve_width`):
        // `committed` sums the per-solve width of every in-flight solve, and
        // a deep solve only receives the idle capacity — so the peak
        // commitment (reported as `max_committed_threads`) stays below
        // `2 × workers` and a deep solve landing on a busy batch degrades
        // towards an inline solve instead of stacking a full thread team on
        // top of the busy workers.
        let deep_permits = AtomicUsize::new((workers / deep_threads).max(1));
        let committed = AtomicUsize::new(0);
        let peak_committed = AtomicUsize::new(0);
        let source = Mutex::new(instances);
        let bucketed_mode = self.config.bucketed;
        // Shape buckets filling towards LANES-wide mega-kernel dispatches,
        // shared by all workers; whichever worker completes a bucket
        // dispatches it (outside the map lock).
        let buckets: Mutex<HashMap<u64, Vec<ProblemInstance>>> = Mutex::new(HashMap::new());

        let tally: Mutex<Tally> = Mutex::new(Tally::default());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Tally::default();
                    // Worker-local SoA arenas for bucketed dispatches,
                    // reused across every bucket this worker solves.
                    let mut batch_scratch = BatchScratch::new();
                    loop {
                        // Queue wait (contending for the stream lock plus
                        // generating the next instance) vs solve time below:
                        // the split that tells lock contention apart from
                        // genuinely slow solves.
                        let wait_start = Instant::now();
                        let next = source.lock().expect("instance stream lock poisoned").next();
                        rpo_obs::histogram!("batch.queue_wait").record(wait_start.elapsed());
                        let Some(instance) = next else {
                            break;
                        };
                        local.count += 1;
                        rpo_obs::counter!("batch.instances").inc();
                        if bucketed_mode {
                            if let Some(key) = bucket_key(&instance) {
                                // Park the instance in its shape bucket; a
                                // full bucket is taken (inside the lock) and
                                // dispatched (outside it) by this worker.
                                let full = {
                                    let mut map = buckets.lock().expect("bucket map lock poisoned");
                                    let bucket = map.entry(key).or_default();
                                    bucket.push(instance);
                                    (bucket.len() >= LANES).then(|| std::mem::take(bucket))
                                };
                                if let Some(batch) = full {
                                    solve_bucket(engine, &batch, &mut batch_scratch, &mut local);
                                }
                                continue;
                            }
                            local.remainder += 1;
                            rpo_obs::counter!("dp.batch.remainder_solves").inc();
                        }
                        let solve_start = Instant::now();
                        // Commit `width` solver threads for the duration of
                        // one solve, recording the batch-wide peak.
                        let commit = |width: usize| {
                            let now = committed.fetch_add(width, Ordering::AcqRel) + width;
                            peak_committed.fetch_max(now, Ordering::AcqRel);
                        };
                        let outcome = match split {
                            ThreadSplit::Static => {
                                commit(engine.threads().max(1));
                                let outcome = engine.solve(&instance);
                                committed.fetch_sub(engine.threads().max(1), Ordering::AcqRel);
                                outcome
                            }
                            ThreadSplit::Adaptive { small_volume } => {
                                // DP volume n²·p decides the split: small
                                // instances run inline single-threaded (the
                                // whole width stays instance-level), large
                                // ones get backend-level parallelism.
                                let n = instance.chain.len();
                                let volume = n * n * instance.platform.num_processors();
                                let permit = volume > small_volume
                                    && deep_permits
                                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| {
                                            p.checked_sub(1)
                                        })
                                        .is_ok();
                                if permit {
                                    local.deep += 1;
                                    // Size the deep solve by the live
                                    // occupancy at dispatch, not the
                                    // engine's full per-solve width. Sizing
                                    // and reservation are one atomic update,
                                    // so two concurrent deep dispatches
                                    // cannot both claim the same idle
                                    // capacity.
                                    let mut width = 0;
                                    let prev = committed
                                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                                            width = deep_solve_width(deep_threads, workers, c);
                                            Some(c + width)
                                        })
                                        .expect("unconditional update cannot fail");
                                    peak_committed.fetch_max(prev + width, Ordering::AcqRel);
                                    let outcome = engine.solve_with_threads(&instance, width);
                                    committed.fetch_sub(width, Ordering::AcqRel);
                                    deep_permits.fetch_add(1, Ordering::AcqRel);
                                    outcome
                                } else {
                                    local.wide += 1;
                                    commit(1);
                                    let outcome = engine.solve_with_threads(&instance, 1);
                                    committed.fetch_sub(1, Ordering::AcqRel);
                                    outcome
                                }
                            }
                        };
                        rpo_obs::histogram!("batch.solve").record(solve_start.elapsed());
                        record_outcome(&mut local, &outcome);
                    }
                    // Stream exhausted: flush the remaining (partial) shape
                    // buckets through the mega-kernel, sharing the work
                    // across whichever workers finish first. Every bucketed
                    // instance is flushed: a worker only exits its solve
                    // loop after its last insert, and flushes afterwards.
                    if bucketed_mode {
                        loop {
                            let batch = {
                                let mut map = buckets.lock().expect("bucket map lock poisoned");
                                let key = map.keys().next().copied();
                                key.and_then(|k| map.remove(&k))
                            };
                            let Some(batch) = batch else {
                                break;
                            };
                            if !batch.is_empty() {
                                solve_bucket(engine, &batch, &mut batch_scratch, &mut local);
                            }
                        }
                    }
                    // Fold the worker-local tally into the shared one.
                    let mut shared = tally.lock().expect("tally lock poisoned");
                    shared.count += local.count;
                    shared.feasible += local.feasible;
                    shared.cache_answered += local.cache_answered;
                    shared.wide += local.wide;
                    shared.deep += local.deep;
                    shared.buckets += local.buckets;
                    shared.bucketed += local.bucketed;
                    shared.padded += local.padded;
                    shared.remainder += local.remainder;
                    for (name, stats) in local.stats {
                        let entry = shared.stats.entry(name).or_insert_with(|| BackendStats {
                            backend: stats.backend.clone(),
                            ..BackendStats::default()
                        });
                        entry.runs += stats.runs;
                        entry.wins += stats.wins;
                        entry.front_points += stats.front_points;
                        entry.total_micros += stats.total_micros;
                    }
                });
            }
        });

        let tally = tally.into_inner().expect("tally lock poisoned");
        let mut backend_stats: Vec<BackendStats> = tally.stats.into_values().collect();
        backend_stats.sort_by(|a, b| b.wins.cmp(&a.wins).then_with(|| a.backend.cmp(&b.backend)));

        BatchReport {
            instances: tally.count,
            feasible_instances: tally.feasible,
            cache_answered: tally.cache_answered,
            elapsed: start.elapsed(),
            backend_stats,
            cache: engine.cache_stats(),
            oracle_cache: engine.oracle_cache_stats(),
            scratch_pool: engine.scratch_pool_stats(),
            wide_solves: tally.wide,
            deep_solves: tally.deep,
            max_committed_threads: peak_committed.into_inner(),
            buckets_dispatched: tally.buckets,
            bucketed_instances: tally.bucketed,
            padded_lanes: tally.padded,
            remainder_solves: tally.remainder,
            // All workers joined above, so the delta is an exact account of
            // this batch's activity.
            metrics: rpo_obs::global().snapshot().delta(&metrics_base),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_workload::InstanceGenerator;

    #[test]
    fn small_batch_reports_consistent_counts() {
        let engine = PortfolioEngine::default().with_threads(1);
        let driver = BatchDriver::new(BatchConfig {
            workers: 2,
            bounds: BoundsPolicy::default(),
            heterogeneous: false,
            split: ThreadSplit::default(),
            bucketed: false,
        });
        let generator = InstanceGenerator::paper_homogeneous(2024);
        let report = driver.run(&engine, generator.stream(12));
        assert_eq!(report.instances, 12);
        assert!(
            report.feasible_instances > 0,
            "paper-style instances should be solvable"
        );
        assert!(report.throughput() > 0.0);
        let total_wins: usize = report.backend_stats.iter().map(|s| s.wins).sum();
        assert_eq!(
            total_wins,
            report.feasible_instances - report.cache_answered
        );
        // Paper-scale instances are all "small": the adaptive split solves
        // every one inline single-threaded.
        assert_eq!(report.wide_solves, 12);
        assert_eq!(report.deep_solves, 0);
        // The pool allocated at most one scratch per worker; every later
        // backend run reused a pooled arena.
        let pool = &report.scratch_pool;
        assert!(pool.misses <= 2, "expected ≤ 1 fresh scratch per worker");
        assert!(pool.hits > 0, "expected pooled arenas to be reused");
    }

    #[test]
    fn empty_batch_report_round_trips_through_json() {
        // Regression: an empty (or zero-duration) batch used to report
        // `f64::INFINITY` throughput, and a non-finite float anywhere in the
        // report corrupts the JSON envelope. The report must stay finite and
        // survive a serialize → parse → deserialize round trip.
        let report = BatchReport::default();
        assert_eq!(report.instances, 0);
        assert_eq!(report.throughput(), 0.0);
        assert!(report.throughput().is_finite());

        let json = serde_json::to_string(&report).expect("empty report serializes");
        let value: serde_json::Value = serde_json::from_str(&json).expect("envelope is valid JSON");
        let fields = value.as_object().expect("report envelope is an object");
        assert!(fields.iter().any(|(key, _)| key == "instances"));

        let back: BatchReport = serde_json::from_value(&value).expect("report round-trips");
        assert_eq!(back.instances, 0);
        assert_eq!(back.elapsed, Duration::ZERO);
        assert_eq!(back.throughput(), 0.0);

        // The Display path funnels through throughput() too — it must not
        // print "inf instances/sec" for a zero-duration report.
        assert!(!format!("{report}").contains("inf"));
    }

    #[test]
    fn duplicate_instances_are_answered_by_the_cache() {
        let engine = PortfolioEngine::default().with_threads(1);
        let driver = BatchDriver::new(BatchConfig {
            workers: 1,
            ..BatchConfig::default()
        });
        let generator = InstanceGenerator::paper_homogeneous(7);
        let mut instances: Vec<ExperimentInstance> = generator.batch(3);
        instances.extend(generator.batch(3)); // same three again
        let report = driver.run(&engine, instances);
        assert_eq!(report.instances, 6);
        assert_eq!(report.cache_answered, 3);
        assert_eq!(report.cache.hits, 3);
    }

    #[test]
    fn static_split_divides_the_worker_budget() {
        let engine = PortfolioEngine::default().with_threads(2);
        let driver = BatchDriver::new(BatchConfig {
            workers: 4,
            split: ThreadSplit::Static,
            ..BatchConfig::default()
        });
        let generator = InstanceGenerator::paper_homogeneous(99);
        let report = driver.run(&engine, generator.stream(4));
        assert_eq!(report.instances, 4);
        // Static mode records no adaptive decisions.
        assert_eq!(report.wide_solves, 0);
        assert_eq!(report.deep_solves, 0);
    }

    #[test]
    fn adaptive_split_sends_large_instances_deep() {
        let engine = PortfolioEngine::default().with_threads(2);
        // One worker: the single deep permit is always free, so every
        // large instance deterministically goes deep.
        let driver = BatchDriver::new(BatchConfig {
            workers: 1,
            // Tiny threshold: every paper-scale instance counts as large.
            split: ThreadSplit::Adaptive { small_volume: 1 },
            ..BatchConfig::default()
        });
        let generator = InstanceGenerator::paper_homogeneous(5);
        let report = driver.run(&engine, generator.stream(3));
        assert_eq!(report.wide_solves, 0);
        assert_eq!(report.deep_solves, 3);
        assert!(report.feasible_instances > 0);
    }

    #[test]
    fn deep_solve_width_is_sized_by_live_occupancy() {
        // Idle batch: the deep solve gets the engine's full per-solve width.
        assert_eq!(deep_solve_width(4, 8, 0), 4);
        // Partially busy: only the idle capacity (plus the dispatching
        // worker's own slot) is handed out.
        assert_eq!(deep_solve_width(4, 8, 6), 3);
        assert_eq!(deep_solve_width(4, 8, 7), 2);
        // Saturated (or oversubscribed) batch: degrade to an inline solve.
        assert_eq!(deep_solve_width(4, 8, 8), 1);
        assert_eq!(deep_solve_width(4, 8, 100), 1);
        // A deep width is never zero, whatever the configuration.
        assert_eq!(deep_solve_width(1, 1, 0), 1);
    }

    #[test]
    fn adaptive_deep_solves_bound_the_thread_commitment() {
        // Engine configured far wider than the batch: without
        // occupancy-aware sizing, every deep solve would commit the full
        // per-solve width on top of the busy workers.
        let engine = PortfolioEngine::default().with_threads(8);
        let workers = 2;
        let driver = BatchDriver::new(BatchConfig {
            workers,
            // Tiny threshold: every paper-scale instance counts as large.
            split: ThreadSplit::Adaptive { small_volume: 1 },
            ..BatchConfig::default()
        });
        let generator = InstanceGenerator::paper_homogeneous(17);
        let report = driver.run(&engine, generator.stream(8));
        assert_eq!(report.instances, 8);
        assert!(report.deep_solves > 0, "large instances must go deep");
        // The documented bound (2·workers − permits): here one deep permit,
        // so one deep solve sized to the idle capacity plus the remaining
        // worker solving inline.
        let deep_threads = engine.threads().min(workers);
        let permits = (workers / deep_threads).max(1);
        assert!(
            report.max_committed_threads <= 2 * workers - permits,
            "peak commitment {} exceeds 2·workers − permits = {}",
            report.max_committed_threads,
            2 * workers - permits
        );
        // And in particular far below the pre-sizing worst case of one full
        // engine width per busy worker.
        assert!(report.max_committed_threads < workers * engine.threads());
    }

    #[test]
    fn bucketed_batches_match_the_unbucketed_front_for_front() {
        let generator = InstanceGenerator::paper_homogeneous(31);
        let instances: Vec<ExperimentInstance> = generator.batch(20);
        let policy = BoundsPolicy::default();
        let problems: Vec<ProblemInstance> = instances
            .iter()
            .map(|experiment| policy.instance(experiment, false))
            .collect();
        // Run the same stream through a bucketed and an unbucketed driver,
        // then read every instance's front back out of each engine's cache.
        let run = |bucketed: bool| {
            let engine = PortfolioEngine::default().with_threads(1);
            let driver = BatchDriver::new(BatchConfig {
                workers: 2,
                bucketed,
                ..BatchConfig::default()
            });
            let report = driver.run(&engine, instances.clone());
            let fronts: Vec<_> = problems
                .iter()
                .map(|problem| engine.solve(problem).front)
                .collect();
            (report, fronts)
        };
        let (plain_report, plain_fronts) = run(false);
        let (bucket_report, bucket_fronts) = run(true);

        assert_eq!(plain_report.buckets_dispatched, 0);
        assert!(bucket_report.buckets_dispatched > 0);
        assert_eq!(
            bucket_report.bucketed_instances + bucket_report.remainder_solves,
            bucket_report.instances
        );
        assert_eq!(
            plain_report.feasible_instances,
            bucket_report.feasible_instances
        );
        // The wins invariant holds in both modes (precomputed mega-kernel
        // runs are accounted like completed backend runs).
        for report in [&plain_report, &bucket_report] {
            let total_wins: usize = report.backend_stats.iter().map(|s| s.wins).sum();
            assert_eq!(
                total_wins,
                report.feasible_instances - report.cache_answered
            );
        }

        // Front-for-front: identical mappings (fingerprints), producing
        // backends, and criteria, instance by instance.
        for (plain, bucket) in plain_fronts.iter().zip(&bucket_fronts) {
            let key = |front: &crate::pareto::ParetoFront| -> Vec<_> {
                front
                    .points()
                    .iter()
                    .map(|p| {
                        (
                            p.fingerprint(),
                            p.backend,
                            p.evaluation.reliability.to_bits(),
                            p.evaluation.worst_case_period.to_bits(),
                            p.evaluation.worst_case_latency.to_bits(),
                        )
                    })
                    .collect()
            };
            assert_eq!(key(plain), key(bucket));
        }
    }

    #[test]
    fn heterogeneous_batches_use_the_heterogeneous_platform() {
        let engine = PortfolioEngine::default().with_threads(1);
        let driver = BatchDriver::new(BatchConfig {
            workers: 2,
            bounds: BoundsPolicy {
                period_slack: 3.0,
                latency_slack: 2.0,
            },
            heterogeneous: true,
            split: ThreadSplit::default(),
            bucketed: false,
        });
        let generator = InstanceGenerator::paper_heterogeneous(11);
        let report = driver.run(&engine, generator.stream(6));
        assert_eq!(report.instances, 6);
        // The heterogeneous-only backend must have run.
        assert!(report
            .backend_stats
            .iter()
            .any(|s| s.backend == "Het-Sweep" && s.runs > 0));
        // The homogeneous-only exact solvers must not have.
        assert!(report
            .backend_stats
            .iter()
            .all(|s| s.backend != "Exhaustive"));
    }
}
