//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line in, one response per line out. Responses carry the
//! request's `id` and are *not* guaranteed to come back in submission order
//! (a cache hit answers immediately while an earlier solve is still
//! running); clients correlate by id. Bounds are `Option`s rather than
//! non-finite floats — JSON has no `Infinity` literal, so "unbounded" is
//! spelled by omitting the field (or `null`).

use rpo_model::Mapping;
use serde::{Deserialize, Serialize, Value};
use serde_json::Error;

/// One solve request, as read from a JSON line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    #[serde(default)]
    pub id: u64,
    /// Tenant label; requests of the same tenant share a cache shard.
    #[serde(default)]
    pub tenant: u64,
    /// Per-request deadline in milliseconds, measured from admission.
    /// Absent/null inherits [`crate::ServeConfig::default_deadline`].
    pub deadline_ms: Option<f64>,
    /// The task chain to map.
    pub chain: rpo_model::TaskChain,
    /// The target platform.
    pub platform: rpo_model::Platform,
    /// Worst-case period bound `P` (absent/null = unbounded).
    pub period_bound: Option<f64>,
    /// Worst-case latency bound `L` (absent/null = unbounded).
    pub latency_bound: Option<f64>,
}

/// The typed outcome class of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Solved: at least one feasible mapping; the best-reliability point is
    /// inlined in the response.
    Ok,
    /// Solved to completion, but no mapping satisfies the bounds.
    Infeasible,
    /// Shed by admission control: the request could not start (or could not
    /// be delivered) before its deadline. It was never solved stale.
    Shed,
    /// Rejected by backpressure: the bounded ingress queue was full.
    Overloaded,
    /// Rejected because the service is draining for shutdown.
    Draining,
    /// The request was malformed (unparseable line, invalid bounds, …).
    Invalid,
}

impl ResponseStatus {
    /// The lowercase wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ResponseStatus::Ok => "ok",
            ResponseStatus::Infeasible => "infeasible",
            ResponseStatus::Shed => "shed",
            ResponseStatus::Overloaded => "overloaded",
            ResponseStatus::Draining => "draining",
            ResponseStatus::Invalid => "invalid",
        }
    }
}

impl Serialize for ResponseStatus {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for ResponseStatus {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_str() {
            Some("ok") => Ok(ResponseStatus::Ok),
            Some("infeasible") => Ok(ResponseStatus::Infeasible),
            Some("shed") => Ok(ResponseStatus::Shed),
            Some("overloaded") => Ok(ResponseStatus::Overloaded),
            Some("draining") => Ok(ResponseStatus::Draining),
            Some("invalid") => Ok(ResponseStatus::Invalid),
            Some(other) => Err(Error::unknown_variant(other, "ResponseStatus")),
            None => Err(Error::expected("string", "ResponseStatus")),
        }
    }
}

/// One response, as written to a JSON line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// The request's correlation id.
    pub id: u64,
    /// Outcome class; the solution fields below are populated only for
    /// [`ResponseStatus::Ok`].
    pub status: ResponseStatus,
    /// Reliability of the best-reliability feasible mapping.
    pub reliability: Option<f64>,
    /// Worst-case period of that mapping.
    pub worst_case_period: Option<f64>,
    /// Worst-case latency of that mapping.
    pub worst_case_latency: Option<f64>,
    /// The mapping itself (interval boundaries + processor allocation).
    pub mapping: Option<Mapping>,
    /// Size of the full Pareto front the solve produced.
    #[serde(default)]
    pub front_points: usize,
    /// Whether this response was coalesced onto another request's solve.
    #[serde(default)]
    pub coalesced: bool,
    /// Whether this response was answered from a cache (tenant shard or the
    /// engine's shared cache) without a fresh solve.
    #[serde(default)]
    pub cached: bool,
    /// Time the request spent queued before its solve started, in µs
    /// (0 for immediate rejections and cache hits).
    #[serde(default)]
    pub queue_wait_micros: u64,
    /// Wall-clock of the solve that produced this response, in µs.
    #[serde(default)]
    pub solve_micros: u64,
    /// Human-readable detail for rejection statuses.
    pub error: Option<String>,
}

impl ServeResponse {
    /// A solution-less response of the given status.
    pub fn rejection(id: u64, status: ResponseStatus, error: impl Into<String>) -> Self {
        ServeResponse {
            id,
            status,
            reliability: None,
            worst_case_period: None,
            worst_case_latency: None,
            mapping: None,
            front_points: 0,
            coalesced: false,
            cached: false,
            queue_wait_micros: 0,
            solve_micros: 0,
            error: Some(error.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{Platform, TaskChain};

    fn request() -> ServeRequest {
        ServeRequest {
            id: 7,
            tenant: 2,
            deadline_ms: Some(250.0),
            chain: TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0)]).unwrap(),
            platform: Platform::homogeneous(3, 1.0, 1e-3, 1.0, 1e-4, 2).unwrap(),
            period_bound: None,
            latency_bound: Some(130.0),
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let json = serde_json::to_string(&request()).unwrap();
        let back: ServeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request());
        // Unbounded period is spelled as null, never a non-finite float.
        assert!(!json.contains("inf"));
    }

    #[test]
    fn defaults_make_minimal_requests_valid() {
        let minimal = format!(
            "{{\"chain\": {}, \"platform\": {}}}",
            serde_json::to_string(&request().chain).unwrap(),
            serde_json::to_string(&request().platform).unwrap(),
        );
        let parsed: ServeRequest = serde_json::from_str(&minimal).unwrap();
        assert_eq!(parsed.id, 0);
        assert_eq!(parsed.tenant, 0);
        assert_eq!(parsed.deadline_ms, None);
        assert_eq!(parsed.period_bound, None);
    }

    #[test]
    fn statuses_round_trip_lowercase() {
        for status in [
            ResponseStatus::Ok,
            ResponseStatus::Infeasible,
            ResponseStatus::Shed,
            ResponseStatus::Overloaded,
            ResponseStatus::Draining,
            ResponseStatus::Invalid,
        ] {
            let response = ServeResponse::rejection(1, status, "x");
            let json = serde_json::to_string(&response).unwrap();
            assert!(json.contains(&format!("\"{}\"", status.as_str())));
            let back: ServeResponse = serde_json::from_str(&json).unwrap();
            assert_eq!(back.status, status);
        }
    }
}
