//! The serving layer: a long-lived solver service over the portfolio engine.
//!
//! Everything below `rpo-serve` is run-to-completion: the batch driver
//! streams a workload, solves it, prints a report, and the process exits.
//! This crate promotes that machinery into a *persistent service* speaking
//! newline-delimited JSON over stdin/stdout ([`wire::serve_lines`]) or TCP
//! ([`wire::TcpServer`]), with the admission-control policy a serving system
//! actually needs:
//!
//! * **Bounded ingress + backpressure** — the queue between the protocol
//!   frontend and the solver workers holds at most
//!   [`ServeConfig::queue_capacity`] distinct solves; requests arriving
//!   beyond that get an immediate typed [`ResponseStatus::Overloaded`]
//!   rejection instead of unbounded buffering.
//! * **Per-request deadlines with queue-time shedding** — a request carries
//!   its own deadline (or inherits [`ServeConfig::default_deadline`]). A
//!   request whose deadline has already passed when a worker would *start*
//!   it is shed with [`ResponseStatus::Shed`], never solved stale, and no
//!   response is ever delivered past its deadline: results that finish late
//!   are converted to sheds before delivery.
//! * **Duplicate coalescing** — requests are keyed by the same canonical
//!   structural hash the engine's [`InstanceCache`] uses; concurrent
//!   identical requests (tenant-independent) attach to the in-flight solve
//!   and share its single result bit-for-bit.
//! * **Per-tenant cache shards** — each tenant gets its own
//!   [`InstanceCache`] shard consulted at admission, so one tenant's
//!   traffic cannot evict another's hot entries from the serving fast path
//!   (the engine's internal cache remains a shared second level).
//! * **Graceful drain** — [`SolverService::shutdown`] stops admitting,
//!   finishes every queued solve (still under deadline rules), answers
//!   late arrivals with [`ResponseStatus::Draining`], and joins the
//!   workers.
//!
//! The service is instrumented through `rpo-obs`: `serve.queue_wait` and
//! `serve.latency` histograms, and `serve.{admitted, shed, coalesced,
//! overloaded}` counters — the `BENCH_serve.json` gate replays a seeded
//! duplicate-heavy request stream against these.
//!
//! [`InstanceCache`]: rpo_portfolio::InstanceCache

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod proto;
pub mod service;
pub mod wire;

pub use proto::{ResponseStatus, ServeRequest, ServeResponse};
pub use service::{Responder, ServeConfig, ServeStats, SolverService, Ticket};
pub use wire::{serve_lines, TcpServer};
