//! Wire frontends: newline-delimited JSON over any `BufRead`/`Write` pair
//! (stdin/stdout) and over TCP.

use crate::proto::{ResponseStatus, ServeRequest, ServeResponse};
use crate::service::SolverService;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Serves one JSON-lines connection: reads a request per line from
/// `reader`, writes one response line per request to `writer` (responses
/// are correlated by `id`, not by order — a cache hit overtakes an earlier
/// queued solve). Returns when the reader hits EOF; queued work submitted
/// through this call may still be settling when it returns, so callers own
/// the service lifecycle (drain via [`SolverService::shutdown`]).
///
/// Unparseable lines get a [`ResponseStatus::Invalid`] response with id 0;
/// blank lines are ignored.
pub fn serve_lines<R: BufRead, W: Write + Send + 'static>(
    service: &SolverService,
    reader: R,
    writer: W,
) -> std::io::Result<()> {
    let writer = Arc::new(Mutex::new(writer));
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<ServeRequest>(&line) {
            Ok(request) => {
                let sink = Arc::clone(&writer);
                service.submit_with(
                    request,
                    Box::new(move |response| {
                        write_response(&sink, &response);
                    }),
                );
            }
            Err(error) => {
                write_response(
                    &writer,
                    &ServeResponse::rejection(
                        0,
                        ResponseStatus::Invalid,
                        format!("unparseable request: {error}"),
                    ),
                );
            }
        }
    }
    Ok(())
}

fn write_response<W: Write>(writer: &Mutex<W>, response: &ServeResponse) {
    let json = serde_json::to_string(response)
        .expect("responses contain no non-finite floats and always serialize");
    let mut writer = writer.lock().expect("response writer poisoned");
    // A dead peer is not an error worth crashing the service over; the
    // submission loop notices EOF on its own side.
    let _ = writeln!(writer, "{json}");
    let _ = writer.flush();
}

/// A TCP frontend: accepts connections and runs [`serve_lines`] on each in
/// its own thread, against one shared [`SolverService`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting. The service must outlive the server; it is shared via
    /// `Arc` so connection threads can submit after `spawn` returns.
    pub fn spawn(service: Arc<SolverService>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_loop = std::thread::spawn(move || {
            for connection in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = connection else { continue };
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(read_half) => BufReader::new(read_half),
                        Err(_) => return,
                    };
                    let _ = serve_lines(&service, reader, stream);
                });
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop. Existing
    /// connections keep being served until their peers hang up; drain the
    /// underlying service afterwards for a full shutdown.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept_loop) = self.accept_loop.take() {
            let _ = accept_loop.join();
        }
    }
}
