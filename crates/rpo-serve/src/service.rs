//! The solver service: admission control, coalescing, sharded caching, and
//! the worker loop, independent of any particular wire protocol.

use crate::proto::{ResponseStatus, ServeRequest, ServeResponse};
use rpo_portfolio::{InstanceCache, ParetoFront, PortfolioEngine, ProblemInstance};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission-control and sizing knobs of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Solver worker threads. `0` spawns none — requests queue up and are
    /// processed only by explicit [`SolverService::process_one`] calls (the
    /// deterministic test mode).
    pub workers: usize,
    /// Maximum number of *distinct* queued solves (coalesced joiners ride
    /// along for free). Admissions beyond this are rejected with
    /// [`ResponseStatus::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline for requests that do not carry their own `deadline_ms`
    /// (`None` = such requests never expire).
    pub default_deadline: Option<Duration>,
    /// Number of per-tenant cache shards (tenant id modulo shards).
    pub tenant_shards: usize,
    /// Capacity of each tenant shard.
    pub shard_capacity: usize,
    /// Thread width handed to the engine per solve.
    pub solve_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 512,
            default_deadline: Some(Duration::from_millis(250)),
            tenant_shards: 8,
            shard_capacity: 256,
            solve_threads: 1,
        }
    }
}

/// Counters the service maintains for its whole lifetime (monotone; also
/// mirrored into the global `rpo-obs` registry under `serve.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted into the queue as a fresh (non-coalesced) solve.
    pub admitted: u64,
    /// Requests that attached to an already queued or in-flight identical
    /// solve.
    pub coalesced: u64,
    /// Requests answered from a cache (tenant shard) at admission.
    pub cache_hits: u64,
    /// Requests shed because their deadline passed before their solve could
    /// start, or before their response could be delivered.
    pub shed: u64,
    /// Requests rejected because the ingress queue was full.
    pub overloaded: u64,
    /// Requests rejected during drain.
    pub drained: u64,
    /// Solves actually executed by workers.
    pub solved: u64,
}

/// How a response leaves the service: a callback invoked exactly once, from
/// whichever thread settles the request (the submitter for immediate
/// rejections and cache hits, a worker otherwise).
pub type Responder = Box<dyn FnOnce(ServeResponse) + Send + 'static>;

/// One party waiting on a queued (possibly shared) solve.
struct Waiter {
    id: u64,
    tenant: u64,
    submitted: Instant,
    deadline: Option<Instant>,
    coalesced: bool,
    respond: Responder,
}

/// One distinct queued solve and everyone waiting on it.
struct PendingSolve {
    instance: ProblemInstance,
    enqueued: Instant,
    waiters: Vec<Waiter>,
}

/// Mutable service state behind one lock: the bounded queue of canonical
/// keys plus the key → pending-solve map the coalescing path joins through.
struct State {
    queue: VecDeque<u64>,
    pending: HashMap<u64, PendingSolve>,
    draining: bool,
}

struct Core {
    engine: Arc<PortfolioEngine>,
    config: ServeConfig,
    state: Mutex<State>,
    /// Signals workers that the queue gained work or drain started.
    work: Condvar,
    shards: Vec<Mutex<InstanceCache>>,
    admitted: AtomicU64,
    coalesced: AtomicU64,
    cache_hits: AtomicU64,
    shed: AtomicU64,
    overloaded: AtomicU64,
    drained: AtomicU64,
    solved: AtomicU64,
    /// Live queue depth mirror for lock-free inspection.
    depth: AtomicUsize,
}

/// A long-lived solver service over a shared [`PortfolioEngine`]. See the
/// crate docs for the admission-control contract.
pub struct SolverService {
    core: Arc<Core>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A waitable handle to one submitted request's response.
pub struct Ticket {
    receiver: mpsc::Receiver<ServeResponse>,
}

impl Ticket {
    /// Blocks until the response arrives.
    pub fn wait(self) -> ServeResponse {
        self.receiver
            .recv()
            .expect("service dropped a ticket without responding")
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<ServeResponse> {
        self.receiver.try_recv().ok()
    }
}

impl SolverService {
    /// Starts the service: spawns [`ServeConfig::workers`] solver threads
    /// over `engine`.
    pub fn start(engine: Arc<PortfolioEngine>, config: ServeConfig) -> Self {
        let shards = (0..config.tenant_shards.max(1))
            .map(|_| Mutex::new(InstanceCache::new(config.shard_capacity)))
            .collect();
        let core = Arc::new(Core {
            engine,
            config: config.clone(),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: HashMap::new(),
                draining: false,
            }),
            work: Condvar::new(),
            shards,
            admitted: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || worker_loop(&core))
            })
            .collect();
        SolverService {
            core,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a request; the returned [`Ticket`] resolves to its response.
    pub fn submit(&self, request: ServeRequest) -> Ticket {
        let (sender, receiver) = mpsc::sync_channel(1);
        self.submit_with(
            request,
            Box::new(move |response| {
                // The ticket may have been dropped; responses to the void
                // are fine.
                let _ = sender.send(response);
            }),
        );
        Ticket { receiver }
    }

    /// Submits a request with an explicit response callback (the wire
    /// frontends' entry point; avoids a channel per request).
    pub fn submit_with(&self, request: ServeRequest, respond: Responder) {
        self.core.submit(request, respond);
    }

    /// Current number of distinct queued solves (in-flight solves a worker
    /// has already dequeued do not count against capacity).
    pub fn queue_depth(&self) -> usize {
        self.core.depth.load(Ordering::Acquire)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServeStats {
        self.core.stats()
    }

    /// Dequeues and processes one queued solve on the calling thread;
    /// returns `false` when the queue is empty. Only meaningful with
    /// `workers: 0` (the deterministic test mode) — with live workers it
    /// merely competes with them.
    pub fn process_one(&self) -> bool {
        process_next(&self.core, false)
    }

    /// Graceful drain: stops admitting (late submissions get
    /// [`ResponseStatus::Draining`]), lets the workers finish every queued
    /// solve under the usual deadline rules, and joins them. Idempotent;
    /// callable through a shared reference (e.g. an `Arc` also held by live
    /// wire connections).
    pub fn shutdown(&self) -> ServeStats {
        {
            let mut state = self.core.state.lock().expect("serve state poisoned");
            state.draining = true;
            self.core.work.notify_all();
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().expect("worker handles poisoned");
            guard.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
        // With no workers (test mode), the queue is drained here so every
        // outstanding ticket still resolves.
        while process_next(&self.core, true) {}
        self.core.stats()
    }
}

impl Core {
    fn stats(&self) -> ServeStats {
        ServeStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            solved: self.solved.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, tenant: u64) -> &Mutex<InstanceCache> {
        &self.shards[(tenant % self.shards.len() as u64) as usize]
    }

    fn submit(&self, request: ServeRequest, respond: Responder) {
        let submitted = Instant::now();
        let deadline = match request.deadline_ms {
            Some(ms) if ms.is_finite() && ms >= 0.0 => {
                Some(submitted + Duration::from_secs_f64(ms / 1000.0))
            }
            Some(_) => None, // null-equivalent nonsense: treat as unbounded
            None => self.config.default_deadline.map(|d| submitted + d),
        };

        let instance = match ProblemInstance::new(
            request.chain,
            request.platform,
            request.period_bound.unwrap_or(f64::INFINITY),
            request.latency_bound.unwrap_or(f64::INFINITY),
        ) {
            Ok(instance) => instance,
            Err(error) => {
                respond(ServeResponse::rejection(
                    request.id,
                    ResponseStatus::Invalid,
                    error,
                ));
                return;
            }
        };

        // Tenant-shard fast path: answer without touching the queue. The
        // shard holds fronts this service itself certified, so a hit is
        // bit-identical to the solve that produced it.
        let shard_hit = self
            .shard(request.tenant)
            .lock()
            .expect("tenant shard poisoned")
            .get(&instance);
        if let Some(front) = shard_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            rpo_obs::counter!("serve.cache_hits").inc();
            let response = respond_from_front(request.id, &front, true);
            let late = deadline.is_some_and(|d| Instant::now() >= d);
            rpo_obs::histogram!("serve.latency").record(submitted.elapsed());
            respond(if late {
                self.shed.fetch_add(1, Ordering::Relaxed);
                rpo_obs::counter!("serve.shed").inc();
                shed_response(request.id)
            } else {
                response
            });
            return;
        }

        // Queue-time shedding, admission edition: a request whose deadline
        // has already passed can never start in time.
        if deadline.is_some_and(|d| submitted >= d) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            rpo_obs::counter!("serve.shed").inc();
            respond(shed_response(request.id));
            return;
        }

        let key = instance.canonical_key();
        let waiter = Waiter {
            id: request.id,
            tenant: request.tenant,
            submitted,
            deadline,
            coalesced: false,
            respond,
        };

        let mut state = self.state.lock().expect("serve state poisoned");
        if state.draining {
            self.drained.fetch_add(1, Ordering::Relaxed);
            rpo_obs::counter!("serve.drained").inc();
            (waiter.respond)(ServeResponse::rejection(
                waiter.id,
                ResponseStatus::Draining,
                "service is draining",
            ));
            return;
        }
        if let Some(pending) = state.pending.get_mut(&key) {
            // Canonical keys are hashes: only coalesce onto a structurally
            // identical instance. A colliding non-identical instance falls
            // through to normal admission under its (shared) key — it will
            // run as its own solve.
            if pending.instance == instance {
                let mut waiter = waiter;
                waiter.coalesced = true;
                pending.waiters.push(waiter);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                rpo_obs::counter!("serve.coalesced").inc();
                return;
            }
        }
        if state.queue.len() >= self.config.queue_capacity {
            self.overloaded.fetch_add(1, Ordering::Relaxed);
            rpo_obs::counter!("serve.overloaded").inc();
            (waiter.respond)(ServeResponse::rejection(
                waiter.id,
                ResponseStatus::Overloaded,
                format!(
                    "ingress queue full ({} queued solves)",
                    self.config.queue_capacity
                ),
            ));
            return;
        }
        // Hash-collision corner: a distinct instance under an occupied key
        // must not clobber the pending entry. It gets queued without a
        // pending entry of its own, carried entirely by the queue slot.
        let vacant = !state.pending.contains_key(&key);
        if vacant {
            state.pending.insert(
                key,
                PendingSolve {
                    instance,
                    enqueued: submitted,
                    waiters: vec![waiter],
                },
            );
            state.queue.push_back(key);
        } else {
            // Collision path (astronomically rare): solve it un-coalesced by
            // queueing a dedicated one-off entry under a synthetic key.
            let mut synthetic = key;
            while state.pending.contains_key(&synthetic) {
                synthetic = synthetic.wrapping_add(1);
            }
            state.pending.insert(
                synthetic,
                PendingSolve {
                    instance,
                    enqueued: submitted,
                    waiters: vec![waiter],
                },
            );
            state.queue.push_back(synthetic);
        }
        self.depth.store(state.queue.len(), Ordering::Release);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        rpo_obs::counter!("serve.admitted").inc();
        drop(state);
        self.work.notify_one();
    }
}

fn shed_response(id: u64) -> ServeResponse {
    ServeResponse::rejection(
        id,
        ResponseStatus::Shed,
        "deadline passed before the solve could start or deliver",
    )
}

/// Builds an `ok`/`infeasible` response from a certified front.
fn respond_from_front(id: u64, front: &ParetoFront, cached: bool) -> ServeResponse {
    match front.best_reliability() {
        Some(best) => ServeResponse {
            id,
            status: ResponseStatus::Ok,
            reliability: Some(best.evaluation.reliability),
            worst_case_period: Some(best.evaluation.worst_case_period),
            worst_case_latency: Some(best.evaluation.worst_case_latency),
            mapping: Some(best.mapping.clone()),
            front_points: front.len(),
            coalesced: false,
            cached,
            queue_wait_micros: 0,
            solve_micros: 0,
            error: None,
        },
        None => ServeResponse {
            id,
            status: ResponseStatus::Infeasible,
            reliability: None,
            worst_case_period: None,
            worst_case_latency: None,
            mapping: None,
            front_points: 0,
            coalesced: false,
            cached,
            queue_wait_micros: 0,
            solve_micros: 0,
            error: None,
        },
    }
}

/// The worker loop: block on the queue, process solves, exit when draining
/// finds the queue empty.
fn worker_loop(core: &Core) {
    loop {
        {
            let mut state = core.state.lock().expect("serve state poisoned");
            while state.queue.is_empty() && !state.draining {
                state = core
                    .work
                    .wait(state)
                    .expect("serve state poisoned while waiting");
            }
            if state.queue.is_empty() && state.draining {
                return;
            }
        }
        // Queue non-empty (or racing another worker for the last item) —
        // process_next handles the empty race benignly.
        process_next(core, true);
    }
}

/// Pops and runs one queued solve. Returns `false` if the queue was empty.
/// `block_on_engine` is always true today; the flag documents that the
/// engine call happens outside every service lock.
fn process_next(core: &Core, _block_on_engine: bool) -> bool {
    // Dequeue under the lock; solve outside it.
    let (key, instance, enqueued) = {
        let mut state = core.state.lock().expect("serve state poisoned");
        let Some(key) = state.queue.pop_front() else {
            return false;
        };
        core.depth.store(state.queue.len(), Ordering::Release);
        let pending = state
            .pending
            .get(&key)
            .expect("queued key without pending entry");
        (key, pending.instance.clone(), pending.enqueued)
    };

    let queue_wait = enqueued.elapsed();
    rpo_obs::histogram!("serve.queue_wait").record(queue_wait);

    // Queue-time shedding, dequeue edition: waiters whose deadline passed
    // while queued are shed *before* the solve; if nobody is left, the
    // solve is skipped entirely. Waiters still live keep the solve, run
    // with the latest live deadline as the engine's cutoff.
    let now = Instant::now();
    let (live_any, latest_deadline) = {
        let mut state = core.state.lock().expect("serve state poisoned");
        let pending = state
            .pending
            .get_mut(&key)
            .expect("queued key without pending entry");
        let mut kept = Vec::with_capacity(pending.waiters.len());
        for waiter in pending.waiters.drain(..) {
            if waiter.deadline.is_some_and(|d| now >= d) {
                core.shed.fetch_add(1, Ordering::Relaxed);
                rpo_obs::counter!("serve.shed").inc();
                (waiter.respond)(shed_response(waiter.id));
            } else {
                kept.push(waiter);
            }
        }
        let latest = if kept.iter().any(|w| w.deadline.is_none()) {
            None
        } else {
            kept.iter().filter_map(|w| w.deadline).max()
        };
        let live = !kept.is_empty();
        pending.waiters = kept;
        if !live {
            state.pending.remove(&key);
        }
        (live, latest)
    };
    if !live_any {
        return true;
    }

    let solve_start = Instant::now();
    let outcome =
        core.engine
            .solve_until(&instance, core.config.solve_threads.max(1), latest_deadline);
    let solve_micros = solve_start.elapsed().as_micros() as u64;
    core.solved.fetch_add(1, Ordering::Relaxed);

    // Publish to the tenant shards *before* detaching the waiters, so a
    // duplicate arriving after its original's entry disappears finds the
    // front in its shard. Deadline-expired (partial) fronts are not
    // published — matching the engine's own no-caching rule.
    let waiters = {
        let mut state = core.state.lock().expect("serve state poisoned");
        let pending = state
            .pending
            .remove(&key)
            .expect("queued key without pending entry");
        if !outcome.deadline_expired {
            let mut published: Vec<u64> = Vec::new();
            for waiter in &pending.waiters {
                let shard_index = waiter.tenant % core.shards.len() as u64;
                if !published.contains(&shard_index) {
                    published.push(shard_index);
                    core.shards[shard_index as usize]
                        .lock()
                        .expect("tenant shard poisoned")
                        .put(&instance, std::sync::Arc::clone(&outcome.front));
                }
            }
        }
        pending.waiters
    };

    // Delivery-time deadline check: a response is never handed out past its
    // waiter's deadline — late results are converted to sheds, structurally
    // guaranteeing "zero responses delivered past their deadline".
    let finished = Instant::now();
    for waiter in waiters {
        let response = if waiter.deadline.is_some_and(|d| finished >= d) {
            core.shed.fetch_add(1, Ordering::Relaxed);
            rpo_obs::counter!("serve.shed").inc();
            shed_response(waiter.id)
        } else {
            // `cached` is honest here: the engine may have answered an
            // admitted request from its own instance cache (e.g. a
            // cross-tenant duplicate that missed the tenant shards).
            let mut response = respond_from_front(waiter.id, &outcome.front, outcome.from_cache);
            response.coalesced = waiter.coalesced;
            response.queue_wait_micros = queue_wait.as_micros() as u64;
            response.solve_micros = solve_micros;
            response
        };
        rpo_obs::histogram!("serve.latency").record(waiter.submitted.elapsed());
        (waiter.respond)(response);
    }
    true
}
