//! Algorithm 2: optimal reliability under a period bound on fully homogeneous
//! platforms.
//!
//! The dynamic program is the one of Algorithm 1, restricted to intervals that
//! respect the period bound: an interval `τ_{j+1} … τ_i` is admissible iff
//! `max(o_j / b, Σ w / s, o_i / b) ≤ P` (its incoming communication, its
//! computation on one processor, and its outgoing communication all fit within
//! one period). The admissibility test reads its interval metrics from the
//! shared [`IntervalOracle`] in O(1).

use rpo_model::{IntervalOracle, Platform, TaskChain};

use crate::algo1::{
    reliability_dp, reliability_dp_scratch, DpFilter, DpKernel, DpScratch, OptimalMapping,
};
use crate::{AlgoError, Result};

/// Algorithm 2: computes a mapping of maximal reliability among those whose
/// worst-case period does not exceed `period_bound`, on a fully homogeneous
/// platform, in time `O(n² p K)`.
///
/// # Errors
///
/// * [`AlgoError::HeterogeneousPlatform`] if the platform is not homogeneous;
/// * [`AlgoError::InvalidBound`] if the bound is not a positive finite number;
/// * [`AlgoError::NoFeasibleMapping`] if no partition of the chain respects
///   the period bound.
pub fn optimize_reliability_with_period_bound(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
) -> Result<OptimalMapping> {
    let oracle = IntervalOracle::new(chain, platform);
    optimize_reliability_with_period_bound_with_oracle(&oracle, chain, platform, period_bound)
}

/// Algorithm 2 against a prebuilt [`IntervalOracle`] (shared by the portfolio
/// backends and by the period minimizer's binary search).
///
/// # Errors
///
/// Same as [`optimize_reliability_with_period_bound`].
pub fn optimize_reliability_with_period_bound_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
) -> Result<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if !(period_bound.is_finite() && period_bound > 0.0) {
        return Err(AlgoError::InvalidBound("period bound"));
    }
    reliability_dp(oracle, chain, platform, DpFilter::PeriodBound(period_bound))
        .ok_or(AlgoError::NoFeasibleMapping)
}

/// Algorithm 2 against caller-owned [`DpScratch`]: the period minimizer's
/// binary search passes the same scratch to every probe, so the DP arenas
/// are allocated once and the admissible-interval cuts are warm-started from
/// the previous probe instead of re-derived from scratch. Batch callers (the
/// portfolio engine's scratch pool) likewise reuse the arenas across
/// instances — allocation reuse only; call [`DpScratch::reset`] between
/// instances, as the pool does.
///
/// # Errors
///
/// Same as [`optimize_reliability_with_period_bound`].
pub fn optimize_with_period_bound_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    scratch: &mut DpScratch,
) -> Result<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if !(period_bound.is_finite() && period_bound > 0.0) {
        return Err(AlgoError::InvalidBound("period bound"));
    }
    reliability_dp_scratch(
        oracle,
        chain,
        platform,
        DpFilter::PeriodBound(period_bound),
        DpKernel::crate_default(),
        scratch,
    )
    .ok_or(AlgoError::NoFeasibleMapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize_reliability_homogeneous;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn bound_is_respected_by_returned_mapping() {
        let c = chain();
        let p = platform(6, 3);
        for bound in [40.0, 45.0, 60.0, 105.0] {
            let sol = optimize_reliability_with_period_bound(&c, &p, bound).unwrap();
            let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
            assert!(
                eval.worst_case_period <= bound + 1e-12,
                "period {} exceeds bound {bound}",
                eval.worst_case_period
            );
            assert!((sol.reliability - eval.reliability).abs() < 1e-12);
        }
    }

    #[test]
    fn infeasible_when_one_task_exceeds_the_bound() {
        let c = chain(); // largest task work = 40
        let p = platform(6, 3);
        assert_eq!(
            optimize_reliability_with_period_bound(&c, &p, 39.0).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn large_bound_recovers_unconstrained_optimum() {
        let c = chain();
        let p = platform(6, 3);
        let constrained = optimize_reliability_with_period_bound(&c, &p, 1e9).unwrap();
        let unconstrained = optimize_reliability_homogeneous(&c, &p).unwrap();
        assert!((constrained.reliability - unconstrained.reliability).abs() < 1e-15);
    }

    #[test]
    fn tighter_bounds_never_increase_reliability() {
        let c = chain();
        let p = platform(6, 3);
        let mut previous = f64::INFINITY;
        for bound in [200.0, 105.0, 70.0, 45.0, 40.0] {
            let sol = optimize_reliability_with_period_bound(&c, &p, bound).unwrap();
            assert!(sol.reliability <= previous + 1e-15);
            previous = sol.reliability;
        }
    }

    #[test]
    fn matches_brute_force_under_period_bound() {
        let c = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0)]).unwrap();
        let p = platform(4, 2);
        for bound in [30.0, 40.0, 66.0] {
            let sol = optimize_reliability_with_period_bound(&c, &p, bound).unwrap();
            let brute = crate::exact::brute_force(&c, &p, bound, f64::INFINITY).unwrap();
            assert!(
                (sol.reliability - brute.reliability).abs() < 1e-12,
                "bound {bound}: dp {} vs brute force {}",
                sol.reliability,
                brute.reliability
            );
        }
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let c = chain();
        let p = platform(4, 2);
        assert_eq!(
            optimize_reliability_with_period_bound(&c, &p, 0.0).unwrap_err(),
            AlgoError::InvalidBound("period bound")
        );
        assert_eq!(
            optimize_reliability_with_period_bound(&c, &p, f64::NAN).unwrap_err(),
            AlgoError::InvalidBound("period bound")
        );
        let het = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            optimize_reliability_with_period_bound(&c, &het, 100.0).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
    }

    #[test]
    fn period_bound_forces_smaller_intervals() {
        let c = chain();
        let p = platform(8, 1); // no replication, plenty of processors
        let relaxed = optimize_reliability_with_period_bound(&c, &p, 1000.0).unwrap();
        let tight = optimize_reliability_with_period_bound(&c, &p, 40.0).unwrap();
        assert!(tight.mapping.num_intervals() > relaxed.mapping.num_intervals());
    }

    #[test]
    fn shared_oracle_binary_search_matches_fresh_oracles() {
        let c = chain();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        for bound in [45.0, 70.0, 105.0] {
            let fresh = optimize_reliability_with_period_bound(&c, &p, bound).unwrap();
            let shared =
                optimize_reliability_with_period_bound_with_oracle(&oracle, &c, &p, bound).unwrap();
            assert_eq!(fresh.reliability, shared.reliability);
        }
    }
}
