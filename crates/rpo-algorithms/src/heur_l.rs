//! Heur-L (Algorithm 3): latency-oriented interval computation.
//!
//! To split the chain into `m` intervals, Heur-L cuts the chain after the
//! `m − 1` tasks with the smallest output-communication costs, so that the
//! total communication added to the latency is as small as possible.

use rpo_model::{IntervalOracle, IntervalPartition, TaskChain};

/// The shared core: cuts after the `num_intervals − 1` boundaries with the
/// smallest output sizes, read through `output_size`.
fn partition_by_cheapest_cuts(
    n: usize,
    num_intervals: usize,
    output_size: impl Fn(usize) -> f64,
) -> IntervalPartition {
    assert!(
        (1..=n).contains(&num_intervals),
        "number of intervals must be within 1..={n}, got {num_intervals}"
    );
    // Candidate cut points are after tasks 0 .. n-2; sort them by increasing
    // output-communication cost (ties broken by position, as in the paper's
    // "increasing order of placement in the chain").
    let mut candidates: Vec<usize> = (0..n.saturating_sub(1)).collect();
    candidates.sort_by(|&a, &b| {
        output_size(a)
            .partial_cmp(&output_size(b))
            .expect("finite communication costs")
            .then(a.cmp(&b))
    });
    let mut cuts: Vec<usize> = candidates.into_iter().take(num_intervals - 1).collect();
    cuts.sort_unstable();
    IntervalPartition::from_cut_points(&cuts, n)
        .expect("cut points taken from 0..n-1 always form a valid partition")
}

/// Computes the Heur-L partition of `chain` into exactly `num_intervals`
/// intervals.
///
/// # Panics
///
/// Panics if `num_intervals` is zero or exceeds the number of tasks.
pub fn heur_l_partition(chain: &TaskChain, num_intervals: usize) -> IntervalPartition {
    partition_by_cheapest_cuts(chain.len(), num_intervals, |i| chain.output_size(i))
}

/// Heur-L reading the boundary communication costs from a prebuilt
/// [`IntervalOracle`].
///
/// # Panics
///
/// Panics if `num_intervals` is zero or exceeds the number of tasks.
pub fn heur_l_partition_with_oracle(
    oracle: &IntervalOracle,
    num_intervals: usize,
) -> IntervalPartition {
    partition_by_cheapest_cuts(oracle.len(), num_intervals, |i| oracle.output_size(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> TaskChain {
        // Output costs: 5, 1, 4, 2, 3 (last one unused as a cut candidate).
        TaskChain::from_pairs(&[
            (10.0, 5.0),
            (20.0, 1.0),
            (30.0, 4.0),
            (40.0, 2.0),
            (50.0, 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn one_interval_is_the_whole_chain() {
        let p = heur_l_partition(&chain(), 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.cut_points(), Vec::<usize>::new());
    }

    #[test]
    fn cuts_are_placed_at_smallest_communications() {
        let c = chain();
        // 2 intervals: single cut after task 1 (cost 1).
        assert_eq!(heur_l_partition(&c, 2).cut_points(), vec![1]);
        // 3 intervals: cuts after tasks 1 and 3 (costs 1 and 2).
        assert_eq!(heur_l_partition(&c, 3).cut_points(), vec![1, 3]);
        // 4 intervals: cuts after tasks 1, 3 and 2 (costs 1, 2, 4) in chain order.
        assert_eq!(heur_l_partition(&c, 4).cut_points(), vec![1, 2, 3]);
    }

    #[test]
    fn n_intervals_is_the_finest_partition() {
        let c = chain();
        let p = heur_l_partition(&c, 5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.cut_points(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn total_boundary_communication_is_minimal() {
        // Among all partitions into m intervals, Heur-L minimizes the sum of
        // boundary communications by construction; verify against brute force.
        let c = chain();
        let n = c.len();
        for m in 1..=n {
            let heur = heur_l_partition(&c, m);
            let heur_comm = heur.total_boundary_output(&c);
            // Brute-force all partitions with m intervals.
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << (n - 1)) {
                if mask.count_ones() as usize != m - 1 {
                    continue;
                }
                let cuts: Vec<usize> = (0..n - 1).filter(|&i| mask & (1 << i) != 0).collect();
                let p = IntervalPartition::from_cut_points(&cuts, n).unwrap();
                best = best.min(p.total_boundary_output(&c));
            }
            assert!((heur_comm - best).abs() < 1e-12, "m = {m}");
        }
    }

    #[test]
    fn ties_are_broken_by_chain_position() {
        let c = TaskChain::from_pairs(&[(1.0, 2.0), (1.0, 2.0), (1.0, 2.0), (1.0, 2.0)]).unwrap();
        assert_eq!(heur_l_partition(&c, 2).cut_points(), vec![0]);
        assert_eq!(heur_l_partition(&c, 3).cut_points(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "number of intervals must be within")]
    fn zero_intervals_panics() {
        heur_l_partition(&chain(), 0);
    }

    #[test]
    #[should_panic(expected = "number of intervals must be within")]
    fn too_many_intervals_panics() {
        heur_l_partition(&chain(), 6);
    }
}
