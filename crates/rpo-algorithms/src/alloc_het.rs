//! Heterogeneous, period-aware allocation of processors to a fixed interval
//! partition (Section 7.2).
//!
//! The general platform variant of Algo-Alloc:
//!
//! 1. processors are considered in increasing order of `λ_u / s_u` (most
//!    reliable per unit of work first); each is given to the *largest*
//!    interval that has no processor yet and whose computation time on that
//!    processor respects the period bound;
//! 2. the remaining processors are then allocated one by one to the interval
//!    with the largest reliability ratio (reliability with this extra
//!    processor divided by the current reliability), again only if the
//!    computation time respects the period bound and the interval holds fewer
//!    than `K` replicas.
//!
//! Optional *allocation constraints* (a task that can only run on certain
//! processors, e.g. because it needs a specific hardware driver) are honoured
//! by checking, before any allocation, that the candidate processor is
//! allowed for every task of the interval.
//!
//! # When to use this, and when to use `algo_het`
//!
//! This allocator is a greedy heuristic with no optimality story, and it
//! only allocates — the partition must come from elsewhere (Heur-L/Heur-P).
//! On platforms with **few distinct processor classes** — the common real
//! shape — the exact class-level dynamic program
//! [`crate::algo_het::algo_het`] jointly optimizes the partition *and* the
//! per-class replica counts, and is never less reliable than the greedy
//! pipeline built on this allocator (`BENCH_het.json` measures the gain at
//! the paper's 10-processor setup). The greedy path remains the right tool
//! when the class count exceeds [`crate::algo_het::MAX_DP_CLASSES`] (every
//! processor its own class, as in the paper's fully random speeds), when
//! per-task *allocation constraints* must be honoured (the class DP has no
//! notion of them), or as the DP's own fallback and upper-bound pruner.

use rpo_model::{
    Interval, IntervalOracle, IntervalPartition, MappedInterval, Mapping, Platform, ProcessorId,
    TaskChain,
};

use crate::{AlgoError, Result};

/// Restricts which processors may execute which task.
///
/// The default ([`AllocationConstraints::none`]) allows every processor for
/// every task.
#[derive(Debug, Clone, Default)]
pub struct AllocationConstraints {
    /// `forbidden[t]` = processors that may **not** execute task `t`.
    /// Missing entries mean "no restriction".
    forbidden: Vec<Vec<ProcessorId>>,
}

impl AllocationConstraints {
    /// No restriction: every task may run on every processor.
    pub fn none() -> Self {
        AllocationConstraints::default()
    }

    /// Forbids task `task` from running on processor `processor`.
    pub fn forbid(&mut self, task: usize, processor: ProcessorId) {
        if self.forbidden.len() <= task {
            self.forbidden.resize(task + 1, Vec::new());
        }
        self.forbidden[task].push(processor);
    }

    /// Whether processor `u` may execute every task of `interval`.
    pub fn allows(&self, interval: Interval, u: ProcessorId) -> bool {
        interval
            .task_indices()
            .all(|t| self.forbidden.get(t).is_none_or(|list| !list.contains(&u)))
    }
}

/// Section 7.2 allocation: assigns heterogeneous processors to the intervals
/// of `partition` under a period bound, maximizing reliability greedily.
///
/// # Errors
///
/// * [`AlgoError::InvalidBound`] if the period bound is not positive and
///   finite;
/// * [`AlgoError::NoFeasibleMapping`] if some interval cannot receive any
///   processor without violating the period bound (or the allocation
///   constraints).
pub fn algo_alloc_heterogeneous(
    chain: &TaskChain,
    platform: &Platform,
    partition: &IntervalPartition,
    period_bound: f64,
    constraints: &AllocationConstraints,
) -> Result<Mapping> {
    let oracle = IntervalOracle::new(chain, platform);
    algo_alloc_heterogeneous_with_oracle(
        &oracle,
        chain,
        platform,
        partition,
        period_bound,
        constraints,
    )
}

/// Section 7.2 allocation against a prebuilt [`IntervalOracle`]: interval
/// works, replica-set reliabilities and the per-processor period checks are
/// all O(1) oracle reads.
///
/// # Errors
///
/// Same as [`algo_alloc_heterogeneous`].
pub fn algo_alloc_heterogeneous_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    partition: &IntervalPartition,
    period_bound: f64,
    constraints: &AllocationConstraints,
) -> Result<Mapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !(period_bound.is_finite() && period_bound > 0.0) {
        return Err(AlgoError::InvalidBound("period bound"));
    }
    let m = partition.len();
    let p = platform.num_processors();
    if p < m {
        return Err(AlgoError::NotEnoughProcessors {
            intervals: m,
            processors: p,
        });
    }
    let k_max = platform.max_replication();

    // Replica sets under construction, one per interval.
    let mut assigned: Vec<Vec<ProcessorId>> = vec![Vec::new(); m];
    let order = platform.processors_by_reliability_ratio();
    let mut remaining: Vec<ProcessorId> = Vec::new();

    // Phase 1: most reliable processors first, each to the largest interval
    // that has no processor yet and that it can execute within the period.
    let mut order_iter = order.into_iter();
    while assigned.iter().any(Vec::is_empty) {
        let Some(u) = order_iter.next() else {
            return Err(AlgoError::NoFeasibleMapping);
        };
        let interval_work =
            |j: usize| oracle.work(partition.interval(j).first, partition.interval(j).last);
        let candidate = (0..m)
            .filter(|&j| assigned[j].is_empty())
            .filter(|&j| constraints.allows(partition.interval(j), u))
            .filter(|&j| interval_work(j) / platform.speed(u) <= period_bound)
            .max_by(|&a, &b| {
                interval_work(a)
                    .partial_cmp(&interval_work(b))
                    .expect("finite works")
                    .then(b.cmp(&a))
            });
        match candidate {
            Some(j) => assigned[j].push(u),
            None => remaining.push(u),
        }
    }
    remaining.extend(order_iter);

    // Phase 2: remaining processors go to the interval with the best
    // reliability ratio, subject to the period bound and the replication cap.
    for u in remaining {
        let candidate = (0..m)
            .filter(|&j| assigned[j].len() < k_max)
            .filter(|&j| constraints.allows(partition.interval(j), u))
            .filter(|&j| {
                let itv = partition.interval(j);
                oracle.work(itv.first, itv.last) / platform.speed(u) <= period_bound
            })
            .map(|j| {
                let itv = partition.interval(j);
                let current = oracle.replicated_set_reliability(&assigned[j], itv.first, itv.last);
                // One more replica multiplies the failure product by
                // (1 − block_u); no need to re-walk the whole set.
                let improved = 1.0
                    - (1.0 - current) * (1.0 - oracle.block_reliability(u, itv.first, itv.last));
                (j, improved / current)
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite ratios")
                    .then(b.0.cmp(&a.0))
            });
        if let Some((j, _)) = candidate {
            assigned[j].push(u);
        }
        // A processor that fits nowhere is simply left unused.
    }

    let mapped = partition
        .intervals()
        .iter()
        .zip(assigned)
        .map(|(&interval, processors)| MappedInterval::new(interval, processors))
        .collect();
    Ok(Mapping::new(mapped, chain, platform)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn het_platform() -> Platform {
        PlatformBuilder::new()
            .processor(4.0, 1e-4) // ratio 2.5e-5
            .processor(2.0, 1e-3) // ratio 5e-4
            .processor(1.0, 1e-5) // ratio 1e-5 (most reliable per work unit)
            .processor(5.0, 1e-3) // ratio 2e-4
            .processor(3.0, 1e-4) // ratio ~3.3e-5
            .bandwidth(1.0)
            .link_failure_rate(1e-5)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn produces_a_valid_mapping_covering_every_interval() {
        let c = chain();
        let p = het_platform();
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        let mapping =
            algo_alloc_heterogeneous(&c, &p, &partition, 100.0, &AllocationConstraints::none())
                .unwrap();
        assert_eq!(mapping.num_intervals(), 2);
        for mi in mapping.intervals() {
            assert!(!mi.processors.is_empty());
            assert!(mi.replication() <= 3);
        }
    }

    #[test]
    fn period_bound_excludes_slow_processors() {
        let c = chain();
        let p = het_platform();
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        // Interval 0 has W = 40, interval 1 has W = 65. With P = 20, only
        // processors of speed >= 3.25 can execute interval 1.
        let mapping =
            algo_alloc_heterogeneous(&c, &p, &partition, 20.0, &AllocationConstraints::none())
                .unwrap();
        for mi in mapping.intervals() {
            for &u in &mi.processors {
                assert!(
                    mi.interval.work(&c) / p.speed(u) <= 20.0 + 1e-12,
                    "processor {u} violates the period bound on interval {:?}",
                    mi.interval
                );
            }
        }
        let eval = MappingEvaluation::evaluate(&c, &p, &mapping);
        assert!(eval.worst_case_period <= 20.0 + 1e-12);
    }

    #[test]
    fn infeasible_when_no_processor_is_fast_enough() {
        let c = chain(); // one interval of total work 105
        let p = het_platform(); // fastest speed 5 -> period 21
        let partition = IntervalPartition::single(4).unwrap();
        let result =
            algo_alloc_heterogeneous(&c, &p, &partition, 20.0, &AllocationConstraints::none());
        assert_eq!(result.unwrap_err(), AlgoError::NoFeasibleMapping);
    }

    #[test]
    fn more_replicas_increase_reliability_monotonically() {
        let c = chain();
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        // Same platform, growing number of processors.
        let mut previous = 0.0;
        for extra in 0..4 {
            let mut builder = PlatformBuilder::new()
                .processor(4.0, 1e-4)
                .processor(1.0, 1e-5)
                .bandwidth(1.0)
                .link_failure_rate(1e-5)
                .max_replication(3);
            for _ in 0..extra {
                builder = builder.processor(2.0, 2e-4);
            }
            let p = builder.build().unwrap();
            let mapping =
                algo_alloc_heterogeneous(&c, &p, &partition, 1e6, &AllocationConstraints::none())
                    .unwrap();
            let r = MappingEvaluation::evaluate(&c, &p, &mapping).reliability;
            assert!(
                r >= previous - 1e-15,
                "adding processors reduced reliability"
            );
            previous = r;
        }
    }

    #[test]
    fn allocation_constraints_are_respected() {
        let c = chain();
        let p = het_platform();
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        // Forbid the most attractive processor (index 2) from running task 3,
        // which belongs to interval 1.
        let mut constraints = AllocationConstraints::none();
        constraints.forbid(3, 2);
        let mapping = algo_alloc_heterogeneous(&c, &p, &partition, 1000.0, &constraints).unwrap();
        assert!(
            !mapping.interval(1).processors.contains(&2),
            "forbidden processor was allocated to the constrained interval"
        );
        // It can still serve interval 0.
        let unconstrained =
            algo_alloc_heterogeneous(&c, &p, &partition, 1000.0, &AllocationConstraints::none())
                .unwrap();
        assert!(unconstrained.processors_used() >= mapping.processors_used());
    }

    #[test]
    fn invalid_bound_and_too_few_processors_are_rejected() {
        let c = chain();
        let p = het_platform();
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        assert_eq!(
            algo_alloc_heterogeneous(&c, &p, &partition, -1.0, &AllocationConstraints::none())
                .unwrap_err(),
            AlgoError::InvalidBound("period bound")
        );
        let tiny = PlatformBuilder::new()
            .processor(1.0, 1e-5)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            algo_alloc_heterogeneous(&c, &tiny, &partition, 1e6, &AllocationConstraints::none())
                .unwrap_err(),
            AlgoError::NotEnoughProcessors {
                intervals: 2,
                processors: 1
            }
        );
    }

    #[test]
    fn homogeneous_platform_is_a_special_case() {
        // On a homogeneous platform the heterogeneous allocator should match
        // the optimal Algo-Alloc reliability (both allocate greedily by ratio).
        let c = chain();
        let p = PlatformBuilder::new()
            .identical_processors(6, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(3)
            .build()
            .unwrap();
        let partition = IntervalPartition::from_cut_points(&[1], 4).unwrap();
        let het = algo_alloc_heterogeneous(&c, &p, &partition, 1e9, &AllocationConstraints::none())
            .unwrap();
        let hom = crate::alloc::algo_alloc(&c, &p, &partition).unwrap();
        let r_het = MappingEvaluation::evaluate(&c, &p, &het).reliability;
        let r_hom = MappingEvaluation::evaluate(&c, &p, &hom).reliability;
        assert!((r_het - r_hom).abs() < 1e-14);
    }
}
