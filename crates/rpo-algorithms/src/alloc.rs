//! Algo-Alloc (Theorem 4): optimal allocation of homogeneous processors to a
//! fixed interval partition.
//!
//! Once the partition into intervals is fixed, the period and latency of a
//! homogeneous mapping no longer depend on the processor assignment — only
//! the reliability does. Algo-Alloc first gives one processor to every
//! interval, then repeatedly gives one more processor to the interval whose
//! reliability *ratio* (reliability with one more replica divided by current
//! reliability) is largest, until processors run out or every interval holds
//! `K` replicas. Theorem 4 proves this greedy choice optimal.
//!
//! The replica-block reliability of each interval is read once from the
//! [`IntervalOracle`]; the greedy loop then maintains the failure product
//! `(1 − r)^q` per interval incrementally, so each greedy step is O(m) with
//! no transcendentals at all.

use rpo_model::{IntervalOracle, IntervalPartition, MappedInterval, Mapping, Platform, TaskChain};

use crate::{AlgoError, Result};

/// Replication counts chosen for each interval (same order as the partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationPlan {
    /// Number of replicas per interval.
    pub replicas: Vec<usize>,
}

impl AllocationPlan {
    /// Materializes the plan into a [`Mapping`] by assigning processor
    /// identifiers `0, 1, 2, …` in interval order (the platform being
    /// homogeneous, the identity of the processors is irrelevant).
    pub fn into_mapping(
        self,
        partition: &IntervalPartition,
        chain: &TaskChain,
        platform: &Platform,
    ) -> Result<Mapping> {
        let mut next = 0usize;
        let mapped = partition
            .intervals()
            .iter()
            .zip(&self.replicas)
            .map(|(&interval, &q)| {
                let processors: Vec<usize> = (next..next + q).collect();
                next += q;
                MappedInterval::new(interval, processors)
            })
            .collect();
        Ok(Mapping::new(mapped, chain, platform)?)
    }
}

/// Algo-Alloc: computes the optimal number of replicas per interval of
/// `partition` on a homogeneous platform, and returns the corresponding
/// mapping.
///
/// # Errors
///
/// * [`AlgoError::HeterogeneousPlatform`] if the platform is not homogeneous;
/// * [`AlgoError::NotEnoughProcessors`] if there are fewer processors than
///   intervals.
pub fn algo_alloc(
    chain: &TaskChain,
    platform: &Platform,
    partition: &IntervalPartition,
) -> Result<Mapping> {
    let oracle = IntervalOracle::new(chain, platform);
    algo_alloc_with_oracle(&oracle, chain, platform, partition)
}

/// Algo-Alloc against a prebuilt [`IntervalOracle`].
///
/// # Errors
///
/// Same as [`algo_alloc`].
pub fn algo_alloc_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    partition: &IntervalPartition,
) -> Result<Mapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    let plan = algo_alloc_plan_with_oracle(oracle, partition)?;
    plan.into_mapping(partition, chain, platform)
}

/// The replica-count computation behind [`algo_alloc`], exposed for tests and
/// ablation benchmarks.
pub fn algo_alloc_plan(
    chain: &TaskChain,
    platform: &Platform,
    partition: &IntervalPartition,
) -> Result<AllocationPlan> {
    let oracle = IntervalOracle::new(chain, platform);
    algo_alloc_plan_with_oracle(&oracle, partition)
}

/// The replica-count computation against a prebuilt [`IntervalOracle`].
///
/// # Errors
///
/// Same as [`algo_alloc_plan`].
pub fn algo_alloc_plan_with_oracle(
    oracle: &IntervalOracle,
    partition: &IntervalPartition,
) -> Result<AllocationPlan> {
    debug_assert!(
        partition.chain_len() == oracle.len(),
        "partition and oracle cover different chains"
    );
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    let m = partition.len();
    let p = oracle.num_processors();
    if p < m {
        return Err(AlgoError::NotEnoughProcessors {
            intervals: m,
            processors: p,
        });
    }
    // Per-interval replica-block reliability: one oracle read each.
    let blocks: Vec<f64> = partition
        .intervals()
        .iter()
        .map(|itv| oracle.class_block_reliability(0, itv.first, itv.last))
        .collect();
    Ok(AllocationPlan {
        replicas: greedy_replicas(&blocks, p, oracle.max_replication()),
    })
}

/// The Theorem 4 greedy core on precomputed replica-block reliabilities:
/// one processor per interval first, then each spare to the interval with
/// the largest reliability ratio, tracking the failure product `(1 − r)^q`
/// incrementally. Requires `blocks.len() ≤ p`.
pub(crate) fn greedy_replicas(blocks: &[f64], p: usize, k_max: usize) -> Vec<usize> {
    let m = blocks.len();
    debug_assert!(m <= p, "more intervals than processors");
    let mut replicas = vec![1usize; m];
    let mut remaining = p - m;
    let mut all_fail: Vec<f64> = blocks.iter().map(|&b| 1.0 - b).collect();

    while remaining > 0 {
        // Interval with the best reliability ratio among those below K.
        let candidate = (0..m)
            .filter(|&j| replicas[j] < k_max)
            .map(|j| {
                let current = 1.0 - all_fail[j];
                let next = 1.0 - all_fail[j] * (1.0 - blocks[j]);
                (j, next / current)
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite ratios")
                    .then(b.0.cmp(&a.0))
            });
        match candidate {
            None => break, // every interval already holds K replicas
            Some((j, _)) => {
                replicas[j] += 1;
                all_fail[j] *= 1.0 - blocks[j];
                remaining -= 1;
            }
        }
    }
    replicas
}

/// Reference allocator: exhaustively tries every replica-count vector
/// (each interval between 1 and `K` replicas, total at most `p`) and returns
/// the most reliable mapping. Exponential; used to validate [`algo_alloc`] on
/// small instances and in ablation benchmarks.
pub fn exhaustive_alloc(
    chain: &TaskChain,
    platform: &Platform,
    partition: &IntervalPartition,
) -> Result<Mapping> {
    let oracle = IntervalOracle::new(chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    let m = partition.len();
    let p = oracle.num_processors();
    let k_max = oracle.max_replication();
    if p < m {
        return Err(AlgoError::NotEnoughProcessors {
            intervals: m,
            processors: p,
        });
    }

    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut counts = vec![1usize; m];
    loop {
        let used: usize = counts.iter().sum();
        if used <= p {
            let reliability: f64 = partition
                .intervals()
                .iter()
                .zip(&counts)
                .map(|(&itv, &q)| oracle.replicated_reliability(itv.first, itv.last, q))
                .product();
            if best.as_ref().is_none_or(|(_, r)| reliability > *r) {
                best = Some((counts.clone(), reliability));
            }
        }
        // Next vector in mixed radix {1..K}^m.
        let mut idx = 0;
        loop {
            if idx == m {
                let (counts, _) = best.expect("the all-ones vector is always feasible");
                return AllocationPlan { replicas: counts }
                    .into_mapping(partition, chain, platform);
            }
            if counts[idx] < k_max {
                counts[idx] += 1;
                break;
            }
            counts[idx] = 1;
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{reliability, MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[
            (30.0, 2.0),
            (10.0, 8.0),
            (25.0, 1.0),
            (40.0, 3.0),
            (5.0, 2.0),
        ])
        .unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn allocates_every_processor_when_k_allows() {
        let c = chain();
        let p = platform(7, 3);
        let partition = IntervalPartition::from_cut_points(&[1, 3], 5).unwrap();
        let mapping = algo_alloc(&c, &p, &partition).unwrap();
        assert_eq!(mapping.processors_used(), 7);
        assert_eq!(mapping.num_intervals(), 3);
        for mi in mapping.intervals() {
            assert!(mi.replication() >= 1 && mi.replication() <= 3);
        }
    }

    #[test]
    fn stops_at_k_replicas_per_interval() {
        let c = chain();
        let p = platform(10, 2);
        let partition = IntervalPartition::from_cut_points(&[1, 3], 5).unwrap();
        let mapping = algo_alloc(&c, &p, &partition).unwrap();
        // 3 intervals, K = 2: at most 6 processors can be used.
        assert_eq!(mapping.processors_used(), 6);
        for mi in mapping.intervals() {
            assert_eq!(mi.replication(), 2);
        }
    }

    #[test]
    fn fails_when_fewer_processors_than_intervals() {
        let c = chain();
        let p = platform(2, 3);
        let partition = IntervalPartition::from_cut_points(&[1, 3], 5).unwrap();
        assert_eq!(
            algo_alloc(&c, &p, &partition).unwrap_err(),
            AlgoError::NotEnoughProcessors {
                intervals: 3,
                processors: 2
            }
        );
    }

    #[test]
    fn rejects_heterogeneous_platform() {
        let c = chain();
        let p = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .processor(1.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        let partition = IntervalPartition::from_cut_points(&[1], 5).unwrap();
        assert_eq!(
            algo_alloc(&c, &p, &partition).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
    }

    #[test]
    fn greedy_matches_exhaustive_search() {
        let c = chain();
        for (p_count, k) in [(4, 2), (5, 3), (7, 3), (8, 2), (9, 3)] {
            let p = platform(p_count, k);
            for cuts in [vec![0], vec![1, 3], vec![0, 2, 3]] {
                let partition = IntervalPartition::from_cut_points(&cuts, 5).unwrap();
                if partition.len() > p_count {
                    continue;
                }
                let greedy = algo_alloc(&c, &p, &partition).unwrap();
                let exhaustive = exhaustive_alloc(&c, &p, &partition).unwrap();
                let rg = reliability::mapping_reliability(&c, &p, &greedy);
                let re = reliability::mapping_reliability(&c, &p, &exhaustive);
                assert!(
                    (rg - re).abs() < 1e-14,
                    "p = {p_count}, K = {k}, cuts {cuts:?}: greedy {rg} vs exhaustive {re}"
                );
            }
        }
    }

    #[test]
    fn big_intervals_get_replicas_first() {
        // One huge interval and one tiny one, a single spare processor: the
        // spare must go to the huge (least reliable) interval.
        let c = TaskChain::from_pairs(&[(100.0, 1.0), (1.0, 0.0)]).unwrap();
        let p = platform(3, 2);
        let partition = IntervalPartition::from_cut_points(&[0], 2).unwrap();
        let mapping = algo_alloc(&c, &p, &partition).unwrap();
        assert_eq!(mapping.interval(0).replication(), 2);
        assert_eq!(mapping.interval(1).replication(), 1);
    }

    #[test]
    fn allocation_does_not_change_period_or_latency() {
        let c = chain();
        let partition = IntervalPartition::from_cut_points(&[1, 3], 5).unwrap();
        let small = platform(3, 3);
        let large = platform(9, 3);
        let m_small = algo_alloc(&c, &small, &partition).unwrap();
        let m_large = algo_alloc(&c, &large, &partition).unwrap();
        let e_small = MappingEvaluation::evaluate(&c, &small, &m_small);
        let e_large = MappingEvaluation::evaluate(&c, &large, &m_large);
        assert!((e_small.worst_case_period - e_large.worst_case_period).abs() < 1e-12);
        assert!((e_small.worst_case_latency - e_large.worst_case_latency).abs() < 1e-12);
        assert!(e_large.reliability >= e_small.reliability);
    }
}
