//! Energy-budgeted variant of the Section 7 heuristics — the "power
//! consumption" extension listed as future work in the paper's conclusion.
//!
//! Replication drives the reliability up but multiplies the energy spent per
//! data set. Given a [`PowerModel`] and an energy budget per data set, this
//! heuristic runs the usual two-step scheme (interval computation for every
//! interval count, then processor allocation), and then **prunes replicas**
//! greedily while the budget is exceeded: at each step it removes the replica
//! whose removal costs the least reliability per joule recovered, never going
//! below one replica per interval. Among all interval counts, the most
//! reliable budget- and bound-compliant mapping is returned.

use rpo_model::energy::{self, PowerModel};
use rpo_model::{IntervalOracle, MappedInterval, Mapping, MappingEvaluation, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::heuristic::{run_heuristic_with_oracle, HeuristicConfig, HeuristicSolution};
use crate::{AlgoError, Result};

/// Configuration of an energy-budgeted heuristic run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyAwareConfig {
    /// The underlying timing/reliability configuration.
    pub base: HeuristicConfig,
    /// The platform power model.
    pub power_model: PowerModel,
    /// Maximum energy allowed per data set.
    pub energy_budget: f64,
}

/// A solution of the energy-budgeted heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyAwareSolution {
    /// The pruned mapping.
    pub mapping: Mapping,
    /// Its five-criteria evaluation.
    pub evaluation: MappingEvaluation,
    /// Its energy evaluation under the configured power model.
    pub energy: rpo_model::EnergyEvaluation,
}

/// Removes replicas from `mapping` until its energy per data set fits within
/// the budget, choosing at each step the replica whose removal loses the least
/// reliability per unit of energy saved. Returns `None` if even the
/// one-replica-per-interval skeleton exceeds the budget.
fn prune_to_budget(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    mapping: &Mapping,
    model: &PowerModel,
    budget: f64,
) -> Option<Mapping> {
    let mut intervals: Vec<MappedInterval> = mapping.intervals().to_vec();

    loop {
        let current = Mapping::new(intervals.clone(), chain, platform)
            .expect("pruning preserves structural validity");
        let current_energy = energy::energy_per_dataset(chain, platform, &current, model);
        if current_energy <= budget {
            return Some(current);
        }
        let current_reliability = oracle.mapping_reliability(&current);

        // Candidate removals: any replica of any interval that has more than one.
        let mut best: Option<(usize, usize, f64)> = None; // (interval, position, score)
        for (j, mi) in intervals.iter().enumerate() {
            if mi.processors.len() <= 1 {
                continue;
            }
            for position in 0..mi.processors.len() {
                let mut candidate = intervals.clone();
                candidate[j].processors.remove(position);
                let candidate_mapping = Mapping::new(candidate, chain, platform)
                    .expect("removal preserves structural validity");
                let reliability_loss =
                    current_reliability - oracle.mapping_reliability(&candidate_mapping);
                let energy_saved = current_energy
                    - energy::energy_per_dataset(chain, platform, &candidate_mapping, model);
                if energy_saved <= 0.0 {
                    continue;
                }
                let score = reliability_loss / energy_saved;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((j, position, score));
                }
            }
        }
        match best {
            Some((j, position, _)) => {
                intervals[j].processors.remove(position);
            }
            // Nothing left to remove: the skeleton itself exceeds the budget.
            None => return None,
        }
    }
}

/// Runs one of the Section 7 heuristics under an additional energy budget per
/// data set, returning the most reliable mapping that satisfies the period,
/// latency and energy constraints.
///
/// # Errors
///
/// * [`AlgoError::InvalidBound`] if the energy budget is not positive;
/// * the errors of [`run_heuristic`];
/// * [`AlgoError::NoFeasibleMapping`] if no candidate fits all three budgets.
pub fn run_energy_aware_heuristic(
    chain: &TaskChain,
    platform: &Platform,
    config: &EnergyAwareConfig,
) -> Result<EnergyAwareSolution> {
    if config.energy_budget <= 0.0 || config.energy_budget.is_nan() {
        return Err(AlgoError::InvalidBound("energy budget"));
    }
    let oracle = IntervalOracle::new(chain, platform);
    // Start from the unbudgeted heuristic solution for every interval count:
    // run_heuristic already returns the best one; to keep the search broad we
    // prune that best candidate and also the single-interval fallback.
    let base: HeuristicSolution =
        run_heuristic_with_oracle(&oracle, chain, platform, &config.base)?;

    let pruned = prune_to_budget(
        &oracle,
        chain,
        platform,
        &base.mapping,
        &config.power_model,
        config.energy_budget,
    )
    .ok_or(AlgoError::NoFeasibleMapping)?;

    let evaluation = oracle.evaluate(&pruned);
    if !evaluation.meets(config.base.period_bound, config.base.latency_bound) {
        return Err(AlgoError::NoFeasibleMapping);
    }
    let energy = energy::evaluate_energy(chain, platform, &pruned, &config.power_model);
    Ok(EnergyAwareSolution {
        mapping: pruned,
        evaluation,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_heuristic, IntervalHeuristic};
    use rpo_model::PlatformBuilder;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[
            (30.0, 2.0),
            (10.0, 8.0),
            (25.0, 1.0),
            (40.0, 3.0),
            (15.0, 2.0),
        ])
        .unwrap()
    }

    fn platform() -> Platform {
        PlatformBuilder::new()
            .identical_processors(8, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(3)
            .build()
            .unwrap()
    }

    fn base_config() -> HeuristicConfig {
        HeuristicConfig {
            interval_heuristic: IntervalHeuristic::MinPeriod,
            period_bound: 80.0,
            latency_bound: 200.0,
        }
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let c = chain();
        let p = platform();
        let unbudgeted = run_heuristic(&c, &p, &base_config()).unwrap();
        let solution = run_energy_aware_heuristic(
            &c,
            &p,
            &EnergyAwareConfig {
                base: base_config(),
                power_model: PowerModel::cubic(),
                energy_budget: 1e9,
            },
        )
        .unwrap();
        assert_eq!(solution.mapping, unbudgeted.mapping);
    }

    #[test]
    fn tight_budget_is_respected_and_costs_reliability() {
        let c = chain();
        let p = platform();
        let model = PowerModel::cubic();
        let unbudgeted = run_heuristic(&c, &p, &base_config()).unwrap();
        let full_energy =
            rpo_model::energy::energy_per_dataset(&c, &p, &unbudgeted.mapping, &model);

        let budget = full_energy * 0.6;
        let solution = run_energy_aware_heuristic(
            &c,
            &p,
            &EnergyAwareConfig {
                base: base_config(),
                power_model: model,
                energy_budget: budget,
            },
        )
        .unwrap();
        assert!(solution.energy.energy_per_dataset <= budget + 1e-9);
        assert!(solution.evaluation.reliability <= unbudgeted.evaluation.reliability + 1e-15);
        assert!(solution.mapping.processors_used() < unbudgeted.mapping.processors_used());
        // Timing bounds still hold.
        assert!(solution.evaluation.meets(80.0, 200.0));
    }

    #[test]
    fn impossible_budget_is_reported() {
        let c = chain();
        let p = platform();
        // Even one replica per interval needs at least total-work energy under
        // the cubic model on unit-speed processors.
        let result = run_energy_aware_heuristic(
            &c,
            &p,
            &EnergyAwareConfig {
                base: base_config(),
                power_model: PowerModel::cubic(),
                energy_budget: 1.0,
            },
        );
        assert_eq!(result.unwrap_err(), AlgoError::NoFeasibleMapping);
    }

    #[test]
    fn invalid_budget_rejected() {
        let c = chain();
        let p = platform();
        let result = run_energy_aware_heuristic(
            &c,
            &p,
            &EnergyAwareConfig {
                base: base_config(),
                power_model: PowerModel::cubic(),
                energy_budget: -3.0,
            },
        );
        assert_eq!(
            result.unwrap_err(),
            AlgoError::InvalidBound("energy budget")
        );
    }

    #[test]
    fn pruning_is_monotone_in_the_budget() {
        let c = chain();
        let p = platform();
        let model = PowerModel::cubic();
        let unbudgeted = run_heuristic(&c, &p, &base_config()).unwrap();
        let full_energy =
            rpo_model::energy::energy_per_dataset(&c, &p, &unbudgeted.mapping, &model);
        let mut previous_reliability = 0.0;
        for fraction in [0.4, 0.6, 0.8, 1.0] {
            let solution = run_energy_aware_heuristic(
                &c,
                &p,
                &EnergyAwareConfig {
                    base: base_config(),
                    power_model: model,
                    energy_budget: full_energy * fraction,
                },
            )
            .unwrap();
            assert!(
                solution.evaluation.reliability >= previous_reliability - 1e-15,
                "a larger energy budget must not reduce reliability"
            );
            previous_reliability = solution.evaluation.reliability;
        }
    }
}
