//! Algorithm 1: optimal reliability on fully homogeneous platforms.
//!
//! `F(i, k)` is the optimal reliability when mapping the first `i` tasks onto
//! exactly `k` processors; the recurrence tries every possible last interval
//! and every possible replication level `q ≤ min(K, k)` for it:
//!
//! `F(i, k) = max_{j < i, 1 ≤ q ≤ min(K,k)} F(j, k−q) · (1 − (1 − r_comm,j · Π r_l · r_comm,i)^q)`
//!
//! The paper only returns the optimal reliability value; this implementation
//! additionally keeps the dynamic-programming choices and reconstructs an
//! actual [`Mapping`] achieving it.
//!
//! # Kernel structure
//!
//! The dynamic program runs as a **lane-chunked kernel** ([`DpKernel::Chunked`],
//! the default): for each row `i`, the per-`j` factored replica-block
//! reliabilities are gathered into one contiguous scratch buffer
//! ([`IntervalOracle::fill_class_block_row`] — pure multiplications over the
//! oracle's `exp(−ρW_i)·exp(ρW_j)` prefixes), and the `(q, k)` max-update then
//! runs **value-only** as branch-light fixed-width chunks of [`LANES`] plain
//! `f64` arrays whose multiply-and-max bodies LLVM auto-vectorizes — no
//! `unsafe`, no nightly intrinsics, no traceback bookkeeping in the hot loop
//! (winning `(j, q)` choices are recovered afterwards along the optimal path
//! only, by bit-exact candidate re-scan). The pre-chunking scalar sweep is
//! kept as a reference implementation ([`DpKernel::Scalar`], selected
//! crate-wide by the `scalar-kernel` feature); the workspace property tests
//! assert both kernels agree within `1e-12` — and reconstruct identical
//! mappings — on hundreds of seeded instances, and `BENCH_kernel.json`
//! tracks their relative speed.
//!
//! All interval metrics come from the [`IntervalOracle`]; the DP tables are
//! flat arenas indexed by `i·(p+1) + k` held in a reusable [`DpScratch`], so
//! repeated runs (the period minimizer's binary search) reuse allocations and
//! warm-start the per-row admissibility cuts. The recurrence maximizes over
//! factored (ulp-accurate) values; the *reported* reliability of the
//! reconstructed mapping is then recomputed exactly through the oracle's
//! Eq. 9 path, so it always agrees bit-for-bit with
//! [`rpo_model::MappingEvaluation`].

use rpo_model::{Interval, IntervalOracle, MappedInterval, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::{AlgoError, Result};

/// A mapping together with the reliability the dynamic program computed for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalMapping {
    /// The reconstructed mapping.
    pub mapping: Mapping,
    /// Its reliability (Eq. 9), as computed by the dynamic program.
    pub reliability: f64,
}

/// Sentinel for "no recorded choice" in the flat traceback arena. The arena
/// stores packed `(j, q)` choices as `f64` (exact: they fit in 32 bits, far
/// below 2^53) so the kernel's compare-and-select lanes are homogeneous
/// `f64` operations — mixed `f64`/`u32` selects defeat LLVM's vectorizer.
const NO_CHOICE: f64 = u32::MAX as f64;

/// Chunk width of the lane-chunked max-update: eight `f64`s, i.e. two AVX2
/// vectors or one AVX-512 vector — LLVM splits the fixed-size-array loops
/// into whatever width the target supports.
pub const LANES: usize = 8;

/// Interval admissibility of the shared dynamic program: Algorithm 1 admits
/// every interval, Algorithm 2 only those fitting a worst-case period bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum DpFilter {
    /// Every interval is admissible (Algorithm 1).
    All,
    /// `max(o_in/b, W/s, o_out/b) ≤ bound` (Algorithm 2). Decomposed inside
    /// the DP into a per-boundary communication flag, a per-row outgoing
    /// check, and a work-prefix cut for the first admissible interval start —
    /// inadmissible intervals cost nothing.
    PeriodBound(f64),
}

impl DpFilter {
    fn bound(self) -> f64 {
        match self {
            DpFilter::All => f64::INFINITY,
            DpFilter::PeriodBound(bound) => bound,
        }
    }
}

/// Which implementation of the DP inner sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DpKernel {
    /// The lane-chunked kernel (gather + branchless fixed-width max-update).
    #[default]
    Chunked,
    /// The scalar reference sweep (the pre-chunking implementation), kept for
    /// equivalence tests and as the `scalar-kernel` feature's crate-wide
    /// default.
    Scalar,
}

impl DpKernel {
    /// The kernel the crate's solvers use: chunked, unless the
    /// `scalar-kernel` feature selects the scalar reference path.
    pub fn crate_default() -> Self {
        if cfg!(feature = "scalar-kernel") {
            DpKernel::Scalar
        } else {
            DpKernel::Chunked
        }
    }
}

/// Reusable state of the dynamic program: the flat value/traceback arenas,
/// the per-row block-reliability gather buffer, and the admissibility data
/// (`in_ok` boundary flags and per-row work-prefix cuts) that the period
/// minimizer warm-starts across its binary-search probes.
#[derive(Debug, Default)]
pub struct DpScratch {
    /// `f[i·stride + k]`: best reliability for the first `i` tasks on `k`
    /// processors (−∞ = unreachable).
    f: Vec<f64>,
    /// Packed winning `(previous boundary j, replica count q)` per state,
    /// stored as exact `f64` integers (see [`NO_CHOICE`]).
    choice: Vec<f64>,
    /// Per-row gather buffer of factored replica-block reliabilities.
    blocks: Vec<f64>,
    /// Per-row compacted admissible interval starts, descending.
    adm: Vec<u32>,
    /// Replicated reliabilities `1 − (1 − block)^q`, `q = 1..=K`, for each
    /// admissible start (parallel to `adm`, `K` entries per start).
    rels: Vec<f64>,
    /// Incoming-communication admissibility per interval start.
    in_ok: Vec<bool>,
    /// Per-row work-prefix partition points from the most recent bounded
    /// run: `pp[i]` = first index with `work_prefix ≥ work_prefix[i] − P·s`.
    /// Carried across period probes so the next run starts its cut walk
    /// from the previous answer instead of a fresh binary search.
    pp: Vec<usize>,
    /// The period bound `pp` was last derived for (`NAN` = never).
    prev_bound: f64,
    /// Shape of the last completed fill of `f`: number of rows (`n + 1`) and
    /// row stride (`p + 1`). Zero until the first sweep. The repair entry
    /// points check this before reusing the grid — a scratch whose shape does
    /// not match the pre-delta instance silently falls back to a full solve.
    dp_rows: usize,
    dp_stride: usize,
    /// Pooled label arenas of the latency-bounded heterogeneous DP
    /// (`algo_het_lat`), so a scratch shared by the portfolio backends also
    /// amortizes the per-state label vectors across latency-bounded solves.
    pub(crate) het_lat: crate::algo_het_lat::HetLatArenas,
}

impl DpScratch {
    /// Fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        DpScratch {
            prev_bound: f64::NAN,
            ..DpScratch::default()
        }
    }

    /// Clears every instance-specific datum (admissibility flags, work-prefix
    /// cuts, warm-start bound) while **keeping the allocated capacity** of
    /// all arenas. This is what makes the scratch safe to pool across
    /// *different* instances of a batch: only the allocations are reused,
    /// never another instance's admissibility data.
    pub fn reset(&mut self) {
        self.f.clear();
        self.choice.clear();
        self.blocks.clear();
        self.adm.clear();
        self.rels.clear();
        self.in_ok.clear();
        self.pp.clear();
        self.prev_bound = f64::NAN;
        self.dp_rows = 0;
        self.dp_stride = 0;
        self.het_lat.reset();
    }
}

/// The dynamic program shared by Algorithms 1 and 2 (fresh scratch per call).
pub(crate) fn reliability_dp(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    filter: DpFilter,
) -> Option<OptimalMapping> {
    let mut scratch = DpScratch::new();
    reliability_dp_scratch(
        oracle,
        chain,
        platform,
        filter,
        DpKernel::crate_default(),
        &mut scratch,
    )
}

/// Runs the shared dynamic program with an explicit kernel choice. This is
/// the measurement and equivalence-testing entry point: `period_bound: None`
/// is Algorithm 1, `Some(bound)` is Algorithm 2. The platform must be
/// homogeneous (this is not re-checked here; use the `optimize_*` wrappers
/// for validated solving).
pub fn reliability_dp_with_kernel(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    kernel: DpKernel,
) -> Option<OptimalMapping> {
    let mut scratch = DpScratch::new();
    reliability_dp_with_scratch(oracle, chain, platform, period_bound, kernel, &mut scratch)
}

/// [`reliability_dp_with_kernel`] against caller-owned [`DpScratch`]:
/// repeated runs over the same oracle (a bound sweep, a probe loop) reuse
/// the DP arenas and warm-start the admissible-interval cuts from the
/// previous bounded run — this is what the period minimizer's binary search
/// does internally with one scratch across all its probes.
pub fn reliability_dp_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    kernel: DpKernel,
    scratch: &mut DpScratch,
) -> Option<OptimalMapping> {
    let filter = match period_bound {
        None => DpFilter::All,
        Some(bound) => DpFilter::PeriodBound(bound),
    };
    reliability_dp_scratch(oracle, chain, platform, filter, kernel, scratch)
}

/// How a repair DP call obtained its answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmPath {
    /// The prior boundary grid was reused: re-picked directly after a
    /// platform shrink, or re-swept only above the first affected row after
    /// a work revision.
    ReusedGrid,
    /// The warm preconditions did not hold; a full cold sweep ran instead.
    Resolved,
}

/// Warm-started **repair** run of the shared dynamic program after a
/// [`rpo_model::PlatformDelta`], reusing the unchanged prefix of the
/// boundary grid left in `scratch` by the pre-delta solve.
///
/// `keep_rows` is the number of leading boundary rows of the prior grid
/// known to be bit-valid for the post-delta instance — the
/// `first_affected_task` of [`rpo_model::AppliedDelta`]:
///
/// * **Platform shrink** (a processor failed on a homogeneous platform,
///   `keep_rows = n`): every row survives. `f[i][k]` — the best reliability
///   of the first `i` tasks on `k` processors — never depends on how many
///   processors exist beyond `k`, so the whole grid remains exact for the
///   smaller platform; the repair just re-picks the best final state over
///   `k ≤ p_new` and retraces through the old (wider-stride) grid.
/// * **Work revision of task `t`** (`keep_rows = t`): row `i` only reads
///   block reliabilities of intervals ending at task `i − 1`, which involve
///   only works of tasks `< i` — so rows `≤ t` are bit-identical and only
///   rows `t + 1 ..= n` are wiped and re-swept (same kernel, same
///   evaluation order, hence bit-identical to a cold solve).
///
/// Falls back to a full cold solve — reported as [`WarmPath::Resolved`] —
/// whenever the preconditions do not hold: scratch shape mismatch (never
/// filled, or filled for a different `n`/`p`), a platform shrink combined
/// with row invalidation, or the scalar reference kernel being the crate
/// default. **The caller must pass the same `period_bound` the scratch was
/// filled under and must not reuse a grid across a factored-path flip**
/// (see `AppliedDelta::factored_changed`) — the repair ladder in
/// `rpo-repair` enforces both.
///
/// Returns `None` when no feasible mapping exists on the post-delta
/// platform (all final states unreachable), exactly like the cold DP.
pub fn repair_reliability_dp_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    keep_rows: usize,
    scratch: &mut DpScratch,
) -> Option<(OptimalMapping, WarmPath)> {
    let n = oracle.len();
    let p = oracle.num_processors();
    let bound = period_bound.unwrap_or(f64::INFINITY);
    let stride_prev = scratch.dp_stride;
    let shape_ok = DpKernel::crate_default() == DpKernel::Chunked
        && scratch.dp_rows == n + 1
        && stride_prev > p
        && scratch.f.len() == scratch.dp_rows * stride_prev;
    if !shape_ok || (stride_prev > p + 1 && keep_rows < n) {
        return reliability_dp_with_scratch(
            oracle,
            chain,
            platform,
            period_bound,
            DpKernel::crate_default(),
            scratch,
        )
        .map(|solution| (solution, WarmPath::Resolved));
    }

    let _span = rpo_obs::span!("dp.repair", rows = n - keep_rows.min(n), procs = p);
    if stride_prev == p + 1 && keep_rows < n {
        // Wipe only the invalidated suffix of the grid and resweep it; the
        // kept rows are never touched, so they stay bit-identical.
        let row_lo = keep_rows + 1;
        for value in &mut scratch.f[row_lo * stride_prev..] {
            *value = f64::NEG_INFINITY;
        }
        rpo_obs::counter!("dp.kernel.row_sweeps").add((n - keep_rows) as u64);
        chunked_sweep(oracle, bound, scratch, row_lo);
    }

    // The traceback needs current admissibility flags (the scratch may hold
    // another probe's, and a shrink repair skips the sweep that would
    // rebuild them). Communication times are delta-invariant, so these are
    // the same comparisons the original sweep made.
    scratch.in_ok.clear();
    scratch
        .in_ok
        .extend((0..n).map(|j| oracle.input_comm_time(j) <= bound));

    let row_n = n * stride_prev;
    let (best_k, best_rel) = (1..=p).map(|k| (k, scratch.f[row_n + k])).max_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("totally ordered reliabilities")
    })?;
    if !best_rel.is_finite() {
        return None;
    }

    let mut segments: Vec<(usize, usize, usize)> = Vec::new();
    let (mut i, mut k) = (n, best_k);
    while i > 0 {
        let (j, q) = recover_choice(oracle, bound, scratch, stride_prev, i, k);
        segments.push((j, i - 1, q));
        i = j;
        k -= q;
    }
    segments.reverse();

    let mut next_processor = 0;
    let mapped = segments
        .into_iter()
        .map(|(first, last, q)| {
            let processors: Vec<usize> = (next_processor..next_processor + q).collect();
            next_processor += q;
            MappedInterval::new(Interval { first, last }, processors)
        })
        .collect();
    let mapping = Mapping::new(mapped, chain, platform)
        .expect("dynamic program only builds structurally valid mappings");
    let reliability = oracle.mapping_reliability(&mapping);
    Some((
        OptimalMapping {
            mapping,
            reliability,
        },
        WarmPath::ReusedGrid,
    ))
}

/// The dynamic program against caller-owned scratch: the period minimizer
/// passes the same scratch to every binary-search probe, reusing the arenas
/// and warm-starting the admissibility cuts.
pub(crate) fn reliability_dp_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    filter: DpFilter,
    kernel: DpKernel,
    scratch: &mut DpScratch,
) -> Option<OptimalMapping> {
    let n = oracle.len();
    let p = oracle.num_processors();
    let _span = rpo_obs::span!("dp.kernel", rows = n, procs = p);
    rpo_obs::counter!("dp.kernel.row_sweeps").add(n as u64);
    assert!(
        oracle.max_replication().min(p) <= 0xFF && n < (1 << 24),
        "packed traceback supports K ≤ 255 and n < 2^24"
    );
    let stride = p + 1;
    scratch.f.clear();
    scratch.f.resize((n + 1) * stride, f64::NEG_INFINITY);
    scratch.f[0] = 1.0;
    scratch.dp_rows = n + 1;
    scratch.dp_stride = stride;

    match kernel {
        DpKernel::Chunked => chunked_sweep(oracle, filter.bound(), scratch, 1),
        DpKernel::Scalar => {
            // Only the scalar reference sweep records explicit traceback
            // choices; the chunked kernel keeps its hot loop value-only and
            // recovers winners afterwards (see `recover_choice`).
            scratch.choice.clear();
            scratch.choice.resize((n + 1) * stride, NO_CHOICE);
            scalar_sweep(oracle, filter.bound(), &mut scratch.f, &mut scratch.choice);
        }
    }

    // Best over every possible total processor count.
    let row_n = n * stride;
    let (best_k, best_rel) = (1..=p).map(|k| (k, scratch.f[row_n + k])).max_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("totally ordered reliabilities")
    })?;
    if !best_rel.is_finite() {
        return None;
    }

    // Traceback: rebuild intervals and replica counts from the end.
    let mut segments: Vec<(usize, usize, usize)> = Vec::new(); // (first, last, replicas)
    let (mut i, mut k) = (n, best_k);
    while i > 0 {
        let (j, q) = match kernel {
            DpKernel::Chunked => recover_choice(oracle, filter.bound(), scratch, stride, i, k),
            DpKernel::Scalar => {
                let packed_f = scratch.choice[i * stride + k];
                debug_assert!(
                    packed_f != NO_CHOICE,
                    "reachable state has a recorded choice"
                );
                let packed = packed_f as u32; // exact: integral and < 2^32
                ((packed >> 8) as usize, (packed & 0xFF) as usize)
            }
        };
        segments.push((j, i - 1, q));
        i = j;
        k -= q;
    }
    segments.reverse();

    // Assign concrete processor identifiers in order (the platform is
    // homogeneous, so which processors are picked does not matter).
    let mut next_processor = 0;
    let mapped = segments
        .into_iter()
        .map(|(first, last, q)| {
            let processors: Vec<usize> = (next_processor..next_processor + q).collect();
            next_processor += q;
            MappedInterval::new(Interval { first, last }, processors)
        })
        .collect();
    let mapping = Mapping::new(mapped, chain, platform)
        .expect("dynamic program only builds structurally valid mappings");
    // Report the exact Eq. 9 reliability of the reconstructed mapping (the
    // DP maximized over factored values that can differ by an ulp), so the
    // reported value always matches the evaluator and can be fed back as a
    // reliability bound without borderline misses.
    let reliability = oracle.mapping_reliability(&mapping);
    Some(OptimalMapping {
        mapping,
        reliability,
    })
}

/// The lane-chunked DP sweep. Per row `i`: derive the admissible start range
/// (warm-started work-prefix cut), gather the factored block reliabilities
/// of every candidate interval into `scratch.blocks`, compact the admissible
/// starts with their replication-level reliabilities, then run the `(q, k)`
/// max-update through the value-only [`lane_max_update`] kernel (traceback
/// winners are recovered on demand by [`recover_choice`]).
/// `row_lo` is the first row to (re)compute — 1 for a full sweep; the warm
/// repair path passes `keep_rows + 1` to resweep only the rows invalidated
/// by a task-work revision (rows below it keep their bit-identical values).
fn chunked_sweep(oracle: &IntervalOracle, bound: f64, scratch: &mut DpScratch, row_lo: usize) {
    let n = oracle.len();
    let p = oracle.num_processors();
    let k_max = oracle.max_replication().min(p);
    let speed = oracle.classes()[0].speed;
    let stride = p + 1;
    let work_prefix = oracle.work_prefix();
    let DpScratch {
        f,
        blocks,
        adm,
        rels,
        in_ok,
        pp,
        prev_bound,
        ..
    } = scratch;

    // Incoming-communication admissibility per interval start: exactly the
    // comparisons period_requirement makes (the boundary exponentials were
    // already hoisted into the oracle, so this is n comparisons).
    in_ok.clear();
    in_ok.extend((0..n).map(|j| oracle.input_comm_time(j) <= bound));
    // Warm-start the per-row work-prefix cuts from the previous bounded run
    // when its data is compatible; any stale cut is still a valid walk start,
    // so warmth affects speed only, never the result.
    let warm = prev_bound.is_finite() && pp.len() == n + 1;
    if !warm {
        pp.clear();
        pp.resize(n + 1, 0);
    }

    for i in row_lo..=n {
        if oracle.output_comm_time(i - 1) > bound {
            continue; // no interval ending at task i−1 fits the period
        }
        // Conservative first admissible start: the work prefix is strictly
        // increasing, so intervals starting before this point are too big.
        // The exact per-j division below keeps the semantics identical.
        let j_lo = if bound.is_finite() {
            let target = work_prefix[i] - bound * speed;
            let mut point = if warm {
                // Walk the previous probe's cut to the new target (the
                // neighbouring binary-search bound moved it only slightly).
                let mut point = pp[i].min(i);
                while point < i && work_prefix[point] < target {
                    point += 1;
                }
                while point > 0 && work_prefix[point - 1] >= target {
                    point -= 1;
                }
                point
            } else {
                work_prefix[..i].partition_point(|&w| w < target)
            };
            debug_assert_eq!(point, work_prefix[..i].partition_point(|&w| w < target));
            pp[i] = point;
            point = point.saturating_sub(1);
            point
        } else {
            0
        };
        // Gather phase: contiguous factored block reliabilities of every
        // interval `j ..= i−1` with `j ≥ j_lo` (pure multiplications over
        // the oracle's exponent prefixes — no transcendentals in the row),
        // then compact the admissible starts with their per-level replicated
        // reliabilities `1 − (1 − block)^q` (accumulated across q instead of
        // recomputing the power). Descending j: short last intervals (high
        // block reliability) come first, so most later candidates lose the
        // max immediately.
        oracle.fill_class_block_row(0, i - 1, j_lo, blocks);
        adm.clear();
        rels.clear();
        if bound.is_finite() {
            for j in (j_lo..i).rev() {
                if !in_ok[j] || oracle.work(j, i - 1) / speed > bound {
                    continue;
                }
                let block = blocks[j - j_lo];
                adm.push(j as u32);
                let mut all_fail = 1.0;
                for _ in 0..k_max {
                    all_fail *= 1.0 - block;
                    rels.push(1.0 - all_fail);
                }
            }
        } else {
            // Unbounded sweep (Algorithm 1): every interval is admissible —
            // no per-j comparisons or divisions in the gather at all.
            for j in (0..i).rev() {
                let block = blocks[j];
                adm.push(j as u32);
                let mut all_fail = 1.0;
                for _ in 0..k_max {
                    all_fail *= 1.0 - block;
                    rels.push(1.0 - all_fail);
                }
            }
        }
        if adm.is_empty() {
            continue;
        }
        // Split the arena so the target row and the predecessor rows can be
        // iterated as plain slices (j < i, so every predecessor is in `done`).
        let (done, rest) = f.split_at_mut(i * stride);
        let row_i = &mut rest[..stride];
        for (&j, jrels) in adm.iter().zip(rels.chunks_exact(k_max)) {
            let j = j as usize;
            let row_j = &done[j * stride..(j + 1) * stride];
            // Only k = q + prev with prev ∈ [min_prev, max_prev] can
            // improve: j tasks occupy between 1 (j > 0) and min(p, j·K)
            // processors. Inside that window the kernel relies on the −∞
            // sentinels of unreachable predecessor states instead of
            // per-level range checks.
            let min_prev = usize::from(j > 0);
            let max_prev = (j * k_max).min(p);
            lane_max_update(row_j, row_i, min_prev + 1, (max_prev + k_max).min(p), jrels);
        }
    }
    if bound.is_finite() {
        *prev_bound = bound;
    }
}

/// Branch-light chunked max-update over one predecessor boundary `j`: for
/// every state `k \u{2208} [k_lo, k_hi]` and replication level `q`,
/// `row_i[k] = max(row_i[k], row_j[k \u{2212} q]\u{b7}rels[q\u{2212}1])`.
///
/// The hot loop is **value-only** \u{2014} no traceback bookkeeping: winners are
/// recovered after the sweep by [`recover_choice`], so each lane costs one
/// multiply and one max (`vmulpd` + `vmaxpd` once vectorized) instead of a
/// compare plus two selects. The `q` levels are fused into one pass over
/// `k`: each chunk loads a fixed-width `[f64; LANES]` window of the target
/// row once, folds every replication level into it (contiguous shifted loads
/// from `row_j`, no data-dependent branches), and stores it once \u{2014} the
/// shape LLVM auto-vectorizes. Out-of-window `(k, q)` combinations read `\u{2212}\u{221e}`
/// predecessor sentinels and lose every comparison, so no per-`q` range
/// logic survives in the hot loop. The final chunk **overlaps backward**
/// instead of falling off to a scalar tail: re-folding an already-folded
/// state is a no-op under `max`, so overlap changes nothing but keeps every
/// state on the vector path.
#[inline]
fn lane_max_update(row_j: &[f64], row_i: &mut [f64], k_lo: usize, k_hi: usize, rels: &[f64]) {
    let k_max = rels.len();
    if k_lo > k_hi {
        return;
    }
    let mut k = k_lo;
    // Scalar prefix: states where some level would index before the row
    // start (replication capped at q \u{2264} k instead).
    while k <= k_hi && k < k_max {
        update_state(row_j, row_i, k, &rels[..k]);
        k += 1;
    }
    if k > k_hi {
        return;
    }
    if k_hi + 1 - k < LANES {
        // The remaining window is narrower than one lane: finish scalar.
        while k <= k_hi {
            update_state(row_j, row_i, k, rels);
            k += 1;
        }
        return;
    }
    loop {
        // Advance in full lanes; the final chunk is clamped to end exactly
        // at k_hi, overlapping states the previous chunk already folded.
        let start = k.min(k_hi + 1 - LANES);
        let mut val: [f64; LANES] = row_i[start..start + LANES]
            .try_into()
            .expect("lane-width chunk");
        for (level, &rel) in rels.iter().enumerate() {
            let lo = start - (level + 1);
            let src: [f64; LANES] = row_j[lo..lo + LANES].try_into().expect("lane-width chunk");
            for l in 0..LANES {
                let cand = src[l] * rel;
                val[l] = if cand > val[l] { cand } else { val[l] };
            }
        }
        row_i[start..start + LANES].copy_from_slice(&val);
        if start + LANES > k_hi {
            return;
        }
        k = start + LANES;
    }
}

/// One state's value-only fold across the given replication levels.
#[inline]
fn update_state(row_j: &[f64], row_i: &mut [f64], k: usize, rels: &[f64]) {
    let mut val = row_i[k];
    for (level, &rel) in rels.iter().enumerate() {
        let cand = row_j[k - (level + 1)] * rel;
        if cand > val {
            val = cand;
        }
    }
    row_i[k] = val;
}

/// Recovers the winning `(j, q)` choice of the reachable state `(i, k)` by
/// re-scanning the row's candidates **in sweep order** (descending `j`,
/// ascending `q`) for the first one equal to `f[i][k]`.
///
/// The sweep's `max` keeps the first candidate (in evaluation order)
/// attaining the maximum, and the candidate values recomputed here go
/// through the same gather (`fill_class_block_row`) and the same
/// `(1 \u{2212} block)^q` accumulation, so the comparison is bit-exact and the
/// recovered winner is identical to what an in-loop traceback record \u{2014} or
/// the scalar reference sweep \u{2014} would produce. Cost: `O(i\u{b7}K)` per segment
/// of the reconstructed mapping, paid only along the optimal path instead
/// of bookkeeping every state of the `O(n\u{b2} p K)` sweep.
///
/// `stride` is the row stride of `scratch.f` — `p + 1` on the normal path,
/// but the **pre-delta** `p_old + 1` when the shrunken-platform repair path
/// tracebacks through a grid filled before a processor failure (the grid
/// rows stay valid for any `k ≤ p_new`; only their layout remembers the old
/// platform width).
fn recover_choice(
    oracle: &IntervalOracle,
    bound: f64,
    scratch: &mut DpScratch,
    stride: usize,
    i: usize,
    k: usize,
) -> (usize, usize) {
    let p = oracle.num_processors();
    let k_max = oracle.max_replication().min(p);
    let speed = oracle.classes()[0].speed;
    let work_prefix = oracle.work_prefix();
    let j_lo = if bound.is_finite() {
        work_prefix[..i]
            .partition_point(|&w| w < work_prefix[i] - bound * speed)
            .saturating_sub(1)
    } else {
        0
    };
    oracle.fill_class_block_row(0, i - 1, j_lo, &mut scratch.blocks);
    let target = scratch.f[i * stride + k];
    for j in (j_lo..i).rev() {
        if bound.is_finite() && (!scratch.in_ok[j] || oracle.work(j, i - 1) / speed > bound) {
            continue;
        }
        let block = scratch.blocks[j - j_lo];
        let row_j = &scratch.f[j * stride..(j + 1) * stride];
        let mut all_fail = 1.0;
        for q in 1..=k_max.min(k) {
            all_fail *= 1.0 - block;
            if row_j[k - q] * (1.0 - all_fail) == target {
                return (j, q);
            }
        }
    }
    unreachable!("every reachable DP state has a winning candidate")
}

/// The scalar reference sweep: the pre-chunking implementation, preserved
/// verbatim (per-row factored exponent products computed inline, branchy
/// per-`k` max-update). Used by the equivalence tests, the kernel benchmark,
/// and the `scalar-kernel` feature.
fn scalar_sweep(oracle: &IntervalOracle, bound: f64, f: &mut [f64], choice: &mut [f64]) {
    let n = oracle.len();
    let p = oracle.num_processors();
    let k_max = oracle.max_replication().min(p);
    let speed = oracle.classes()[0].speed;
    let stride = p + 1;
    // Incoming-communication admissibility per interval start, shared by
    // every row (these are exactly the comparisons period_requirement makes).
    let in_ok: Vec<bool> = (0..n).map(|j| oracle.input_comm_time(j) <= bound).collect();
    let work_prefix = oracle.work_prefix();

    // Factored interval reliability: exp(−ρ(W_i − W_j)) = exp(−ρW_i)·exp(ρW_j)
    // over the log-reliability exponent prefix, turning the n²/2 per-interval
    // `exp`s into 2(n+1). Only safe while the exponents stay small (they are
    // for any instance whose reliabilities are not denormal-degenerate);
    // otherwise fall back to one exact `exp` per admissible interval.
    let class = oracle.classes()[0];
    let rho = class.failure_rate / class.speed;
    let factored = rho * oracle.total_work() <= 40.0;
    let (e_minus, e_plus): (Vec<f64>, Vec<f64>) = if factored {
        (
            work_prefix.iter().map(|&w| (-rho * w).exp()).collect(),
            work_prefix.iter().map(|&w| (rho * w).exp()).collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    for i in 1..=n {
        if oracle.output_comm_time(i - 1) > bound {
            continue; // no interval ending at task i−1 fits the period
        }
        let out_rel = oracle.output_comm_reliability(i - 1);
        let j_lo = if bound.is_finite() {
            work_prefix[..i]
                .partition_point(|&w| w < work_prefix[i] - bound * speed)
                .saturating_sub(1)
        } else {
            0
        };
        let (done, rest) = f.split_at_mut(i * stride);
        let row_i = &mut rest[..stride];
        let choices = i * stride;
        for j in (j_lo..i).rev() {
            if !in_ok[j] || oracle.work(j, i - 1) / speed > bound {
                continue;
            }
            let block = if factored {
                oracle.input_comm_reliability(j) * (e_minus[i] * e_plus[j]) * out_rel
            } else {
                oracle.class_block_reliability(0, j, i - 1)
            };
            let row_j = &done[j * stride..(j + 1) * stride];
            let min_prev = usize::from(j > 0);
            let max_prev = (j * k_max).min(p);
            let mut all_fail = 1.0;
            for q in 1..=k_max {
                all_fail *= 1.0 - block;
                let rel_interval = 1.0 - all_fail;
                let hi = max_prev.min(p - q);
                if min_prev > hi {
                    continue;
                }
                let base = q + min_prev;
                let packed = ((j as u32) << 8 | q as u32) as f64;
                for (offset, &prev) in row_j[min_prev..=hi].iter().enumerate() {
                    let rel = prev * rel_interval;
                    let k = base + offset;
                    if rel > row_i[k] {
                        row_i[k] = rel;
                        choice[choices + k] = packed;
                    }
                }
            }
        }
    }
}

/// Algorithm 1: computes a mapping of maximal reliability on a fully
/// homogeneous platform, in time `O(n² p K)`.
///
/// # Errors
///
/// Returns [`AlgoError::HeterogeneousPlatform`] if the platform is not
/// homogeneous (the dynamic program is only optimal in the homogeneous case).
pub fn optimize_reliability_homogeneous(
    chain: &TaskChain,
    platform: &Platform,
) -> Result<OptimalMapping> {
    let oracle = IntervalOracle::new(chain, platform);
    optimize_reliability_homogeneous_with_oracle(&oracle, chain, platform)
}

/// Algorithm 1 against a prebuilt [`IntervalOracle`] (the portfolio shares
/// one oracle across all its backends).
///
/// # Errors
///
/// Same as [`optimize_reliability_homogeneous`].
pub fn optimize_reliability_homogeneous_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
) -> Result<OptimalMapping> {
    let mut scratch = DpScratch::new();
    optimize_reliability_homogeneous_with_scratch(oracle, chain, platform, &mut scratch)
}

/// Algorithm 1 against caller-owned [`DpScratch`]: batch callers (the
/// portfolio engine's scratch pool) reuse the DP arenas across instances —
/// allocation reuse only, the admissibility data is rebuilt per run.
///
/// # Errors
///
/// Same as [`optimize_reliability_homogeneous`].
pub fn optimize_reliability_homogeneous_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    scratch: &mut DpScratch,
) -> Result<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    reliability_dp_scratch(
        oracle,
        chain,
        platform,
        DpFilter::All,
        DpKernel::crate_default(),
        scratch,
    )
    .ok_or(AlgoError::NoFeasibleMapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_heterogeneous_platform() {
        let c = chain();
        let p = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            optimize_reliability_homogeneous(&c, &p).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
    }

    #[test]
    fn reported_reliability_matches_evaluation_of_returned_mapping() {
        let c = chain();
        let p = platform(6, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!((sol.reliability - eval.reliability).abs() < 1e-12);
    }

    #[test]
    fn single_processor_forces_single_unreplicated_interval() {
        let c = chain();
        let p = platform(1, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        assert_eq!(sol.mapping.num_intervals(), 1);
        assert_eq!(sol.mapping.processors_used(), 1);
    }

    #[test]
    fn plenty_of_processors_replicates_every_interval_k_times() {
        let c = chain();
        let p = platform(12, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        for mi in sol.mapping.intervals() {
            assert_eq!(mi.replication(), 3);
        }
    }

    #[test]
    fn optimum_matches_brute_force_on_small_instance() {
        let c = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0)]).unwrap();
        let p = platform(4, 2);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        let brute = crate::exact::brute_force(&c, &p, f64::INFINITY, f64::INFINITY).unwrap();
        assert!((sol.reliability - brute.reliability).abs() < 1e-12);
    }

    #[test]
    fn more_processors_never_hurt_reliability() {
        let c = chain();
        let mut previous = 0.0;
        for p_count in 1..=8 {
            let p = platform(p_count, 3);
            let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
            assert!(sol.reliability >= previous - 1e-15);
            previous = sol.reliability;
        }
    }

    #[test]
    fn oracle_entry_point_matches_the_wrapper() {
        let c = chain();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        let direct = optimize_reliability_homogeneous(&c, &p).unwrap();
        let via_oracle = optimize_reliability_homogeneous_with_oracle(&oracle, &c, &p).unwrap();
        assert_eq!(direct.reliability, via_oracle.reliability);
        assert_eq!(direct.mapping, via_oracle.mapping);
    }

    #[test]
    fn chunked_and_scalar_kernels_agree_on_fixture() {
        let c = chain();
        for p_count in 1..=8 {
            for k in 1..=3 {
                let p = platform(p_count, k);
                let oracle = IntervalOracle::new(&c, &p);
                for bound in [None, Some(40.0), Some(45.0), Some(70.0), Some(1e6)] {
                    let chunked =
                        reliability_dp_with_kernel(&oracle, &c, &p, bound, DpKernel::Chunked);
                    let scalar =
                        reliability_dp_with_kernel(&oracle, &c, &p, bound, DpKernel::Scalar);
                    match (chunked, scalar) {
                        (Some(a), Some(b)) => {
                            assert!((a.reliability - b.reliability).abs() < 1e-12);
                            assert_eq!(a.mapping, b.mapping, "kernels picked different mappings");
                        }
                        (None, None) => {}
                        (a, b) => panic!(
                            "kernel feasibility mismatch at p={p_count} k={k} bound={bound:?}: \
                             chunked={} scalar={}",
                            a.is_some(),
                            b.is_some()
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_bounds_matches_fresh_runs() {
        let c = chain();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        let mut scratch = DpScratch::new();
        // Bounds in binary-search-like (non-monotone) order.
        for bound in [105.0, 45.0, 70.0, 40.0, 1e9, 41.0] {
            let warm = reliability_dp_scratch(
                &oracle,
                &c,
                &p,
                DpFilter::PeriodBound(bound),
                DpKernel::Chunked,
                &mut scratch,
            );
            let fresh = reliability_dp(&oracle, &c, &p, DpFilter::PeriodBound(bound));
            assert_eq!(
                warm.map(|s| (s.reliability, s.mapping)),
                fresh.map(|s| (s.reliability, s.mapping)),
                "warm scratch diverged at bound {bound}"
            );
        }
    }

    #[test]
    fn oracle_replicated_reliability_includes_communications() {
        let c = chain();
        let p = platform(4, 3);
        let oracle = IntervalOracle::new(&c, &p);
        let r1 = oracle.replicated_reliability(1, 2, 1);
        // Manual: in-comm o_0 = 2, W = 35, out-comm o_2 = 1.
        let expected = (-1e-4f64 * 2.0).exp() * (-1e-3f64 * 35.0).exp() * (-1e-4f64 * 1.0).exp();
        assert!((r1 - expected).abs() < 1e-12);
        let r2 = oracle.replicated_reliability(1, 2, 2);
        assert!((r2 - (1.0 - (1.0 - expected).powi(2))).abs() < 1e-12);
        assert!(r2 > r1);
    }
}
