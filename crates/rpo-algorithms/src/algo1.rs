//! Algorithm 1: optimal reliability on fully homogeneous platforms.
//!
//! `F(i, k)` is the optimal reliability when mapping the first `i` tasks onto
//! exactly `k` processors; the recurrence tries every possible last interval
//! and every possible replication level `q ≤ min(K, k)` for it:
//!
//! `F(i, k) = max_{j < i, 1 ≤ q ≤ min(K,k)} F(j, k−q) · (1 − (1 − r_comm,j · Π r_l · r_comm,i)^q)`
//!
//! The paper only returns the optimal reliability value; this implementation
//! additionally keeps the dynamic-programming choices and reconstructs an
//! actual [`Mapping`] achieving it.

use rpo_model::{reliability, Interval, MappedInterval, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::{AlgoError, Result};

/// A mapping together with the reliability the dynamic program computed for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalMapping {
    /// The reconstructed mapping.
    pub mapping: Mapping,
    /// Its reliability (Eq. 9), as computed by the dynamic program.
    pub reliability: f64,
}

/// Reliability of an interval replicated on `q` identical processors of a
/// homogeneous platform, including its incoming and outgoing communications
/// (the inner term of Eq. 9).
pub(crate) fn replicated_homogeneous_reliability(
    chain: &TaskChain,
    platform: &Platform,
    interval: Interval,
    q: usize,
) -> f64 {
    let input_size = if interval.first == 0 {
        0.0
    } else {
        chain.output_size(interval.first - 1)
    };
    let block = reliability::replica_block_reliability(
        chain,
        platform,
        0,
        interval,
        input_size,
        interval.output_size(chain),
    );
    1.0 - (1.0 - block).powi(q as i32)
}

/// The dynamic program shared by Algorithms 1 and 2; `admissible` restricts
/// which (interval, replication) pairs may be used (Algorithm 1 admits
/// everything, Algorithm 2 enforces the period bound).
pub(crate) fn reliability_dp(
    chain: &TaskChain,
    platform: &Platform,
    admissible: impl Fn(Interval) -> bool,
) -> Option<OptimalMapping> {
    let n = chain.len();
    let p = platform.num_processors();
    let k_max = platform.max_replication().min(p);

    // f[i][k]: best reliability for the first i tasks on exactly k processors
    // (negative = unreachable). choice[i][k]: (previous boundary j, replicas q).
    let mut f = vec![vec![-1.0f64; p + 1]; n + 1];
    let mut choice = vec![vec![None::<(usize, usize)>; p + 1]; n + 1];
    f[0][0] = 1.0;

    for i in 1..=n {
        for j in 0..i {
            let interval = Interval {
                first: j,
                last: i - 1,
            };
            if !admissible(interval) {
                continue;
            }
            for q in 1..=k_max {
                let rel_interval = replicated_homogeneous_reliability(chain, platform, interval, q);
                for k in q..=p {
                    let prev = f[j][k - q];
                    if prev < 0.0 {
                        continue;
                    }
                    let rel = prev * rel_interval;
                    if rel > f[i][k] {
                        f[i][k] = rel;
                        choice[i][k] = Some((j, q));
                    }
                }
            }
        }
    }

    // Best over every possible total processor count.
    let (best_k, best_rel) = (1..=p)
        .map(|k| (k, f[n][k]))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite reliabilities"))?;
    if best_rel < 0.0 {
        return None;
    }

    // Traceback: rebuild intervals and replica counts from the end.
    let mut segments: Vec<(usize, usize, usize)> = Vec::new(); // (first, last, replicas)
    let (mut i, mut k) = (n, best_k);
    while i > 0 {
        let (j, q) = choice[i][k].expect("reachable state has a recorded choice");
        segments.push((j, i - 1, q));
        i = j;
        k -= q;
    }
    segments.reverse();

    // Assign concrete processor identifiers in order (the platform is
    // homogeneous, so which processors are picked does not matter).
    let mut next_processor = 0;
    let mapped = segments
        .into_iter()
        .map(|(first, last, q)| {
            let processors: Vec<usize> = (next_processor..next_processor + q).collect();
            next_processor += q;
            MappedInterval::new(Interval { first, last }, processors)
        })
        .collect();
    let mapping = Mapping::new(mapped, chain, platform)
        .expect("dynamic program only builds structurally valid mappings");
    Some(OptimalMapping {
        mapping,
        reliability: best_rel,
    })
}

/// Algorithm 1: computes a mapping of maximal reliability on a fully
/// homogeneous platform, in time `O(n² p K)`.
///
/// # Errors
///
/// Returns [`AlgoError::HeterogeneousPlatform`] if the platform is not
/// homogeneous (the dynamic program is only optimal in the homogeneous case).
pub fn optimize_reliability_homogeneous(
    chain: &TaskChain,
    platform: &Platform,
) -> Result<OptimalMapping> {
    if !platform.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    reliability_dp(chain, platform, |_| true).ok_or(AlgoError::NoFeasibleMapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_heterogeneous_platform() {
        let c = chain();
        let p = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            optimize_reliability_homogeneous(&c, &p).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
    }

    #[test]
    fn reported_reliability_matches_evaluation_of_returned_mapping() {
        let c = chain();
        let p = platform(6, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!((sol.reliability - eval.reliability).abs() < 1e-12);
    }

    #[test]
    fn single_processor_forces_single_unreplicated_interval() {
        let c = chain();
        let p = platform(1, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        assert_eq!(sol.mapping.num_intervals(), 1);
        assert_eq!(sol.mapping.processors_used(), 1);
    }

    #[test]
    fn plenty_of_processors_replicates_every_interval_k_times() {
        let c = chain();
        let p = platform(12, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        for mi in sol.mapping.intervals() {
            assert_eq!(mi.replication(), 3);
        }
    }

    #[test]
    fn optimum_matches_brute_force_on_small_instance() {
        let c = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0)]).unwrap();
        let p = platform(4, 2);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        let brute = crate::exact::brute_force(&c, &p, f64::INFINITY, f64::INFINITY).unwrap();
        assert!((sol.reliability - brute.reliability).abs() < 1e-12);
    }

    #[test]
    fn more_processors_never_hurt_reliability() {
        let c = chain();
        let mut previous = 0.0;
        for p_count in 1..=8 {
            let p = platform(p_count, 3);
            let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
            assert!(sol.reliability >= previous - 1e-15);
            previous = sol.reliability;
        }
    }

    #[test]
    fn replicated_homogeneous_reliability_includes_communications() {
        let c = chain();
        let p = platform(4, 3);
        let itv = Interval { first: 1, last: 2 };
        let r1 = replicated_homogeneous_reliability(&c, &p, itv, 1);
        // Manual: in-comm o_0 = 2, W = 35, out-comm o_2 = 1.
        let expected = (-1e-4f64 * 2.0).exp() * (-1e-3f64 * 35.0).exp() * (-1e-4f64 * 1.0).exp();
        assert!((r1 - expected).abs() < 1e-12);
        let r2 = replicated_homogeneous_reliability(&c, &p, itv, 2);
        assert!((r2 - (1.0 - (1.0 - expected).powi(2))).abs() < 1e-12);
        assert!(r2 > r1);
    }
}
