//! Algorithm 1: optimal reliability on fully homogeneous platforms.
//!
//! `F(i, k)` is the optimal reliability when mapping the first `i` tasks onto
//! exactly `k` processors; the recurrence tries every possible last interval
//! and every possible replication level `q ≤ min(K, k)` for it:
//!
//! `F(i, k) = max_{j < i, 1 ≤ q ≤ min(K,k)} F(j, k−q) · (1 − (1 − r_comm,j · Π r_l · r_comm,i)^q)`
//!
//! The paper only returns the optimal reliability value; this implementation
//! additionally keeps the dynamic-programming choices and reconstructs an
//! actual [`Mapping`] achieving it.
//!
//! All interval metrics come from the [`IntervalOracle`]: the replica-block
//! reliability of each candidate interval is assembled from precomputed
//! boundary-communication reliabilities and a factored log-reliability
//! exponent prefix (`exp(−ρ(W_i − W_j)) = exp(−ρW_i)·exp(ρW_j)`, two `exp`s
//! per chain position instead of one per interval, with an exact fallback
//! when the exponents are large), the powers `(1 − r)^q` are accumulated
//! incrementally across the replication loop, and the DP tables are flat
//! arenas indexed by `i·(p+1) + k` instead of nested vectors — together
//! several times faster than recomputing Eq. 9 from scratch inside the
//! recurrence. The recurrence maximizes over these (ulp-accurate) factored
//! values; the *reported* reliability of the reconstructed mapping is then
//! recomputed exactly through the oracle's Eq. 9 path, so it always agrees
//! bit-for-bit with [`rpo_model::MappingEvaluation`].

use rpo_model::{Interval, IntervalOracle, MappedInterval, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::{AlgoError, Result};

/// A mapping together with the reliability the dynamic program computed for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalMapping {
    /// The reconstructed mapping.
    pub mapping: Mapping,
    /// Its reliability (Eq. 9), as computed by the dynamic program.
    pub reliability: f64,
}

/// Sentinel for "no recorded choice" in the flat traceback arena.
const NO_CHOICE: u32 = u32::MAX;

/// Interval admissibility of the shared dynamic program: Algorithm 1 admits
/// every interval, Algorithm 2 only those fitting a worst-case period bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum DpFilter {
    /// Every interval is admissible (Algorithm 1).
    All,
    /// `max(o_in/b, W/s, o_out/b) ≤ bound` (Algorithm 2). Decomposed inside
    /// the DP into a per-boundary communication flag, a per-row outgoing
    /// check, and a work-prefix binary search for the first admissible
    /// interval start — inadmissible intervals cost nothing.
    PeriodBound(f64),
}

/// The dynamic program shared by Algorithms 1 and 2.
pub(crate) fn reliability_dp(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    filter: DpFilter,
) -> Option<OptimalMapping> {
    let n = oracle.len();
    let p = oracle.num_processors();
    let k_max = oracle.max_replication().min(p);
    assert!(
        k_max <= 0xFF && n < (1 << 24),
        "packed traceback supports K ≤ 255 and n < 2^24"
    );
    let speed = oracle.classes()[0].speed;
    let bound = match filter {
        DpFilter::All => f64::INFINITY,
        DpFilter::PeriodBound(bound) => bound,
    };
    // Incoming-communication admissibility per interval start, shared by
    // every row (these are exactly the comparisons period_requirement makes).
    let in_ok: Vec<bool> = (0..n).map(|j| oracle.input_comm_time(j) <= bound).collect();
    let work_prefix = oracle.work_prefix();

    // Factored interval reliability: exp(−ρ(W_i − W_j)) = exp(−ρW_i)·exp(ρW_j)
    // over the log-reliability exponent prefix, turning the n²/2 per-interval
    // `exp`s into 2(n+1). Only safe while the exponents stay small (they are
    // for any instance whose reliabilities are not denormal-degenerate);
    // otherwise fall back to one exact `exp` per admissible interval.
    let class = oracle.classes()[0];
    let rho = class.failure_rate / class.speed;
    let factored = rho * oracle.total_work() <= 40.0;
    let (e_minus, e_plus): (Vec<f64>, Vec<f64>) = if factored {
        (
            work_prefix.iter().map(|&w| (-rho * w).exp()).collect(),
            work_prefix.iter().map(|&w| (rho * w).exp()).collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    // f[i·stride + k]: best reliability for the first i tasks on exactly k
    // processors (−∞ = unreachable, so the recurrence needs no reachability
    // branch: −∞ · rel stays −∞ and never wins a max). choice packs the
    // winning (previous boundary j, replica count q) as j·256 + q into one
    // flat arena, so an improvement costs a single extra store.
    let stride = p + 1;
    let mut f = vec![f64::NEG_INFINITY; (n + 1) * stride];
    let mut choice = vec![NO_CHOICE; (n + 1) * stride];
    f[0] = 1.0;

    for i in 1..=n {
        if oracle.output_comm_time(i - 1) > bound {
            continue; // no interval ending at task i−1 fits the period
        }
        let out_rel = oracle.output_comm_reliability(i - 1);
        // Conservative first admissible start: the work prefix is strictly
        // increasing, so intervals starting before this point are too big.
        // The exact per-j division below keeps the semantics identical.
        let j_lo = if bound.is_finite() {
            work_prefix[..i]
                .partition_point(|&w| w < work_prefix[i] - bound * speed)
                .saturating_sub(1)
        } else {
            0
        };
        // Split the arena so the target row and the predecessor rows can be
        // iterated as plain slices (j < i, so every predecessor is in `done`).
        let (done, rest) = f.split_at_mut(i * stride);
        let row_i = &mut rest[..stride];
        let choices = i * stride;
        // Descending j: short last intervals (high block reliability) are
        // tried first, so most later candidates lose the max immediately and
        // the improvement stores stay rare.
        for j in (j_lo..i).rev() {
            if !in_ok[j] || oracle.work(j, i - 1) / speed > bound {
                continue;
            }
            let block = if factored {
                oracle.input_comm_reliability(j) * (e_minus[i] * e_plus[j]) * out_rel
            } else {
                oracle.class_block_reliability(0, j, i - 1)
            };
            let row_j = &done[j * stride..(j + 1) * stride];
            // Only k − q ∈ [min_prev, max_prev] can be reachable in row j:
            // j tasks occupy between 1 (j > 0) and min(p, j·K) processors.
            let min_prev = usize::from(j > 0);
            let max_prev = (j * k_max).min(p);
            // Accumulate (1 − block)^q across the replication loop instead of
            // recomputing the power for every q.
            let mut all_fail = 1.0;
            for q in 1..=k_max {
                all_fail *= 1.0 - block;
                let rel_interval = 1.0 - all_fail;
                let hi = max_prev.min(p - q);
                if min_prev > hi {
                    continue;
                }
                let base = q + min_prev;
                let packed = (j as u32) << 8 | q as u32;
                for (offset, &prev) in row_j[min_prev..=hi].iter().enumerate() {
                    let rel = prev * rel_interval;
                    let k = base + offset;
                    if rel > row_i[k] {
                        row_i[k] = rel;
                        choice[choices + k] = packed;
                    }
                }
            }
        }
    }

    // Best over every possible total processor count.
    let row_n = n * stride;
    let (best_k, best_rel) = (1..=p).map(|k| (k, f[row_n + k])).max_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("totally ordered reliabilities")
    })?;
    if !best_rel.is_finite() {
        return None;
    }

    // Traceback: rebuild intervals and replica counts from the end.
    let mut segments: Vec<(usize, usize, usize)> = Vec::new(); // (first, last, replicas)
    let (mut i, mut k) = (n, best_k);
    while i > 0 {
        let packed = choice[i * stride + k];
        debug_assert!(packed != NO_CHOICE, "reachable state has a recorded choice");
        let j = (packed >> 8) as usize;
        let q = (packed & 0xFF) as usize;
        segments.push((j, i - 1, q));
        i = j;
        k -= q;
    }
    segments.reverse();

    // Assign concrete processor identifiers in order (the platform is
    // homogeneous, so which processors are picked does not matter).
    let mut next_processor = 0;
    let mapped = segments
        .into_iter()
        .map(|(first, last, q)| {
            let processors: Vec<usize> = (next_processor..next_processor + q).collect();
            next_processor += q;
            MappedInterval::new(Interval { first, last }, processors)
        })
        .collect();
    let mapping = Mapping::new(mapped, chain, platform)
        .expect("dynamic program only builds structurally valid mappings");
    // Report the exact Eq. 9 reliability of the reconstructed mapping (the
    // DP maximized over factored values that can differ by an ulp), so the
    // reported value always matches the evaluator and can be fed back as a
    // reliability bound without borderline misses.
    let reliability = oracle.mapping_reliability(&mapping);
    Some(OptimalMapping {
        mapping,
        reliability,
    })
}

/// Algorithm 1: computes a mapping of maximal reliability on a fully
/// homogeneous platform, in time `O(n² p K)`.
///
/// # Errors
///
/// Returns [`AlgoError::HeterogeneousPlatform`] if the platform is not
/// homogeneous (the dynamic program is only optimal in the homogeneous case).
pub fn optimize_reliability_homogeneous(
    chain: &TaskChain,
    platform: &Platform,
) -> Result<OptimalMapping> {
    let oracle = IntervalOracle::new(chain, platform);
    optimize_reliability_homogeneous_with_oracle(&oracle, chain, platform)
}

/// Algorithm 1 against a prebuilt [`IntervalOracle`] (the portfolio shares
/// one oracle across all its backends).
///
/// # Errors
///
/// Same as [`optimize_reliability_homogeneous`].
pub fn optimize_reliability_homogeneous_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
) -> Result<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    reliability_dp(oracle, chain, platform, DpFilter::All).ok_or(AlgoError::NoFeasibleMapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_heterogeneous_platform() {
        let c = chain();
        let p = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            optimize_reliability_homogeneous(&c, &p).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
    }

    #[test]
    fn reported_reliability_matches_evaluation_of_returned_mapping() {
        let c = chain();
        let p = platform(6, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!((sol.reliability - eval.reliability).abs() < 1e-12);
    }

    #[test]
    fn single_processor_forces_single_unreplicated_interval() {
        let c = chain();
        let p = platform(1, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        assert_eq!(sol.mapping.num_intervals(), 1);
        assert_eq!(sol.mapping.processors_used(), 1);
    }

    #[test]
    fn plenty_of_processors_replicates_every_interval_k_times() {
        let c = chain();
        let p = platform(12, 3);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        for mi in sol.mapping.intervals() {
            assert_eq!(mi.replication(), 3);
        }
    }

    #[test]
    fn optimum_matches_brute_force_on_small_instance() {
        let c = TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0)]).unwrap();
        let p = platform(4, 2);
        let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
        let brute = crate::exact::brute_force(&c, &p, f64::INFINITY, f64::INFINITY).unwrap();
        assert!((sol.reliability - brute.reliability).abs() < 1e-12);
    }

    #[test]
    fn more_processors_never_hurt_reliability() {
        let c = chain();
        let mut previous = 0.0;
        for p_count in 1..=8 {
            let p = platform(p_count, 3);
            let sol = optimize_reliability_homogeneous(&c, &p).unwrap();
            assert!(sol.reliability >= previous - 1e-15);
            previous = sol.reliability;
        }
    }

    #[test]
    fn oracle_entry_point_matches_the_wrapper() {
        let c = chain();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        let direct = optimize_reliability_homogeneous(&c, &p).unwrap();
        let via_oracle = optimize_reliability_homogeneous_with_oracle(&oracle, &c, &p).unwrap();
        assert_eq!(direct.reliability, via_oracle.reliability);
        assert_eq!(direct.mapping, via_oracle.mapping);
    }

    #[test]
    fn oracle_replicated_reliability_includes_communications() {
        let c = chain();
        let p = platform(4, 3);
        let oracle = IntervalOracle::new(&c, &p);
        let r1 = oracle.replicated_reliability(1, 2, 1);
        // Manual: in-comm o_0 = 2, W = 35, out-comm o_2 = 1.
        let expected = (-1e-4f64 * 2.0).exp() * (-1e-3f64 * 35.0).exp() * (-1e-4f64 * 1.0).exp();
        assert!((r1 - expected).abs() < 1e-12);
        let r2 = oracle.replicated_reliability(1, 2, 2);
        assert!((r2 - (1.0 - (1.0 - expected).powi(2))).abs() < 1e-12);
        assert!(r2 > r1);
    }
}
