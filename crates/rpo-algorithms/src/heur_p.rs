//! Heur-P (Algorithm 4): period-oriented interval computation.
//!
//! To split the chain into `m` intervals, Heur-P balances the work of the
//! intervals with a dynamic program minimizing the period of the partition:
//! `F(j, k)` is the best achievable period when grouping the first `j` tasks
//! into `k` intervals, where the contribution of an interval ending at task
//! `j` is `max(Σ w, o_j)` (its computation time at unit speed and its
//! outgoing communication).

use rpo_model::{IntervalOracle, IntervalPartition, TaskChain};

/// Computes the Heur-P partition of `chain` into exactly `num_intervals`
/// intervals, together with the period value the dynamic program optimized.
///
/// # Panics
///
/// Panics if `num_intervals` is zero or exceeds the number of tasks.
pub fn heur_p_partition(chain: &TaskChain, num_intervals: usize) -> IntervalPartition {
    heur_p_partition_with_period(chain, num_intervals).0
}

/// Heur-P reading the interval works and boundary costs from a prebuilt
/// [`IntervalOracle`].
///
/// # Panics
///
/// Panics if `num_intervals` is zero or exceeds the number of tasks.
pub fn heur_p_partition_with_oracle(
    oracle: &IntervalOracle,
    num_intervals: usize,
) -> IntervalPartition {
    balanced_partition(oracle.len(), num_intervals, |first, last| {
        oracle.work(first, last).max(oracle.output_size(last))
    })
    .0
}

/// Same as [`heur_p_partition`], also returning the optimal period metric
/// (`max` over intervals of `max(Σ w, o_last)`) found by the dynamic program.
pub fn heur_p_partition_with_period(
    chain: &TaskChain,
    num_intervals: usize,
) -> (IntervalPartition, f64) {
    balanced_partition(chain.len(), num_intervals, |first, last| {
        chain
            .interval_work(first, last)
            .max(chain.output_size(last))
    })
}

/// The shared dynamic program, parameterized over the per-interval cost
/// `max(Σ w, o_last)`.
fn balanced_partition(
    n: usize,
    num_intervals: usize,
    interval_cost: impl Fn(usize, usize) -> f64,
) -> (IntervalPartition, f64) {
    assert!(
        (1..=n).contains(&num_intervals),
        "number of intervals must be within 1..={n}, got {num_intervals}"
    );

    // f[j][k]: minimal period for the first j tasks (1-based count) in k intervals.
    // pred[j][k]: value j' (task count of the prefix) realizing the optimum.
    let mut f = vec![vec![f64::INFINITY; num_intervals + 1]; n + 1];
    let mut pred = vec![vec![0usize; num_intervals + 1]; n + 1];
    for (j, row) in f.iter_mut().enumerate().take(n + 1).skip(1) {
        row[1] = interval_cost(0, j - 1);
    }
    for k in 2..=num_intervals {
        for j in k..=n {
            for prev in (k - 1)..j {
                let value = f[prev][k - 1].max(interval_cost(prev, j - 1));
                if value < f[j][k] {
                    f[j][k] = value;
                    pred[j][k] = prev;
                }
            }
        }
    }

    // Traceback the cut points.
    let mut cuts = Vec::with_capacity(num_intervals - 1);
    let mut j = n;
    let mut k = num_intervals;
    while k > 1 {
        let prev = pred[j][k];
        cuts.push(prev - 1); // cut after task index prev-1 (0-based)
        j = prev;
        k -= 1;
    }
    cuts.reverse();
    let partition = IntervalPartition::from_cut_points(&cuts, n)
        .expect("dynamic-programming traceback produces a valid partition");
    (partition, f[n][num_intervals])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[
            (10.0, 5.0),
            (20.0, 1.0),
            (30.0, 4.0),
            (40.0, 2.0),
            (50.0, 3.0),
        ])
        .unwrap()
    }

    /// Brute-force optimal period metric over all partitions into `m` intervals.
    fn brute_force_period(c: &TaskChain, m: usize) -> f64 {
        let n = c.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << (n - 1)) {
            if mask.count_ones() as usize != m - 1 {
                continue;
            }
            let cuts: Vec<usize> = (0..n - 1).filter(|&i| mask & (1 << i) != 0).collect();
            let p = IntervalPartition::from_cut_points(&cuts, n).unwrap();
            let period = p
                .intervals()
                .iter()
                .map(|itv| itv.work(c).max(itv.output_size(c)))
                .fold(0.0, f64::max);
            best = best.min(period);
        }
        best
    }

    #[test]
    fn one_interval_is_the_whole_chain() {
        let c = chain();
        let (p, period) = heur_p_partition_with_period(&c, 1);
        assert_eq!(p.len(), 1);
        assert_eq!(period, 150.0);
    }

    #[test]
    fn dp_matches_brute_force_for_every_interval_count() {
        let c = chain();
        for m in 1..=c.len() {
            let (partition, period) = heur_p_partition_with_period(&c, m);
            assert_eq!(partition.len(), m);
            let brute = brute_force_period(&c, m);
            assert!(
                (period - brute).abs() < 1e-12,
                "m = {m}: dp period {period} vs brute force {brute}"
            );
            // The reported period matches the partition it returns.
            let actual = partition
                .intervals()
                .iter()
                .map(|itv| itv.work(&c).max(itv.output_size(&c)))
                .fold(0.0, f64::max);
            assert!((actual - period).abs() < 1e-12);
        }
    }

    #[test]
    fn balanced_split_of_uniform_chain() {
        let c = TaskChain::from_pairs(&[(10.0, 1.0); 6]).unwrap();
        let (p, period) = heur_p_partition_with_period(&c, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(period, 20.0);
        for itv in p.intervals() {
            assert_eq!(itv.len(), 2);
        }
    }

    #[test]
    fn more_intervals_never_increase_the_period_metric() {
        let c = chain();
        let mut previous = f64::INFINITY;
        for m in 1..=c.len() {
            let (_, period) = heur_p_partition_with_period(&c, m);
            assert!(period <= previous + 1e-12);
            previous = period;
        }
    }

    #[test]
    fn communication_can_dominate_the_period() {
        // A huge output communication on task 0 dominates any split that cuts there.
        let c = TaskChain::from_pairs(&[(1.0, 100.0), (1.0, 1.0), (1.0, 1.0)]).unwrap();
        let (p, period) = heur_p_partition_with_period(&c, 2);
        // Best: avoid cutting after task 0; cut after task 1 instead.
        assert_eq!(p.cut_points(), vec![1]);
        assert!((period - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "number of intervals must be within")]
    fn too_many_intervals_panics() {
        heur_p_partition(&chain(), 6);
    }
}
