//! `algo_het_lat`: latency-aware exact reliability optimization on
//! heterogeneous platforms — the paper's full tri-criteria problem
//! (reliability × period × latency, Eqs. 1–9) at class level.
//!
//! The latency-constrained heterogeneous problem is what makes the paper's
//! general case NP-complete, but it inherits all the structure `algo_het`
//! exploits — and one more piece: the worst-case latency (Eq. 7) is
//! **additive over intervals**, with each interval contributing
//! `W(j, i) / s_slowest + comm_out(i)`. Those terms live on the
//! boundary-indexed grid the [`IntervalOracle`] precomputes (the per-class
//! compute prefixes of [`rpo_model::ClassView::compute_prefix`] crossed with
//! the per-boundary communication times), so the latency-so-far of any
//! partial mapping is a sum of grid values — a *finite* set per boundary.
//!
//! [`algo_het_lat`] runs an exact dynamic program over
//!
//! `F(i, b) = the non-dominated (latency, reliability) labels of partial
//! mappings covering tasks `1 … i` with per-class remaining budgets `b``
//!
//! — the `(boundary, budgets, latency-so-far)` state space, stored sparsely:
//! each `(i, b)` state keeps only its Pareto-minimal labels (smaller latency
//! or larger reliability), because both criteria compose monotonically along
//! a common suffix (latency adds the same terms, reliability multiplies by
//! the same factors ≤ 1), so a dominated label can never overtake. Labels
//! whose latency already exceeds the bound are cut immediately (latency only
//! grows), and labels whose reliability falls below the greedy incumbent are
//! cut exactly as in `algo_het`. Latency is accumulated left-to-right from
//! [`IntervalOracle::class_latency_term`]s — operation for operation the sum
//! [`IntervalOracle::evaluate`] computes — so the feasibility decision and
//! the final re-scored `worst_case_latency` agree **bit-for-bit**, and the
//! returned reliability is the exact Eq. 9 value of the lowered mapping.
//!
//! When an instance's label population exceeds [`MAX_LAT_LABELS`] (the
//! latency analogue of `algo_het`'s budget-state cap), the exact DP aborts
//! and a **Lagrangian / parametric sweep** takes over: maximize the penalized
//! product `Π rel_k · e^{−μ·lat_k}` — the same scalar class DP with each
//! `(interval, pattern)` factor damped by `e^{−μ·latency term}` — while
//! bisecting the penalty `μ ≥ 0` and keeping the best *feasible* incumbent.
//! The optimal latency of the penalized argmax is non-increasing in `μ`, so
//! bisection is sound. The sweep is **exact** when the latency-unconstrained
//! optimum (`μ = 0`) is already feasible, or when the constrained optimum
//! lies on the convex hull of the instance's (latency, log-reliability)
//! Pareto curve; between hull points it is a heuristic — which is why the
//! greedy pipeline's feasible incumbent is still compared at the end, and
//! the result never trails [`greedy_het_lat_with_oracle`].

use rpo_model::{assignment_from_segments, IntervalOracle, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::algo1::{DpScratch, OptimalMapping};
use crate::algo_het::{
    budget_states, class_strides, enumerate_patterns, greedy_het_bounded, het_dp_applicable,
    validate_bound, Pattern, Segments, MAX_EXHAUSTIVE_HET_TASKS,
};
use crate::{AlgoError, Result};

/// Largest total number of live `(latency, reliability)` labels the exact
/// latency DP may hold across all `(boundary, budgets)` states; beyond it
/// the DP aborts and [`algo_het_lat`] falls back to the Lagrangian sweep.
pub const MAX_LAT_LABELS: usize = 200_000;

/// Bisection steps of the Lagrangian penalty sweep (after the initial
/// doubling search for a feasible penalty).
const LAGRANGIAN_STEPS: usize = 40;

/// Which strategy produced an [`algo_het_lat`] solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HetLatMethod {
    /// The exact label DP over `(boundary, budgets, latency-so-far)` states.
    LatDp,
    /// The Lagrangian / parametric penalty sweep (the fallback when the
    /// label population exceeds [`MAX_LAT_LABELS`]). Exact when the `μ = 0`
    /// solve is already latency-feasible; heuristic otherwise.
    Lagrangian,
    /// The latency-aware greedy pipeline — the fallback for large class
    /// counts, or when its recomputed reliability comes out strictly higher
    /// (possible only against the Lagrangian sweep, or via floating-point
    /// ulps against the exact DP).
    Greedy,
}

/// One point of the latency–reliability Pareto front surfaced by
/// [`algo_het_lat`]'s label DP: a lowered mapping with its exact Eq. 9
/// reliability and Eq. 7 worst-case latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HetLatFrontPoint {
    /// The lowered mapping of this front point.
    pub mapping: Mapping,
    /// Its reliability, recomputed exactly through the oracle.
    pub reliability: f64,
    /// Its worst-case latency, recomputed exactly through the oracle.
    pub worst_case_latency: f64,
}

/// An [`algo_het_lat`] solution: the mapping, its exact Eq. 9 reliability
/// and Eq. 7 worst-case latency, and the strategy that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HetLatSolution {
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Its reliability, recomputed exactly through the oracle.
    pub reliability: f64,
    /// Its worst-case latency, recomputed exactly through the oracle
    /// (always ≤ the requested bound).
    pub worst_case_latency: f64,
    /// Which strategy won.
    pub method: HetLatMethod,
    /// Exact reliability of the latency-aware greedy pipeline's own best
    /// mapping, when it found one (`algo_het_lat` always runs the greedy as
    /// fallback and pruner, so sweeps comparing DP vs greedy read both from
    /// one solve).
    pub greedy_reliability: Option<f64>,
    /// The merged latency–reliability Pareto front of the label DP's final
    /// boundary: every non-dominated `(latency, reliability)` trade-off the
    /// DP discovered while optimizing, each lowered to a concrete mapping —
    /// not just the max-reliability point the solver returns. Singleton
    /// (the chosen mapping) on the Lagrangian and greedy paths, which
    /// optimize a single point. Always contains the chosen mapping.
    #[serde(default)]
    pub front: Vec<HetLatFrontPoint>,
}

/// Counts which strategy produced each returned solution, making the
/// once-silent Lagrangian/greedy fallbacks observable.
fn note_path(method: HetLatMethod) {
    match method {
        HetLatMethod::LatDp => rpo_obs::counter!("het_lat.path.label_dp").inc(),
        HetLatMethod::Lagrangian => rpo_obs::counter!("het_lat.path.lagrangian").inc(),
        HetLatMethod::Greedy => rpo_obs::counter!("het_lat.path.greedy").inc(),
    }
}

fn validate_latency_bound(latency_bound: f64) -> Result<f64> {
    if latency_bound.is_finite() && latency_bound > 0.0 {
        Ok(latency_bound)
    } else {
        Err(AlgoError::InvalidBound("latency bound"))
    }
}

/// `algo_het_lat`: the most reliable mapping of `chain` onto the (possibly
/// heterogeneous) `platform` whose worst-case latency fits `latency_bound`,
/// under an optional worst-case period bound.
///
/// Exact (label DP) whenever [`het_dp_applicable`] holds and the latency
/// label population stays within [`MAX_LAT_LABELS`]; the Lagrangian sweep
/// on label overflow within that regime; and the latency-aware greedy
/// pipeline alone when the class DP is not applicable at all (too many
/// classes / budget states). In all cases the result is never less reliable
/// than [`greedy_het_lat_with_oracle`]'s on the same instance, and the
/// returned mapping never violates either bound.
///
/// # Errors
///
/// * [`AlgoError::InvalidBound`] if the latency bound is NaN, infinite or
///   not positive, or the period bound is not a positive finite number;
/// * [`AlgoError::NoFeasibleMapping`] if no mapping fits the bounds (e.g. a
///   latency bound below the single-interval floor
///   [`IntervalOracle::latency_floor`]).
pub fn algo_het_lat(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    latency_bound: f64,
) -> Result<HetLatSolution> {
    let oracle = IntervalOracle::new(chain, platform);
    algo_het_lat_with_oracle(&oracle, chain, platform, period_bound, latency_bound)
}

/// [`algo_het_lat`] against a prebuilt [`IntervalOracle`] (the portfolio
/// shares one oracle across all its backends).
///
/// # Errors
///
/// Same as [`algo_het_lat`].
pub fn algo_het_lat_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    latency_bound: f64,
) -> Result<HetLatSolution> {
    let mut scratch = DpScratch::new();
    algo_het_lat_with_scratch(
        oracle,
        chain,
        platform,
        period_bound,
        latency_bound,
        &mut scratch,
    )
}

/// [`algo_het_lat_with_oracle`] against caller-owned [`DpScratch`]: the
/// label DP's per-state label vectors and per-class gather buffers live in
/// the scratch's pooled arenas ([`HetLatArenas`]), so a batch driver that
/// reuses one scratch across latency-bounded solves stops churning
/// allocations (reuse is visible through the
/// `het_lat.label_pool.{hits,misses}` counters).
///
/// # Errors
///
/// Same as [`algo_het_lat`].
pub fn algo_het_lat_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    latency_bound: f64,
    scratch: &mut DpScratch,
) -> Result<HetLatSolution> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    validate_bound(period_bound)?;
    validate_latency_bound(latency_bound)?;
    let _span = rpo_obs::span!("het_lat.solve", tasks = oracle.len());

    // The latency-aware greedy pipeline first: fallback when the DP cannot
    // run, upper-bound pruner when it can.
    let greedy = greedy_het_lat_with_oracle(oracle, chain, platform, period_bound, latency_bound);
    let greedy_reliability = greedy.as_ref().ok().map(|g| g.reliability);
    if !het_dp_applicable(oracle) {
        return greedy.map(|solution| {
            let worst_case_latency = oracle.evaluate(&solution.mapping).worst_case_latency;
            note_path(HetLatMethod::Greedy);
            HetLatSolution {
                front: vec![HetLatFrontPoint {
                    mapping: solution.mapping.clone(),
                    reliability: solution.reliability,
                    worst_case_latency,
                }],
                mapping: solution.mapping,
                reliability: solution.reliability,
                worst_case_latency,
                method: HetLatMethod::Greedy,
                greedy_reliability,
            }
        });
    }

    let incumbent = greedy_reliability.unwrap_or(0.0);
    let (dp, method) = match label_dp(
        oracle,
        chain,
        platform,
        period_bound,
        latency_bound,
        incumbent,
        &mut scratch.het_lat,
    ) {
        LabelDpOutcome::Solved(solution) => (solution, HetLatMethod::LatDp),
        LabelDpOutcome::Overflow => (
            lagrangian_sweep(oracle, chain, platform, period_bound, latency_bound)
                .map(|solution| (solution, Vec::new())),
            HetLatMethod::Lagrangian,
        ),
    };

    // Both reliabilities are recomputed exactly, so picking the larger one
    // guarantees the "never below greedy" invariant bit-for-bit. The chosen
    // mapping always joins the surfaced front (the label DP's merged front
    // when it ran, a singleton otherwise).
    let finish = |mapping: Mapping,
                  reliability: f64,
                  method: HetLatMethod,
                  mut front: Vec<HetLatFrontPoint>| {
        let evaluation = oracle.evaluate(&mapping);
        debug_assert!(evaluation.worst_case_latency <= latency_bound);
        note_path(method);
        if !front.iter().any(|point| point.mapping == mapping) {
            front.push(HetLatFrontPoint {
                mapping: mapping.clone(),
                reliability,
                worst_case_latency: evaluation.worst_case_latency,
            });
        }
        HetLatSolution {
            mapping,
            reliability,
            worst_case_latency: evaluation.worst_case_latency,
            method,
            greedy_reliability,
            front,
        }
    };
    match (dp, greedy) {
        (Some((dp, front)), Ok(greedy)) if greedy.reliability > dp.reliability => Ok(finish(
            greedy.mapping,
            greedy.reliability,
            HetLatMethod::Greedy,
            front,
        )),
        (Some((dp, front)), _) => Ok(finish(dp.mapping, dp.reliability, method, front)),
        (None, Ok(greedy)) => Ok(finish(
            greedy.mapping,
            greedy.reliability,
            HetLatMethod::Greedy,
            Vec::new(),
        )),
        (None, Err(e)) => Err(e),
    }
}

/// The Section 7.2 greedy pipeline under **both** real-time bounds: Heur-L
/// and Heur-P partitions for every interval count, each allocated with
/// `alloc_het`, keeping the most reliable mapping whose worst-case period
/// *and* latency fit the bounds — the latency-aware analogue of
/// [`greedy_het_with_oracle`], and the comparison baseline of the
/// `BENCH_het_lat.json` benchmark and the `--het-lat` experiment sweep.
///
/// # Errors
///
/// * [`AlgoError::InvalidBound`] if a bound is invalid;
/// * [`AlgoError::NoFeasibleMapping`] if no candidate fits the bounds.
pub fn greedy_het_lat_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    let bound = validate_bound(period_bound)?;
    let latency_bound = validate_latency_bound(latency_bound)?;
    greedy_het_bounded(oracle, chain, platform, bound, latency_bound)
}

/// One `(latency, reliability)` label of a `(boundary, budgets)` state, with
/// its traceback: which interval start `j`, pattern, and predecessor label
/// produced it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Label {
    lat: f64,
    rel: f64,
    j: u32,
    pattern: u32,
    pred_label: u32,
}

/// Pooled arenas of the latency label DP, owned by [`DpScratch`] so batch
/// callers reuse the per-state label vectors and per-class gather buffers
/// across latency-bounded solves instead of reallocating them per instance.
/// Every buffer is cleared (capacity kept) before use, so no label or block
/// value ever leaks across instances.
#[derive(Debug, Default)]
pub(crate) struct HetLatArenas {
    /// Per-`(boundary, budgets)` Pareto label lists.
    states: Vec<Vec<Label>>,
    /// Per-class block-row gather buffers.
    rows: Vec<Vec<f64>>,
    /// Per-class failure powers `(1 − block)^q`.
    powers: Vec<Vec<f64>>,
}

impl HetLatArenas {
    /// Clears every instance-specific datum while keeping all allocated
    /// capacity — both the outer arenas and each inner vector.
    pub(crate) fn reset(&mut self) {
        for labels in &mut self.states {
            labels.clear();
        }
        for row in &mut self.rows {
            row.clear();
        }
        for pow in &mut self.powers {
            pow.clear();
        }
    }

    /// Prepares the arenas for one label-DP run of `len` states over `kc`
    /// classes with replication bound `k_max`, recording pool reuse: a hit
    /// when the state arena's capacity already covers the run, a miss when
    /// it has to grow.
    fn prepare(&mut self, len: usize, kc: usize, k_max: usize) {
        if self.states.capacity() >= len {
            rpo_obs::counter!("het_lat.label_pool.hits").inc();
        } else {
            rpo_obs::counter!("het_lat.label_pool.misses").inc();
        }
        for labels in &mut self.states {
            labels.clear();
        }
        self.states.truncate(len);
        self.states.resize_with(len, Vec::new);
        self.rows.truncate(kc);
        self.rows.resize_with(kc, Vec::new);
        for pow in &mut self.powers {
            pow.clear();
        }
        self.powers.truncate(kc);
        self.powers.resize_with(kc, Vec::new);
        for pow in &mut self.powers {
            pow.resize(k_max + 1, 1.0);
        }
    }
}

/// What the exact label DP produced.
enum LabelDpOutcome {
    /// The DP ran to completion (`None`: no feasible mapping). A solution
    /// carries the merged final-boundary Pareto front alongside the
    /// max-reliability optimum.
    Solved(Option<(OptimalMapping, Vec<HetLatFrontPoint>)>),
    /// The label population exceeded [`MAX_LAT_LABELS`]; the caller falls
    /// back to the Lagrangian sweep.
    Overflow,
}

/// Inserts a label into a state's Pareto-minimal list (strictly ascending
/// latency **and** reliability), returning the change in live label count,
/// or `None` when the new label is dominated (the list is unchanged then).
fn insert_label(labels: &mut Vec<Label>, label: Label) -> Option<isize> {
    // First index with lat ≥ label.lat: labels[..lo] have lat < label.lat.
    let lo = labels.partition_point(|l| l.lat < label.lat);
    // Dominated by a strictly-faster label, or by an equal-latency label
    // with at least the same reliability?
    if lo > 0 && labels[lo - 1].rel >= label.rel {
        return None;
    }
    if lo < labels.len() && labels[lo].lat == label.lat && labels[lo].rel >= label.rel {
        return None;
    }
    // Evict labels with larger-or-equal latency and smaller-or-equal
    // reliability (they are dominated by the new label).
    let mut end = lo;
    while end < labels.len() && labels[end].rel <= label.rel {
        end += 1;
    }
    let removed = end - lo;
    labels.splice(lo..end, std::iter::once(label));
    Some(1 - removed as isize)
}

/// The exact label DP over `(boundary, per-class budgets, latency-so-far)`.
///
/// The admissibility prelude and block-row gather mirror
/// `algo_het::class_dp` and [`penalized_dp`] — the three DPs differ in
/// their value type, so a fix to the shared shape must land in all three.
#[allow(clippy::too_many_arguments)]
fn label_dp(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    latency_bound: f64,
    incumbent: f64,
    arenas: &mut HetLatArenas,
) -> LabelDpOutcome {
    let n = oracle.len();
    let view = oracle.class_view();
    let kc = view.len();
    let k_max = oracle.max_replication().min(oracle.num_processors());

    let strides = class_strides(view);
    let num_states = budget_states(view);
    let patterns = enumerate_patterns(view, k_max, &strides);
    assert!(
        patterns.len() < (1 << 32) && n < (1 << 24) && num_states < (1 << 32),
        "label traceback supports < 2^32 patterns/labels and n < 2^24"
    );

    let bound = period_bound.unwrap_or(f64::INFINITY);
    let prune_below = incumbent * (1.0 - 1e-9);
    let work_prefix = oracle.work_prefix();
    let max_speed = view.max_speed();
    let in_ok: Vec<bool> = (0..n).map(|j| oracle.input_comm_time(j) <= bound).collect();

    let full = num_states - 1;
    // Per-state label lists, per-class block-row gather buffers, and per-class
    // failure powers (1 − block)^q all come from the pooled arenas — same
    // shape as the scalar class DP, but reused across solves.
    arenas.prepare((n + 1) * num_states, kc, k_max);
    let HetLatArenas {
        states,
        rows,
        powers,
    } = arenas;
    states[full].push(Label {
        lat: 0.0,
        rel: 1.0,
        j: 0,
        pattern: 0,
        pred_label: 0,
    });
    let mut live_labels: isize = 1;
    let mut labels_inserted: u64 = 1;

    for i in 1..=n {
        if oracle.output_comm_time(i - 1) > bound {
            continue;
        }
        let j_lo = if bound.is_finite() {
            work_prefix[..i]
                .partition_point(|&w| w < work_prefix[i] - bound * max_speed)
                .saturating_sub(1)
        } else {
            0
        };
        for (c, row) in rows.iter_mut().enumerate() {
            oracle.fill_class_block_row(c, i - 1, j_lo, row);
        }
        let (done, rest) = states.split_at_mut(i * num_states);
        let row_i = &mut rest[..num_states];
        for j in (j_lo..i).rev() {
            if !in_ok[j] {
                continue;
            }
            let work = work_prefix[i] - work_prefix[j];
            if work / max_speed > bound {
                continue;
            }
            for (c, row) in rows.iter().enumerate() {
                let all_fail = 1.0 - row[j - j_lo];
                let pow = &mut powers[c];
                for q in 1..=k_max {
                    pow[q] = pow[q - 1] * all_fail;
                }
            }
            let row_j = &done[j * num_states..(j + 1) * num_states];
            for (pattern_index, pattern) in patterns.iter().enumerate() {
                if work / pattern.min_speed > bound {
                    continue;
                }
                // The pattern's exact latency term on this interval: the
                // slowest used class's compute time plus the outgoing
                // communication — evaluator operation order.
                let lat_term = oracle.class_latency_term(pattern.min_speed_class, j, i - 1);
                let survive: f64 = pattern
                    .counts
                    .iter()
                    .enumerate()
                    .map(|(c, &qc)| powers[c][qc])
                    .product();
                let rel = 1.0 - survive;
                for &s in &pattern.valid_predecessors {
                    let s = s as usize;
                    let target = s - pattern.offset;
                    for (pred_label, label) in row_j[s].iter().enumerate() {
                        let lat = label.lat + lat_term;
                        if lat > latency_bound {
                            // Labels are sorted by ascending latency: every
                            // later label of this state overflows too.
                            break;
                        }
                        let cand = label.rel * rel;
                        if cand < prune_below {
                            continue;
                        }
                        if let Some(delta) = insert_label(
                            &mut row_i[target],
                            Label {
                                lat,
                                rel: cand,
                                j: j as u32,
                                pattern: pattern_index as u32,
                                pred_label: pred_label as u32,
                            },
                        ) {
                            live_labels += delta;
                            labels_inserted += 1;
                        }
                    }
                }
            }
            if live_labels as usize > MAX_LAT_LABELS {
                rpo_obs::counter!("het_lat.labels").add(labels_inserted);
                rpo_obs::counter!("het_lat.label_cap_aborts").inc();
                return LabelDpOutcome::Overflow;
            }
        }
    }

    rpo_obs::counter!("het_lat.labels").add(labels_inserted);

    // Merge the final boundary's per-state Pareto label lists into one
    // latency–reliability front: each list is already non-dominated within
    // its budget state; the cross-state merge sorts by (latency asc,
    // reliability desc) and keeps the strictly-improving reliabilities.
    let mut finals: Vec<(usize, usize, f64, f64)> = Vec::new(); // (s, idx, lat, rel)
    for s in 0..num_states {
        for (idx, label) in states[n * num_states + s].iter().enumerate() {
            finals.push((s, idx, label.lat, label.rel));
        }
    }
    if finals.is_empty() {
        return LabelDpOutcome::Solved(None);
    }
    finals.sort_by(|a, b| {
        a.2.partial_cmp(&b.2)
            .expect("finite label latencies")
            .then(b.3.partial_cmp(&a.3).expect("finite label reliabilities"))
    });
    let mut merged: Vec<(usize, usize)> = Vec::new();
    let mut best_rel = f64::NEG_INFINITY;
    for &(s, idx, _lat, rel) in &finals {
        if rel > best_rel {
            best_rel = rel;
            merged.push((s, idx));
        }
    }

    // Traceback a final label through its predecessors, then lower. Every
    // merged front point gets its own mapping; the last one (max DP
    // reliability) is the returned optimum.
    let states = &*states;
    let traceback = |(mut s, mut label_idx): (usize, usize)| -> Mapping {
        let mut segments: Segments = Vec::new();
        let mut i = n;
        while i > 0 {
            let label = states[i * num_states + s][label_idx];
            let pattern = &patterns[label.pattern as usize];
            let j = label.j as usize;
            segments.push((j, i - 1, pattern.counts.clone()));
            s += pattern.offset;
            label_idx = label.pred_label as usize;
            i = j;
        }
        segments.reverse();
        let (partition, assignment) =
            assignment_from_segments(&segments, n).expect("DP segments form a valid partition");
        assignment
            .lower(oracle.class_view(), &partition, chain, platform)
            .expect("DP respects every class budget")
    };
    // Exact re-score: Eq. 9 reliability of every lowered mapping (the DP
    // maximized factored values that can differ by an ulp; the latency is
    // bit-identical by construction but re-read from the evaluator anyway).
    let front: Vec<HetLatFrontPoint> = merged
        .into_iter()
        .map(|ids| {
            let mapping = traceback(ids);
            let reliability = oracle.mapping_reliability(&mapping);
            let worst_case_latency = oracle.evaluate(&mapping).worst_case_latency;
            HetLatFrontPoint {
                mapping,
                reliability,
                worst_case_latency,
            }
        })
        .collect();
    rpo_obs::counter!("het_lat.front_points").add(front.len() as u64);
    let best = front.last().expect("the merged front is non-empty");
    let optimum = OptimalMapping {
        mapping: best.mapping.clone(),
        reliability: best.reliability,
    };
    LabelDpOutcome::Solved(Some((optimum, front)))
}

/// One scalar penalized class DP: maximizes `Π rel · e^{−μ·lat}` over the
/// `(boundary, budgets)` states and returns the argmax mapping with its
/// exact reliability and worst-case latency (or `None` when nothing fits the
/// period bound).
///
/// Scores are carried in **log space** (`Σ ln rel − μ·lat`): with the
/// penalty in the exponent, a product-space score would underflow to 0 once
/// `μ·lat` passes ~745 and every candidate would tie at 0 — turning the
/// most latency-averse probes of the doubling search into arbitrary
/// first-visited mappings. Additive log scores stay finite and ordered for
/// any `μ` the sweep can reach.
///
/// The loop structure (admissibility prelude, block-row gather, packed
/// traceback) deliberately mirrors `algo_het::class_dp` and `label_dp` —
/// the three DPs differ in their value type (product / penalized log /
/// label list), so a fix to the shared shape must be applied to all three.
#[allow(clippy::too_many_arguments)]
fn penalized_dp(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    bound: f64,
    mu: f64,
    num_states: usize,
    patterns: &[Pattern],
) -> Option<(Mapping, f64, f64)> {
    rpo_obs::counter!("het_lat.mu_iterations").inc();
    let n = oracle.len();
    let view = oracle.class_view();
    let kc = view.len();
    let k_max = oracle.max_replication().min(oracle.num_processors());
    let work_prefix = oracle.work_prefix();
    let max_speed = view.max_speed();
    let in_ok: Vec<bool> = (0..n).map(|j| oracle.input_comm_time(j) <= bound).collect();

    const NO_CHOICE: u64 = u64::MAX;
    let full = num_states - 1;
    let mut f = vec![f64::NEG_INFINITY; (n + 1) * num_states];
    let mut choice = vec![NO_CHOICE; (n + 1) * num_states];
    f[full] = 0.0; // log-space: ln(1) = 0

    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); kc];
    let mut powers: Vec<Vec<f64>> = vec![vec![1.0; k_max + 1]; kc];

    for i in 1..=n {
        if oracle.output_comm_time(i - 1) > bound {
            continue;
        }
        let j_lo = if bound.is_finite() {
            work_prefix[..i]
                .partition_point(|&w| w < work_prefix[i] - bound * max_speed)
                .saturating_sub(1)
        } else {
            0
        };
        for (c, row) in rows.iter_mut().enumerate() {
            oracle.fill_class_block_row(c, i - 1, j_lo, row);
        }
        let (done, rest) = f.split_at_mut(i * num_states);
        let row_i = &mut rest[..num_states];
        let choice_base = i * num_states;
        for j in (j_lo..i).rev() {
            if !in_ok[j] {
                continue;
            }
            let work = work_prefix[i] - work_prefix[j];
            if work / max_speed > bound {
                continue;
            }
            for (c, row) in rows.iter().enumerate() {
                let all_fail = 1.0 - row[j - j_lo];
                let pow = &mut powers[c];
                for q in 1..=k_max {
                    pow[q] = pow[q - 1] * all_fail;
                }
            }
            let row_j = &done[j * num_states..(j + 1) * num_states];
            for (pattern_index, pattern) in patterns.iter().enumerate() {
                if work / pattern.min_speed > bound {
                    continue;
                }
                // The factored (boundary-indexed grid) latency term: the
                // penalized score tolerates an ulp — the argmax mapping is
                // re-scored through the exact evaluator below.
                let lat_term =
                    oracle.class_latency_term_factored(pattern.min_speed_class, j, i - 1);
                let survive: f64 = pattern
                    .counts
                    .iter()
                    .enumerate()
                    .map(|(c, &qc)| powers[c][qc])
                    .product();
                // `ln rel − μ·lat`; `ln(0) = −∞` cleanly marks a
                // zero-reliability pattern as never-chosen.
                let factor = (1.0 - survive).ln() - mu * lat_term;
                let packed = (j as u64) << 32 | pattern_index as u64;
                for &s in &pattern.valid_predecessors {
                    let s = s as usize;
                    let prev = row_j[s];
                    if prev.is_finite() {
                        let cand = prev + factor;
                        let target = s - pattern.offset;
                        if cand > row_i[target] {
                            row_i[target] = cand;
                            choice[choice_base + target] = packed;
                        }
                    }
                }
            }
        }
    }

    let row_n = &f[n * num_states..];
    let (best_state, best_score) = row_n
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("totally ordered scores"))
        .map(|(s, &r)| (s, r))?;
    if !best_score.is_finite() {
        return None;
    }

    let mut segments: Segments = Vec::new();
    let (mut i, mut s) = (n, best_state);
    while i > 0 {
        let packed = choice[i * num_states + s];
        debug_assert!(packed != NO_CHOICE, "reachable state has a recorded choice");
        let j = (packed >> 32) as usize;
        let pattern = &patterns[(packed & 0xFFFF_FFFF) as usize];
        segments.push((j, i - 1, pattern.counts.clone()));
        s += pattern.offset;
        i = j;
    }
    segments.reverse();
    let (partition, assignment) =
        assignment_from_segments(&segments, n).expect("DP segments form a valid partition");
    let mapping = assignment
        .lower(oracle.class_view(), &partition, chain, platform)
        .expect("DP respects every class budget");
    let evaluation = oracle.evaluate(&mapping);
    Some((
        mapping,
        evaluation.reliability,
        evaluation.worst_case_latency,
    ))
}

/// The Lagrangian / parametric fallback: bisect the latency penalty `μ`,
/// keep the best feasible incumbent. Returns `None` when even the most
/// latency-averse penalized solve stays infeasible.
fn lagrangian_sweep(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    latency_bound: f64,
) -> Option<OptimalMapping> {
    let bound = period_bound.unwrap_or(f64::INFINITY);
    let view = oracle.class_view();
    let k_max = oracle.max_replication().min(oracle.num_processors());
    let strides = class_strides(view);
    let num_states = budget_states(view);
    let patterns = enumerate_patterns(view, k_max, &strides);

    /// Keeps `(mapping, reliability)` as the incumbent when its latency is
    /// feasible and its exact reliability improves on the current best;
    /// returns whether it was feasible.
    fn keep(
        best: &mut Option<OptimalMapping>,
        latency_bound: f64,
        (mapping, reliability, latency): (Mapping, f64, f64),
    ) -> bool {
        let feasible = latency <= latency_bound;
        if feasible && best.as_ref().is_none_or(|b| reliability > b.reliability) {
            *best = Some(OptimalMapping {
                mapping,
                reliability,
            });
        }
        feasible
    }

    let mut best: Option<OptimalMapping> = None;

    // μ = 0 is the latency-unconstrained reliability optimum under the
    // period bound: if it is feasible, it is the true constrained optimum
    // and the sweep is exact.
    let unpenalized = penalized_dp(oracle, chain, platform, bound, 0.0, num_states, &patterns)?;
    if keep(&mut best, latency_bound, unpenalized) {
        return best;
    }

    // Doubling search for a feasible penalty. Scale the initial penalty to
    // the instance: e^{−μ·L_bound} ≈ e^{−1} at the first probe.
    let mut mu_lo = 0.0;
    let mut mu_hi = 1.0 / latency_bound;
    let mut feasible_hi = false;
    for _ in 0..60 {
        if let Some(solution) =
            penalized_dp(oracle, chain, platform, bound, mu_hi, num_states, &patterns)
        {
            if keep(&mut best, latency_bound, solution) {
                feasible_hi = true;
                break;
            }
        }
        mu_lo = mu_hi;
        mu_hi *= 2.0;
    }
    if !feasible_hi {
        return best; // even the most latency-averse solve stays infeasible
    }

    // Bisect towards the smallest feasible penalty (smaller μ → more
    // reliability, more latency), keeping every feasible incumbent.
    for _ in 0..LAGRANGIAN_STEPS {
        let mu = 0.5 * (mu_lo + mu_hi);
        let solution = penalized_dp(oracle, chain, platform, bound, mu, num_states, &patterns);
        if solution.is_some_and(|solution| keep(&mut best, latency_bound, solution)) {
            mu_hi = mu;
        } else {
            mu_lo = mu;
        }
    }
    best
}

/// Latency-aware reference brute force: enumerates every interval partition
/// and per-interval class pattern under the shared class budgets, and
/// returns the most reliable mapping fitting **both** bounds. Latency is
/// accumulated from the same [`IntervalOracle::class_latency_term`] grid as
/// the DP, so the two agree bit-for-bit on feasibility. Exponential — only
/// for validating [`algo_het_lat`] on tiny instances.
///
/// # Errors
///
/// Same as [`algo_het_lat`].
///
/// # Panics
///
/// Panics if the chain exceeds [`MAX_EXHAUSTIVE_HET_TASKS`] tasks.
pub fn exhaustive_het_lat(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    let bound = validate_bound(period_bound)?;
    let latency_bound = validate_latency_bound(latency_bound)?;
    let n = chain.len();
    assert!(
        n <= MAX_EXHAUSTIVE_HET_TASKS,
        "exhaustive het solver limited to {MAX_EXHAUSTIVE_HET_TASKS} tasks, chain has {n}"
    );
    let oracle = IntervalOracle::new(chain, platform);
    let view = oracle.class_view();
    let k_max = oracle.max_replication().min(oracle.num_processors());
    let strides = class_strides(view);
    let patterns = enumerate_patterns(view, k_max, &strides);

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        oracle: &IntervalOracle,
        patterns: &[Pattern],
        bound: f64,
        latency_bound: f64,
        start: usize,
        budgets: &mut [usize],
        segments: &mut Segments,
        reliability: f64,
        latency: f64,
        best: &mut Option<(f64, Segments)>,
    ) {
        let n = oracle.len();
        if start == n {
            if best.as_ref().is_none_or(|(b, _)| reliability > *b) {
                *best = Some((reliability, segments.clone()));
            }
            return;
        }
        if oracle.input_comm_time(start) > bound {
            return;
        }
        for last in start..n {
            if oracle.output_comm_time(last) > bound {
                continue;
            }
            let work = oracle.work(start, last);
            for pattern in patterns {
                if work / pattern.min_speed > bound {
                    continue;
                }
                let lat = latency + oracle.class_latency_term(pattern.min_speed_class, start, last);
                if lat > latency_bound {
                    continue;
                }
                if pattern
                    .counts
                    .iter()
                    .zip(budgets.iter())
                    .any(|(&q, &b)| q > b)
                {
                    continue;
                }
                let mut survive = 1.0;
                for (c, &q) in pattern.counts.iter().enumerate() {
                    let block = oracle.class_block_reliability(c, start, last);
                    for _ in 0..q {
                        survive *= 1.0 - block;
                    }
                }
                for (b, &q) in budgets.iter_mut().zip(&pattern.counts) {
                    *b -= q;
                }
                segments.push((start, last, pattern.counts.clone()));
                recurse(
                    oracle,
                    patterns,
                    bound,
                    latency_bound,
                    last + 1,
                    budgets,
                    segments,
                    reliability * (1.0 - survive),
                    lat,
                    best,
                );
                segments.pop();
                for (b, &q) in budgets.iter_mut().zip(&pattern.counts) {
                    *b += q;
                }
            }
        }
    }

    let mut budgets: Vec<usize> = view.classes().iter().map(|c| c.members).collect();
    let mut best = None;
    recurse(
        &oracle,
        &patterns,
        bound,
        latency_bound,
        0,
        &mut budgets,
        &mut Vec::new(),
        1.0,
        0.0,
        &mut best,
    );
    let (_, segments) = best.ok_or(AlgoError::NoFeasibleMapping)?;
    let (partition, assignment) = assignment_from_segments(&segments, n)?;
    let mapping = assignment.lower(view, &partition, chain, platform)?;
    let reliability = oracle.mapping_reliability(&mapping);
    Ok(OptimalMapping {
        mapping,
        reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    /// Two classes: three fast-but-flaky processors, three slow-but-reliable.
    fn class_platform() -> Platform {
        PlatformBuilder::new()
            .processor(4.0, 1e-3)
            .processor(4.0, 1e-3)
            .processor(4.0, 1e-3)
            .processor(1.0, 1e-4)
            .processor(1.0, 1e-4)
            .processor(1.0, 1e-4)
            .bandwidth(1.0)
            .link_failure_rate(1e-5)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn lat_dp_is_exact_on_the_class_fixture() {
        let c = chain();
        let p = class_platform();
        for period in [None, Some(30.0), Some(110.0)] {
            for latency in [30.0, 40.0, 60.0, 120.0] {
                let dp = algo_het_lat(&c, &p, period, latency);
                let brute = exhaustive_het_lat(&c, &p, period, latency);
                match (dp, brute) {
                    (Ok(dp), Ok(brute)) => assert!(
                        (dp.reliability - brute.reliability).abs()
                            <= 1e-12 * brute.reliability.max(dp.reliability),
                        "({period:?}, {latency}): dp {} vs exhaustive {}",
                        dp.reliability,
                        brute.reliability
                    ),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (dp, brute) => panic!(
                        "feasibility mismatch under ({period:?}, {latency}): dp {} vs brute {}",
                        dp.is_ok(),
                        brute.is_ok()
                    ),
                }
            }
        }
    }

    #[test]
    fn the_label_dp_surfaces_a_consistent_pareto_front() {
        let c = chain();
        let p = class_platform();
        let mut saw_multi_point_front = false;
        for latency in [35.0, 45.0, 60.0, 120.0] {
            let Ok(sol) = algo_het_lat(&c, &p, None, latency) else {
                continue;
            };
            assert!(!sol.front.is_empty(), "latency {latency}: empty front");
            // The chosen mapping is always on the surfaced front.
            assert!(
                sol.front.iter().any(|point| point.mapping == sol.mapping),
                "latency {latency}: chosen mapping missing from the front"
            );
            saw_multi_point_front |= sol.front.len() > 1;
            for point in &sol.front {
                // Every point respects the latency bound and its metrics
                // are the oracle's exact re-evaluation.
                assert!(point.worst_case_latency <= latency);
                let eval = MappingEvaluation::evaluate(&c, &p, &point.mapping);
                assert_eq!(point.reliability, eval.reliability);
                assert_eq!(point.worst_case_latency, eval.worst_case_latency);
            }
            // No point dominates another (strictly better in one criterion,
            // no worse in the other) by the DP's own label values; exact
            // re-scoring can perturb by ulps, so allow equality.
            for a in &sol.front {
                for b in &sol.front {
                    if std::ptr::eq(a, b) {
                        continue;
                    }
                    assert!(
                        !(a.reliability >= b.reliability
                            && a.worst_case_latency < b.worst_case_latency
                            && a.reliability > b.reliability * (1.0 + 1e-12)),
                        "latency {latency}: front point strictly dominated"
                    );
                }
            }
        }
        assert!(
            saw_multi_point_front,
            "the relaxed bounds must surface a real latency–reliability trade-off"
        );
    }

    #[test]
    fn returned_mapping_respects_both_bounds_exactly() {
        let c = chain();
        let p = class_platform();
        for (period, latency) in [(Some(30.0), 50.0), (Some(110.0), 40.0), (None, 33.0)] {
            let Ok(sol) = algo_het_lat(&c, &p, period, latency) else {
                continue;
            };
            let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
            assert!(eval.worst_case_latency <= latency);
            if let Some(period) = period {
                assert!(eval.worst_case_period <= period);
            }
            assert_eq!(sol.reliability, eval.reliability);
            assert_eq!(sol.worst_case_latency, eval.worst_case_latency);
        }
    }

    #[test]
    fn never_below_the_latency_aware_greedy() {
        let c = chain();
        let p = class_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for latency in [28.0, 40.0, 60.0, 200.0] {
            let dp = algo_het_lat_with_oracle(&oracle, &c, &p, Some(40.0), latency);
            let greedy = greedy_het_lat_with_oracle(&oracle, &c, &p, Some(40.0), latency);
            if let Ok(greedy) = greedy {
                let dp = dp.expect("greedy feasible implies algo_het_lat feasible");
                assert!(
                    dp.reliability >= greedy.reliability,
                    "latency {latency}: dp {} below greedy {}",
                    dp.reliability,
                    greedy.reliability
                );
                assert_eq!(dp.greedy_reliability, Some(greedy.reliability));
            }
        }
    }

    #[test]
    fn bound_at_the_floor_is_feasible_and_below_is_infeasible() {
        let c = chain();
        let p = class_platform();
        let oracle = IntervalOracle::new(&c, &p);
        let floor = oracle.latency_floor();
        // Exactly at the floor: the single fast-class interval fits
        // bit-for-bit.
        let at = algo_het_lat(&c, &p, None, floor).unwrap();
        assert_eq!(at.worst_case_latency, floor);
        // Strictly below: clean infeasibility, no panic.
        assert_eq!(
            algo_het_lat(&c, &p, None, floor * 0.999).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
        assert_eq!(
            exhaustive_het_lat(&c, &p, None, floor * 0.999).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn invalid_latency_bounds_are_rejected() {
        let c = chain();
        let p = class_platform();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                algo_het_lat(&c, &p, None, bad).unwrap_err(),
                AlgoError::InvalidBound("latency bound")
            );
            assert_eq!(
                exhaustive_het_lat(&c, &p, None, bad).unwrap_err(),
                AlgoError::InvalidBound("latency bound")
            );
        }
        assert_eq!(
            algo_het_lat(&c, &p, Some(f64::NAN), 100.0).unwrap_err(),
            AlgoError::InvalidBound("period bound")
        );
    }

    #[test]
    fn loose_latency_bound_recovers_algo_het() {
        let c = chain();
        let p = class_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for period in [Some(30.0), Some(110.0), None] {
            let lat = algo_het_lat_with_oracle(&oracle, &c, &p, period, 1e9).unwrap();
            let het = crate::algo_het_with_oracle(&oracle, &c, &p, period).unwrap();
            assert!(
                (lat.reliability - het.reliability).abs() <= 1e-12 * het.reliability,
                "period {period:?}: {} vs {}",
                lat.reliability,
                het.reliability
            );
        }
    }

    #[test]
    fn many_classes_fall_back_to_the_latency_aware_greedy() {
        let c = chain();
        let mut builder = PlatformBuilder::new()
            .bandwidth(1.0)
            .link_failure_rate(1e-5)
            .max_replication(2);
        for u in 0..5 {
            builder = builder.processor(1.0 + u as f64 * 0.5, 1e-4);
        }
        let p = builder.build().unwrap();
        let oracle = IntervalOracle::new(&c, &p);
        assert!(!het_dp_applicable(&oracle));
        let sol = algo_het_lat_with_oracle(&oracle, &c, &p, Some(100.0), 100.0).unwrap();
        assert_eq!(sol.method, HetLatMethod::Greedy);
        let greedy = greedy_het_lat_with_oracle(&oracle, &c, &p, Some(100.0), 100.0).unwrap();
        assert_eq!(sol.reliability, greedy.reliability);
        assert!(sol.worst_case_latency <= 100.0);
    }

    #[test]
    fn lagrangian_sweep_finds_a_feasible_incumbent() {
        // Drive the fallback directly (the label cap is far too high to
        // trigger on the fixture): it must return a feasible mapping no
        // more reliable than the exact DP's.
        let c = chain();
        let p = class_platform();
        let oracle = IntervalOracle::new(&c, &p);
        let exact = algo_het_lat_with_oracle(&oracle, &c, &p, Some(40.0), 45.0).unwrap();
        let swept = lagrangian_sweep(&oracle, &c, &p, Some(40.0), 45.0).unwrap();
        let eval = oracle.evaluate(&swept.mapping);
        assert!(eval.worst_case_latency <= 45.0);
        assert!(swept.reliability <= exact.reliability + 1e-15);
        // On this fixture the constrained optimum lies on the hull: the
        // sweep recovers it exactly.
        assert!(
            (swept.reliability - exact.reliability).abs() <= 1e-9 * exact.reliability,
            "lagrangian {} vs exact {}",
            swept.reliability,
            exact.reliability
        );
    }

    #[test]
    fn penalized_dp_stays_ordered_at_extreme_penalties() {
        // In product space a penalty of μ = 1e9 would underflow every score
        // to 0 and the argmax would be an arbitrary first-visited mapping;
        // in log space the most latency-averse probe must return the
        // minimal-latency mapping (the single fast-class interval at the
        // floor).
        let c = chain();
        let p = class_platform();
        let oracle = IntervalOracle::new(&c, &p);
        let view = oracle.class_view();
        let k_max = oracle.max_replication().min(oracle.num_processors());
        let strides = class_strides(view);
        let num_states = budget_states(view);
        let patterns = enumerate_patterns(view, k_max, &strides);
        let (_, _, latency) =
            penalized_dp(&oracle, &c, &p, f64::INFINITY, 1e9, num_states, &patterns)
                .expect("unbounded-period penalized solve always finds a mapping");
        assert_eq!(latency, oracle.latency_floor());
        // And μ = 0 recovers the latency-unconstrained reliability optimum.
        let (_, reliability, _) =
            penalized_dp(&oracle, &c, &p, f64::INFINITY, 0.0, num_states, &patterns).unwrap();
        let het = crate::algo_het_with_oracle(&oracle, &c, &p, None).unwrap();
        assert!((reliability - het.reliability).abs() <= 1e-12 * het.reliability);
    }

    #[test]
    fn solving_twice_is_deterministic() {
        let c = chain();
        let p = class_platform();
        let a = algo_het_lat(&c, &p, Some(30.0), 60.0).unwrap();
        let b = algo_het_lat(&c, &p, Some(30.0), 60.0).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.method, HetLatMethod::LatDp);
    }
}
