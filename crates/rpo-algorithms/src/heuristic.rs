//! The complete two-step heuristics of Section 7, as used in the experiments
//! of Section 8.
//!
//! Each heuristic, for every possible number of intervals `m ∈ 1..=min(n, p)`:
//!
//! 1. computes an interval partition with either Heur-L (Algorithm 3) or
//!    Heur-P (Algorithm 4);
//! 2. allocates processors to the intervals — with the optimal Algo-Alloc on
//!    homogeneous platforms, and with the period-aware greedy allocation of
//!    Section 7.2 on heterogeneous platforms;
//! 3. evaluates the resulting mapping and keeps it only if its worst-case
//!    period and latency respect the bounds.
//!
//! Among all kept candidates, the mapping with the best reliability is
//! returned.

use rpo_model::{IntervalOracle, Mapping, MappingEvaluation, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::alloc::algo_alloc_with_oracle;
use crate::alloc_het::{algo_alloc_heterogeneous_with_oracle, AllocationConstraints};
use crate::heur_l::heur_l_partition_with_oracle;
use crate::heur_p::heur_p_partition_with_oracle;
use crate::{AlgoError, Result};

/// Which interval-computation heuristic to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalHeuristic {
    /// Heur-L (Algorithm 3): cut at the smallest communication costs.
    MinLatency,
    /// Heur-P (Algorithm 4): balance the interval works.
    MinPeriod,
}

impl IntervalHeuristic {
    /// Short display name (`"Heur-L"` / `"Heur-P"`), matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            IntervalHeuristic::MinLatency => "Heur-L",
            IntervalHeuristic::MinPeriod => "Heur-P",
        }
    }
}

/// Configuration of a heuristic run: which interval heuristic, and the
/// real-time bounds the mapping must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeuristicConfig {
    /// Interval-computation heuristic.
    pub interval_heuristic: IntervalHeuristic,
    /// Worst-case period bound `P`.
    pub period_bound: f64,
    /// Worst-case latency bound `L`.
    pub latency_bound: f64,
}

/// A feasible mapping produced by a heuristic, with its evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicSolution {
    /// The mapping.
    pub mapping: Mapping,
    /// Its five-criteria evaluation.
    pub evaluation: MappingEvaluation,
    /// The number of intervals of the winning candidate.
    pub num_intervals: usize,
}

/// Runs one of the Section 7 heuristics and returns the most reliable mapping
/// that satisfies both bounds, or [`AlgoError::NoFeasibleMapping`] if no
/// candidate does.
///
/// # Errors
///
/// * [`AlgoError::InvalidBound`] if a bound is not positive;
/// * [`AlgoError::NoFeasibleMapping`] if no candidate mapping meets the
///   bounds.
pub fn run_heuristic(
    chain: &TaskChain,
    platform: &Platform,
    config: &HeuristicConfig,
) -> Result<HeuristicSolution> {
    let oracle = IntervalOracle::new(chain, platform);
    run_heuristic_with_oracle(&oracle, chain, platform, config)
}

/// [`run_heuristic`] against a prebuilt [`IntervalOracle`]: partitions,
/// allocations and the candidate evaluations all read their interval metrics
/// from the shared kernel.
///
/// # Errors
///
/// Same as [`run_heuristic`].
pub fn run_heuristic_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    config: &HeuristicConfig,
) -> Result<HeuristicSolution> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if config.period_bound <= 0.0 || config.period_bound.is_nan() {
        return Err(AlgoError::InvalidBound("period bound"));
    }
    if config.latency_bound <= 0.0 || config.latency_bound.is_nan() {
        return Err(AlgoError::InvalidBound("latency bound"));
    }

    let n = oracle.len();
    let p = oracle.num_processors();
    let homogeneous = oracle.is_homogeneous();
    let constraints = AllocationConstraints::none();

    let mut best: Option<HeuristicSolution> = None;
    for num_intervals in 1..=n.min(p) {
        let partition = match config.interval_heuristic {
            IntervalHeuristic::MinLatency => heur_l_partition_with_oracle(oracle, num_intervals),
            IntervalHeuristic::MinPeriod => heur_p_partition_with_oracle(oracle, num_intervals),
        };

        let mapping = if homogeneous {
            algo_alloc_with_oracle(oracle, chain, platform, &partition)
        } else {
            algo_alloc_heterogeneous_with_oracle(
                oracle,
                chain,
                platform,
                &partition,
                config.period_bound,
                &constraints,
            )
        };
        let Ok(mapping) = mapping else { continue };

        let evaluation = oracle.evaluate(&mapping);
        if !evaluation.meets(config.period_bound, config.latency_bound) {
            continue;
        }
        if best
            .as_ref()
            .is_none_or(|b| evaluation.reliability > b.evaluation.reliability)
        {
            best = Some(HeuristicSolution {
                mapping,
                evaluation,
                num_intervals,
            });
        }
    }
    best.ok_or(AlgoError::NoFeasibleMapping)
}

/// Convenience wrapper running both heuristics and returning the best feasible
/// solution of each (`None` where a heuristic finds nothing).
pub fn run_both_heuristics(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> (Option<HeuristicSolution>, Option<HeuristicSolution>) {
    let oracle = IntervalOracle::new(chain, platform);
    let heur_l = run_heuristic_with_oracle(
        &oracle,
        chain,
        platform,
        &HeuristicConfig {
            interval_heuristic: IntervalHeuristic::MinLatency,
            period_bound,
            latency_bound,
        },
    )
    .ok();
    let heur_p = run_heuristic_with_oracle(
        &oracle,
        chain,
        platform,
        &HeuristicConfig {
            interval_heuristic: IntervalHeuristic::MinPeriod,
            period_bound,
            latency_bound,
        },
    )
    .ok();
    (heur_l, heur_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_homogeneous;
    use rpo_model::PlatformBuilder;

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[
            (30.0, 2.0),
            (10.0, 8.0),
            (25.0, 1.0),
            (40.0, 3.0),
            (15.0, 6.0),
            (20.0, 2.0),
        ])
        .unwrap()
    }

    fn hom_platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    fn het_platform() -> Platform {
        PlatformBuilder::new()
            .processor(4.0, 1e-3)
            .processor(2.0, 1e-3)
            .processor(1.0, 1e-3)
            .processor(5.0, 1e-3)
            .processor(3.0, 1e-3)
            .processor(2.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn solutions_respect_bounds_on_homogeneous_platform() {
        let c = chain();
        let p = hom_platform(5, 3);
        for heuristic in [IntervalHeuristic::MinLatency, IntervalHeuristic::MinPeriod] {
            let config = HeuristicConfig {
                interval_heuristic: heuristic,
                period_bound: 80.0,
                latency_bound: 170.0,
            };
            let sol = run_heuristic(&c, &p, &config).unwrap();
            assert!(sol.evaluation.worst_case_period <= 80.0 + 1e-12);
            assert!(sol.evaluation.worst_case_latency <= 170.0 + 1e-12);
            assert!(sol.num_intervals >= 1 && sol.num_intervals <= 5);
        }
    }

    #[test]
    fn solutions_respect_bounds_on_heterogeneous_platform() {
        let c = chain();
        let p = het_platform();
        for heuristic in [IntervalHeuristic::MinLatency, IntervalHeuristic::MinPeriod] {
            let config = HeuristicConfig {
                interval_heuristic: heuristic,
                period_bound: 40.0,
                latency_bound: 150.0,
            };
            if let Ok(sol) = run_heuristic(&c, &p, &config) {
                assert!(sol.evaluation.worst_case_period <= 40.0 + 1e-12);
                assert!(sol.evaluation.worst_case_latency <= 150.0 + 1e-12);
            }
        }
    }

    #[test]
    fn heuristics_never_beat_the_exact_optimum() {
        let c = chain();
        let p = hom_platform(5, 2);
        for (period, latency) in [(80.0, 170.0), (60.0, 200.0), (150.0, 160.0)] {
            let optimum = optimal_homogeneous(&c, &p, period, latency);
            for heuristic in [IntervalHeuristic::MinLatency, IntervalHeuristic::MinPeriod] {
                let config = HeuristicConfig {
                    interval_heuristic: heuristic,
                    period_bound: period,
                    latency_bound: latency,
                };
                if let Ok(sol) = run_heuristic(&c, &p, &config) {
                    let opt = optimum
                        .as_ref()
                        .expect("a feasible heuristic solution implies a feasible optimum");
                    assert!(
                        sol.evaluation.reliability <= opt.reliability + 1e-12,
                        "{} beats the optimum under ({period}, {latency})",
                        heuristic.name()
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_bounds_yield_no_solution() {
        let c = chain();
        let p = hom_platform(5, 3);
        let config = HeuristicConfig {
            interval_heuristic: IntervalHeuristic::MinPeriod,
            period_bound: 10.0, // below the largest task work
            latency_bound: 1e6,
        };
        assert_eq!(
            run_heuristic(&c, &p, &config).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn heur_p_solves_tight_period_heur_l_solves_tight_latency() {
        // Qualitative behaviour reported in the paper: Heur-P is better under
        // tight period bounds, Heur-L shines when only latency matters.
        let c = chain();
        let p = hom_platform(6, 3);
        // Tight period, loose latency.
        let (l_sol, p_sol) = run_both_heuristics(&c, &p, 41.0, 1e6);
        assert!(p_sol.is_some(), "Heur-P should handle a tight period bound");
        // Whenever both succeed the Heur-P period is no worse.
        if let (Some(l), Some(p_)) = (&l_sol, &p_sol) {
            assert!(p_.evaluation.worst_case_period <= l.evaluation.worst_case_period + 1e-9);
        }
        // Loose period, tight latency (just above the no-cut latency).
        let total_work: f64 = (0..c.len()).map(|i| c.work(i)).sum();
        let (l_sol, _) = run_both_heuristics(&c, &p, 1e6, total_work + 1.5);
        assert!(
            l_sol.is_some(),
            "Heur-L should handle a tight latency bound"
        );
    }

    #[test]
    fn invalid_bounds_rejected() {
        let c = chain();
        let p = hom_platform(4, 2);
        let config = HeuristicConfig {
            interval_heuristic: IntervalHeuristic::MinPeriod,
            period_bound: -5.0,
            latency_bound: 100.0,
        };
        assert_eq!(
            run_heuristic(&c, &p, &config).unwrap_err(),
            AlgoError::InvalidBound("period bound")
        );
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(IntervalHeuristic::MinLatency.name(), "Heur-L");
        assert_eq!(IntervalHeuristic::MinPeriod.name(), "Heur-P");
    }
}
