//! Converse of Algorithm 2: minimize the period under a reliability bound, on
//! fully homogeneous platforms.
//!
//! The paper observes (Section 5.2) that this problem is also polynomial: it
//! suffices to binary-search the period and repeatedly run Algorithm 2. The
//! worst-case period of any mapping is one of finitely many candidate values
//! (an interval computation time `W(i..j)/s` or a communication time
//! `o_i / b`), so the search is performed over that sorted candidate set and
//! returns a certified optimum.
//!
//! At batch scale, [`minimize_period_batch`] runs **many instances' binary
//! searches lane-parallel**: each round gathers every unconverged lane's
//! next probe period and dispatches them as one SoA mega-kernel batch
//! ([`crate::batch_kernel`]) with per-lane period bounds — the probe DPs of
//! up to [`crate::LANES`](crate::algo1::LANES) searches run in lockstep
//! instead of serially. Converged lanes are masked simply by not being
//! repacked into the next round. Because the batch kernel is bit-identical
//! to the per-instance chunked DP, every lane's probe sequence, certified
//! period and mapping are exactly those of the scalar search.

use std::collections::HashMap;

use rpo_model::{IntervalOracle, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::algo1::DpScratch;
use crate::algo2::optimize_with_period_bound_scratch;
use crate::batch_kernel::{solve_batch, BatchLane, BatchScratch};
use crate::{AlgoError, Result};

/// Result of the period minimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodOptimal {
    /// The minimal achievable worst-case period under the reliability bound.
    pub period: f64,
    /// A mapping achieving it.
    pub mapping: Mapping,
    /// The reliability of that mapping (≥ the requested bound).
    pub reliability: f64,
}

/// Relative tolerance under which two candidate periods are considered the
/// same value (an absolute tolerance would mis-merge distinct candidates on
/// instances whose periods are themselves tiny).
const CANDIDATE_REL_TOL: f64 = 1e-12;

/// Every value the worst-case period of a mapping can take: computation times
/// of all intervals and all boundary communication times, read from the
/// oracle's prefix sums.
///
/// Candidates strictly below the largest single-task computation time are
/// pruned: every task belongs to some interval, so the interval holding the
/// biggest task forces `period ≥ max_i w_i / s` on every mapping — probing
/// below that can never be feasible.
fn candidate_periods(oracle: &IntervalOracle, speed: f64) -> Vec<f64> {
    let n = oracle.len();
    let min_achievable = (0..n)
        .map(|i| oracle.work(i, i) / speed)
        .fold(0.0, f64::max);
    let mut candidates = Vec::with_capacity(n * (n + 1) / 2 + n);
    for first in 0..n {
        for last in first..n {
            candidates.push(oracle.work(first, last) / speed);
        }
    }
    for i in 0..n.saturating_sub(1) {
        candidates.push(oracle.output_comm_time(i));
    }
    candidates.retain(|&c| c >= min_achievable * (1.0 - CANDIDATE_REL_TOL));
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite candidate periods"));
    // Merged near-equal candidates keep the *largest* member as their
    // representative: probing the representative then admits every interval
    // whose true requirement sits an ulp above the smaller members (rounding
    // of the prefix sums makes mathematically equal works differ by ulps).
    candidates.dedup_by(|a, b| {
        if (*a - *b).abs() <= CANDIDATE_REL_TOL * a.abs().max(b.abs()) {
            *b = b.max(*a);
            true
        } else {
            false
        }
    });
    candidates
}

/// Minimizes the worst-case period of a mapping whose reliability is at least
/// `reliability_bound`, on a fully homogeneous platform.
///
/// # Errors
///
/// * [`AlgoError::HeterogeneousPlatform`] if the platform is not homogeneous;
/// * [`AlgoError::InvalidBound`] if the reliability bound is not in `(0, 1]`;
/// * [`AlgoError::NoFeasibleMapping`] if even the unconstrained optimum of
///   Algorithm 1 does not reach the reliability bound.
pub fn minimize_period_with_reliability_bound(
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
) -> Result<PeriodOptimal> {
    let oracle = IntervalOracle::new(chain, platform);
    minimize_period_with_reliability_bound_with_oracle(&oracle, chain, platform, reliability_bound)
}

/// Period minimization against a prebuilt [`IntervalOracle`]: the whole
/// binary search (one Algorithm 2 run per probe) shares a single oracle
/// instead of rebuilding the interval metrics at every probe, and every
/// probe runs against one warm [`DpScratch`] — the DP arenas are allocated
/// once and the previous probe's admissible-interval set (`in_ok` boundary
/// flags and per-row work-prefix cuts) seeds the next probe's admissibility
/// derivation instead of starting from scratch.
///
/// # Errors
///
/// Same as [`minimize_period_with_reliability_bound`].
pub fn minimize_period_with_reliability_bound_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
) -> Result<PeriodOptimal> {
    let mut scratch = DpScratch::new();
    minimize_period_with_reliability_bound_with_scratch(
        oracle,
        chain,
        platform,
        reliability_bound,
        &mut scratch,
    )
}

/// Period minimization against caller-owned [`DpScratch`]: batch callers
/// (the portfolio engine's scratch pool) reuse the DP arenas across
/// instances — allocation reuse only, the admissibility data is rebuilt per
/// probe.
///
/// # Errors
///
/// Same as [`minimize_period_with_reliability_bound`].
pub fn minimize_period_with_reliability_bound_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
    scratch: &mut DpScratch,
) -> Result<PeriodOptimal> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if !(reliability_bound.is_finite() && reliability_bound > 0.0 && reliability_bound <= 1.0) {
        return Err(AlgoError::InvalidBound("reliability bound"));
    }

    let candidates = candidate_periods(oracle, platform.speed(0));
    // Check feasibility at the largest candidate (equivalent to no bound).
    let largest = *candidates
        .last()
        .expect("a non-empty chain has candidate periods");
    let unconstrained =
        optimize_with_period_bound_scratch(oracle, chain, platform, largest, &mut *scratch)?;
    if unconstrained.reliability < reliability_bound {
        return Err(AlgoError::NoFeasibleMapping);
    }

    // Binary search the smallest candidate period meeting the bound.
    let mut feasible = |period: f64| -> Option<crate::algo1::OptimalMapping> {
        rpo_obs::counter!("period_opt.probes").inc();
        match optimize_with_period_bound_scratch(oracle, chain, platform, period, &mut *scratch) {
            Ok(solution) if solution.reliability >= reliability_bound => Some(solution),
            _ => None,
        }
    };
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    let mut best = unconstrained;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match feasible(candidates[mid]) {
            Some(solution) => {
                best = solution;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Ok(PeriodOptimal {
        period: candidates[hi],
        mapping: best.mapping,
        reliability: best.reliability,
    })
}

/// One lane of a batched period minimization: an instance (prebuilt oracle,
/// the chain and platform it came from) and its reliability bound.
#[derive(Debug, Clone, Copy)]
pub struct PeriodLane<'a> {
    /// The instance's prebuilt interval oracle.
    pub oracle: &'a IntervalOracle,
    /// The task chain the oracle was built from.
    pub chain: &'a TaskChain,
    /// The (homogeneous) platform the oracle was built from.
    pub platform: &'a Platform,
    /// The reliability bound the minimized period must respect.
    pub reliability_bound: f64,
}

/// The live binary-search state of one batched lane.
struct LaneSearch {
    /// The lane's sorted candidate-period ladder.
    candidates: Vec<f64>,
    lo: usize,
    hi: usize,
    /// Whether the initial largest-candidate feasibility probe has landed.
    primed: bool,
    /// Best feasible solution seen so far (the certified answer once the
    /// bracket closes).
    best: Option<crate::algo1::OptimalMapping>,
}

impl LaneSearch {
    /// The candidate index the lane probes next: the ladder top until the
    /// lane is primed, then the binary-search midpoint.
    fn next_probe(&self) -> usize {
        if self.primed {
            (self.lo + self.hi) / 2
        } else {
            self.candidates.len() - 1
        }
    }
}

/// Lane-parallel period minimization: runs every lane's candidate-ladder
/// binary search (the exact search of
/// [`minimize_period_with_reliability_bound_with_scratch`]) through the SoA
/// mega-kernel, one probe round at a time. Each round repacks the
/// unconverged lanes — grouped by the kernel's `(p, k_max)` near-shape, with
/// **per-lane probe periods** as the lanes' Algorithm 2 bounds — into
/// [`solve_batch`] calls through the shared `scratch`; a converged lane is
/// masked by simply not being repacked. Task counts may differ within a
/// group (the kernel pads shorter lanes), so a mixed-size stream still fills
/// wide rounds.
///
/// Returns each lane's result in input order. Because the batch kernel is
/// bit-identical to the per-instance chunked DP, every lane's probe
/// sequence, certified period, mapping and reliability are exactly those of
/// the scalar search — the workspace differential suite asserts it.
///
/// # Errors
///
/// Per lane, same as [`minimize_period_with_reliability_bound`].
pub fn minimize_period_batch(
    lanes: &[PeriodLane<'_>],
    scratch: &mut BatchScratch,
) -> Vec<Result<PeriodOptimal>> {
    let mut results: Vec<Option<Result<PeriodOptimal>>> = (0..lanes.len()).map(|_| None).collect();
    let mut searches: Vec<Option<LaneSearch>> = (0..lanes.len()).map(|_| None).collect();
    for (idx, lane) in lanes.iter().enumerate() {
        crate::debug_assert_oracle_matches(lane.oracle, lane.chain, lane.platform);
        if !lane.oracle.is_homogeneous() {
            results[idx] = Some(Err(AlgoError::HeterogeneousPlatform));
            continue;
        }
        let bound = lane.reliability_bound;
        if !(bound.is_finite() && bound > 0.0 && bound <= 1.0) {
            results[idx] = Some(Err(AlgoError::InvalidBound("reliability bound")));
            continue;
        }
        let candidates = candidate_periods(lane.oracle, lane.platform.speed(0));
        searches[idx] = Some(LaneSearch {
            lo: 0,
            hi: candidates.len() - 1,
            candidates,
            primed: false,
            best: None,
        });
    }

    loop {
        // Collect the unconverged lanes and group them by the kernel's
        // near-shape key; every group runs this round's probes in lockstep.
        let live: Vec<usize> = (0..lanes.len())
            .filter(|&idx| searches[idx].is_some())
            .collect();
        if live.is_empty() {
            break;
        }
        rpo_obs::counter!("period_opt.batch_probes").inc();
        rpo_obs::counter!("period_opt.probes").add(live.len() as u64);
        let mut groups: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for &idx in &live {
            let p = lanes[idx].oracle.num_processors();
            let k_max = lanes[idx].oracle.max_replication().min(p);
            groups.entry((p, k_max)).or_default().push(idx);
        }
        for group in groups.values() {
            let batch: Vec<BatchLane> = group
                .iter()
                .map(|&idx| {
                    let search = searches[idx].as_ref().expect("live lanes are searching");
                    BatchLane {
                        oracle: lanes[idx].oracle,
                        chain: lanes[idx].chain,
                        platform: lanes[idx].platform,
                        period_bound: Some(search.candidates[search.next_probe()]),
                    }
                })
                .collect();
            let solutions = solve_batch(&batch, scratch);
            for (&idx, solution) in group.iter().zip(solutions) {
                let resolved: Option<Result<PeriodOptimal>> = {
                    let search = searches[idx].as_mut().expect("live lanes are searching");
                    // Feasible = the probe DP found a mapping meeting the
                    // lane's reliability bound (the scalar search's test).
                    let feasible =
                        solution.filter(|s| s.reliability >= lanes[idx].reliability_bound);
                    if !search.primed {
                        search.primed = true;
                        match feasible {
                            // The largest candidate admits every interval:
                            // an infeasible lane can never meet its bound.
                            None => Some(Err(AlgoError::NoFeasibleMapping)),
                            Some(solution) => {
                                search.best = Some(solution);
                                search.finished()
                            }
                        }
                    } else {
                        let mid = (search.lo + search.hi) / 2;
                        match feasible {
                            Some(solution) => {
                                search.best = Some(solution);
                                search.hi = mid;
                            }
                            None => search.lo = mid + 1,
                        }
                        search.finished()
                    }
                };
                if let Some(result) = resolved {
                    results[idx] = Some(result);
                    searches[idx] = None;
                }
            }
        }
    }

    results
        .into_iter()
        .map(|result| result.expect("every lane resolves to a result"))
        .collect()
}

impl LaneSearch {
    /// The lane's certified result once its bracket has closed, `None`
    /// while the search is still live.
    fn finished(&mut self) -> Option<Result<PeriodOptimal>> {
        if self.lo < self.hi {
            return None;
        }
        let best = self
            .best
            .take()
            .expect("a closed bracket holds a feasible incumbent");
        Some(Ok(PeriodOptimal {
            period: self.candidates[self.hi],
            mapping: best.mapping,
            reliability: best.reliability,
        }))
    }
}

/// Warm-started period re-minimization after a platform or workload delta:
/// instead of binary-searching the full candidate ladder from cold, the
/// search **brackets around the previous optimum** `prev_period` with an
/// exponential gallop. Deltas usually move the optimum by only a few
/// candidate positions, so the common case pays `O(log Δ)` Algorithm 2
/// probes (Δ = how far the optimum moved) instead of `O(log n²)` — and each
/// probe additionally reuses `scratch`'s warm admissibility cuts, exactly
/// like the cold search.
///
/// Returns the **same certified optimum** as
/// [`minimize_period_with_reliability_bound_with_scratch`]: feasibility is
/// monotone in the period, both searches select the smallest feasible
/// candidate, they differ only in which probes are evaluated along the way.
///
/// # Errors
///
/// Same as [`minimize_period_with_reliability_bound`].
pub fn repair_minimize_period_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
    prev_period: f64,
    scratch: &mut DpScratch,
) -> Result<PeriodOptimal> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if !(reliability_bound.is_finite() && reliability_bound > 0.0 && reliability_bound <= 1.0) {
        return Err(AlgoError::InvalidBound("reliability bound"));
    }

    let candidates = candidate_periods(oracle, platform.speed(0));
    let len = candidates.len();
    let mut feasible = |period: f64| -> Option<crate::algo1::OptimalMapping> {
        rpo_obs::counter!("period_opt.probes").inc();
        match optimize_with_period_bound_scratch(oracle, chain, platform, period, &mut *scratch) {
            Ok(solution) if solution.reliability >= reliability_bound => Some(solution),
            _ => None,
        }
    };

    // Start at the candidate nearest the previous optimum (degenerate
    // `prev_period` just means a worse start, never a wrong answer).
    let start = if prev_period.is_finite() {
        candidates
            .partition_point(|&c| c < prev_period * (1.0 - CANDIDATE_REL_TOL))
            .min(len - 1)
    } else {
        len - 1
    };

    // Gallop up until a feasible candidate brackets the optimum from above.
    let mut hi = start;
    let mut lo_infeasible: Option<usize> = None;
    let mut solution = feasible(candidates[hi]);
    let mut step = 1;
    while solution.is_none() {
        if hi == len - 1 {
            return Err(AlgoError::NoFeasibleMapping);
        }
        lo_infeasible = Some(hi);
        hi = (hi + step).min(len - 1);
        step *= 2;
        solution = feasible(candidates[hi]);
    }
    // If the start itself was feasible, gallop down for an infeasible floor.
    if lo_infeasible.is_none() {
        let mut step = 1;
        while hi > 0 {
            let probe = hi.saturating_sub(step);
            match feasible(candidates[probe]) {
                Some(better) => {
                    solution = Some(better);
                    hi = probe;
                    step *= 2;
                }
                None => {
                    lo_infeasible = Some(probe);
                    break;
                }
            }
        }
    }
    // Close the bracket: invariant `hi` feasible, `lo` infeasible.
    if let Some(mut lo) = lo_infeasible {
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            match feasible(candidates[mid]) {
                Some(better) => {
                    solution = Some(better);
                    hi = mid;
                }
                None => lo = mid,
            }
        }
    }
    let best = solution.expect("bracket always holds a feasible candidate");
    Ok(PeriodOptimal {
        period: candidates[hi],
        mapping: best.mapping,
        reliability: best.reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize_reliability_with_period_bound;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn returned_mapping_respects_both_period_and_reliability() {
        let c = chain();
        let p = platform(6, 3);
        let bound = 0.9;
        let sol = minimize_period_with_reliability_bound(&c, &p, bound).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!(eval.reliability >= bound);
        assert!(eval.worst_case_period <= sol.period + 1e-12);
    }

    #[test]
    fn trivial_reliability_bound_gives_minimal_period() {
        let c = chain();
        let p = platform(6, 3);
        // Any mapping is acceptable reliability-wise: the optimum is the best
        // achievable period, which (with 6 processors and 4 tasks) is the
        // largest single task work = 40.
        let sol = minimize_period_with_reliability_bound(&c, &p, 1e-12).unwrap();
        assert!((sol.period - 40.0).abs() < 1e-12);
    }

    #[test]
    fn result_is_the_smallest_feasible_candidate() {
        let c = chain();
        let p = platform(6, 3);
        let bound = 0.95;
        let sol = minimize_period_with_reliability_bound(&c, &p, bound).unwrap();
        // Exhaustive check over a fine grid slightly below the optimum: no
        // strictly smaller period may reach the reliability bound.
        let probe = sol.period - 1e-6;
        let below = optimize_reliability_with_period_bound(&c, &p, probe);
        match below {
            Err(AlgoError::NoFeasibleMapping) => {}
            Ok(solution) => assert!(solution.reliability < bound),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn infeasible_reliability_bound_is_reported() {
        let c = chain();
        // Single processor, no replication possible: reliability is bounded
        // away from 1, so a bound of 0.999999999 is unreachable.
        let p = platform(1, 1);
        let unconstrained = crate::optimize_reliability_homogeneous(&c, &p).unwrap();
        let impossible = (unconstrained.reliability + 1.0) / 2.0;
        assert_eq!(
            minimize_period_with_reliability_bound(&c, &p, impossible).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn tighter_reliability_bounds_never_decrease_the_period() {
        let c = chain();
        let p = platform(6, 3);
        let relaxed = minimize_period_with_reliability_bound(&c, &p, 0.5).unwrap();
        let max_rel = crate::optimize_reliability_homogeneous(&c, &p)
            .unwrap()
            .reliability;
        let tight = minimize_period_with_reliability_bound(&c, &p, max_rel * 0.999999).unwrap();
        assert!(tight.period >= relaxed.period - 1e-12);
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let c = chain();
        let p = platform(4, 2);
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            assert_eq!(
                minimize_period_with_reliability_bound(&c, &p, bad).unwrap_err(),
                AlgoError::InvalidBound("reliability bound")
            );
        }
    }

    #[test]
    fn warm_started_binary_search_matches_a_fresh_linear_scan() {
        let c = chain();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        for bound in [0.5, 0.9, 0.95, 0.99] {
            let fast =
                minimize_period_with_reliability_bound_with_oracle(&oracle, &c, &p, bound).unwrap();
            // Reference: probe every candidate in ascending order with a
            // fresh (cold-scratch) Algorithm 2 run and take the first hit.
            let reference = candidate_periods(&oracle, p.speed(0))
                .into_iter()
                .find_map(
                    |period| match optimize_reliability_with_period_bound(&c, &p, period) {
                        Ok(sol) if sol.reliability >= bound => Some((period, sol.reliability)),
                        _ => None,
                    },
                )
                .expect("the relaxed bounds are feasible");
            assert_eq!(fast.period, reference.0, "bound {bound}");
            assert!((fast.reliability - reference.1).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_search_matches_the_scalar_search_lane_for_lane() {
        // Four lanes of *different* chain lengths over the same platform
        // shape, with a spread of reliability bounds: the lane-parallel
        // search must certify the same period, mapping and reliability as
        // the scalar binary search on every lane.
        let chains = [
            chain(),
            TaskChain::from_pairs(&[(12.0, 1.0), (48.0, 4.0), (19.0, 6.0)]).unwrap(),
            TaskChain::from_pairs(&[
                (5.0, 9.0),
                (5.0, 9.0),
                (80.0, 0.5),
                (11.0, 7.0),
                (33.0, 2.5),
            ])
            .unwrap(),
            TaskChain::from_pairs(&[(60.0, 2.0), (7.0, 3.0), (22.0, 1.5), (18.0, 0.5)]).unwrap(),
        ];
        let p = platform(6, 3);
        let oracles: Vec<IntervalOracle> =
            chains.iter().map(|c| IntervalOracle::new(c, &p)).collect();
        let bounds = [0.5, 0.9, 0.95, 0.99];
        let lanes: Vec<PeriodLane> = (0..chains.len())
            .map(|idx| PeriodLane {
                oracle: &oracles[idx],
                chain: &chains[idx],
                platform: &p,
                reliability_bound: bounds[idx],
            })
            .collect();
        let mut scratch = BatchScratch::new();
        let batched = minimize_period_batch(&lanes, &mut scratch);
        for (idx, lane) in lanes.iter().enumerate() {
            let scalar = minimize_period_with_reliability_bound_with_oracle(
                lane.oracle,
                lane.chain,
                lane.platform,
                lane.reliability_bound,
            )
            .unwrap();
            let batched = batched[idx].as_ref().unwrap();
            assert_eq!(batched.period, scalar.period, "lane {idx}");
            assert_eq!(batched.reliability, scalar.reliability, "lane {idx}");
            assert_eq!(batched.mapping, scalar.mapping, "lane {idx}");
        }
    }

    #[test]
    fn batched_search_reports_per_lane_errors_in_input_order() {
        let c = chain();
        let hom = platform(6, 3);
        let het = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-4)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(2)
            .build()
            .unwrap();
        let single = platform(1, 1);
        let unconstrained = crate::optimize_reliability_homogeneous(&c, &single)
            .unwrap()
            .reliability;
        let oracle_hom = IntervalOracle::new(&c, &hom);
        let oracle_het = IntervalOracle::new(&c, &het);
        let oracle_single = IntervalOracle::new(&c, &single);
        let lanes = [
            // Fine lane, heterogeneous lane, invalid bound, unreachable bound.
            PeriodLane {
                oracle: &oracle_hom,
                chain: &c,
                platform: &hom,
                reliability_bound: 0.9,
            },
            PeriodLane {
                oracle: &oracle_het,
                chain: &c,
                platform: &het,
                reliability_bound: 0.9,
            },
            PeriodLane {
                oracle: &oracle_hom,
                chain: &c,
                platform: &hom,
                reliability_bound: 1.5,
            },
            PeriodLane {
                oracle: &oracle_single,
                chain: &c,
                platform: &single,
                reliability_bound: (unconstrained + 1.0) / 2.0,
            },
        ];
        let mut scratch = BatchScratch::new();
        let results = minimize_period_batch(&lanes, &mut scratch);
        assert!(results[0].is_ok());
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &AlgoError::HeterogeneousPlatform
        );
        assert_eq!(
            results[2].as_ref().unwrap_err(),
            &AlgoError::InvalidBound("reliability bound")
        );
        assert_eq!(
            results[3].as_ref().unwrap_err(),
            &AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn candidates_below_the_single_task_floor_are_pruned() {
        let c = chain(); // largest task work = 40, unit speed
        let p = platform(4, 2);
        let oracle = IntervalOracle::new(&c, &p);
        let candidates = candidate_periods(&oracle, 1.0);
        assert!(!candidates.is_empty());
        for &candidate in &candidates {
            assert!(
                candidate >= 40.0 * (1.0 - CANDIDATE_REL_TOL),
                "candidate {candidate} is below the single-task floor"
            );
        }
    }

    #[test]
    fn tiny_periods_are_not_mis_merged_by_the_dedup() {
        // Distinct single-task computation times of order 1e-11 sit within
        // an *absolute* 1e-12 of each other; a relative tolerance keeps them
        // apart and the minimizer still resolves the true optimum.
        let scale = 1e-12;
        let c = TaskChain::from_pairs(&[
            (30.0 * scale, 2.0 * scale),
            (10.0 * scale, 8.0 * scale),
            (25.0 * scale, 1.0 * scale),
            (40.0 * scale, 3.0 * scale),
        ])
        .unwrap();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        let candidates = candidate_periods(&oracle, 1.0);
        // Every distinct interval work ≥ the 40-unit floor must survive
        // (40 and 65 each occur twice and must merge to one candidate).
        let expected = [40.0, 65.0, 75.0, 105.0];
        assert_eq!(candidates.len(), expected.len());
        for (candidate, want) in candidates.iter().zip(expected) {
            assert!(
                (candidate - want * scale).abs() < 1e-9 * scale,
                "candidate {candidate} vs expected {}",
                want * scale
            );
        }
        // And the end-to-end minimizer matches the unscaled instance.
        let tiny = minimize_period_with_reliability_bound(&c, &p, 1e-12).unwrap();
        assert!((tiny.period - 40.0 * scale).abs() < 1e-9 * scale);
    }
}
