//! Converse of Algorithm 2: minimize the period under a reliability bound, on
//! fully homogeneous platforms.
//!
//! The paper observes (Section 5.2) that this problem is also polynomial: it
//! suffices to binary-search the period and repeatedly run Algorithm 2. The
//! worst-case period of any mapping is one of finitely many candidate values
//! (an interval computation time `W(i..j)/s` or a communication time
//! `o_i / b`), so the search is performed over that sorted candidate set and
//! returns a certified optimum.

use rpo_model::{IntervalOracle, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::algo1::DpScratch;
use crate::algo2::optimize_with_period_bound_scratch;
use crate::{AlgoError, Result};

/// Result of the period minimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodOptimal {
    /// The minimal achievable worst-case period under the reliability bound.
    pub period: f64,
    /// A mapping achieving it.
    pub mapping: Mapping,
    /// The reliability of that mapping (≥ the requested bound).
    pub reliability: f64,
}

/// Relative tolerance under which two candidate periods are considered the
/// same value (an absolute tolerance would mis-merge distinct candidates on
/// instances whose periods are themselves tiny).
const CANDIDATE_REL_TOL: f64 = 1e-12;

/// Every value the worst-case period of a mapping can take: computation times
/// of all intervals and all boundary communication times, read from the
/// oracle's prefix sums.
///
/// Candidates strictly below the largest single-task computation time are
/// pruned: every task belongs to some interval, so the interval holding the
/// biggest task forces `period ≥ max_i w_i / s` on every mapping — probing
/// below that can never be feasible.
fn candidate_periods(oracle: &IntervalOracle, speed: f64) -> Vec<f64> {
    let n = oracle.len();
    let min_achievable = (0..n)
        .map(|i| oracle.work(i, i) / speed)
        .fold(0.0, f64::max);
    let mut candidates = Vec::with_capacity(n * (n + 1) / 2 + n);
    for first in 0..n {
        for last in first..n {
            candidates.push(oracle.work(first, last) / speed);
        }
    }
    for i in 0..n.saturating_sub(1) {
        candidates.push(oracle.output_comm_time(i));
    }
    candidates.retain(|&c| c >= min_achievable * (1.0 - CANDIDATE_REL_TOL));
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite candidate periods"));
    // Merged near-equal candidates keep the *largest* member as their
    // representative: probing the representative then admits every interval
    // whose true requirement sits an ulp above the smaller members (rounding
    // of the prefix sums makes mathematically equal works differ by ulps).
    candidates.dedup_by(|a, b| {
        if (*a - *b).abs() <= CANDIDATE_REL_TOL * a.abs().max(b.abs()) {
            *b = b.max(*a);
            true
        } else {
            false
        }
    });
    candidates
}

/// Minimizes the worst-case period of a mapping whose reliability is at least
/// `reliability_bound`, on a fully homogeneous platform.
///
/// # Errors
///
/// * [`AlgoError::HeterogeneousPlatform`] if the platform is not homogeneous;
/// * [`AlgoError::InvalidBound`] if the reliability bound is not in `(0, 1]`;
/// * [`AlgoError::NoFeasibleMapping`] if even the unconstrained optimum of
///   Algorithm 1 does not reach the reliability bound.
pub fn minimize_period_with_reliability_bound(
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
) -> Result<PeriodOptimal> {
    let oracle = IntervalOracle::new(chain, platform);
    minimize_period_with_reliability_bound_with_oracle(&oracle, chain, platform, reliability_bound)
}

/// Period minimization against a prebuilt [`IntervalOracle`]: the whole
/// binary search (one Algorithm 2 run per probe) shares a single oracle
/// instead of rebuilding the interval metrics at every probe, and every
/// probe runs against one warm [`DpScratch`] — the DP arenas are allocated
/// once and the previous probe's admissible-interval set (`in_ok` boundary
/// flags and per-row work-prefix cuts) seeds the next probe's admissibility
/// derivation instead of starting from scratch.
///
/// # Errors
///
/// Same as [`minimize_period_with_reliability_bound`].
pub fn minimize_period_with_reliability_bound_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
) -> Result<PeriodOptimal> {
    let mut scratch = DpScratch::new();
    minimize_period_with_reliability_bound_with_scratch(
        oracle,
        chain,
        platform,
        reliability_bound,
        &mut scratch,
    )
}

/// Period minimization against caller-owned [`DpScratch`]: batch callers
/// (the portfolio engine's scratch pool) reuse the DP arenas across
/// instances — allocation reuse only, the admissibility data is rebuilt per
/// probe.
///
/// # Errors
///
/// Same as [`minimize_period_with_reliability_bound`].
pub fn minimize_period_with_reliability_bound_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
    scratch: &mut DpScratch,
) -> Result<PeriodOptimal> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if !(reliability_bound.is_finite() && reliability_bound > 0.0 && reliability_bound <= 1.0) {
        return Err(AlgoError::InvalidBound("reliability bound"));
    }

    let candidates = candidate_periods(oracle, platform.speed(0));
    // Check feasibility at the largest candidate (equivalent to no bound).
    let largest = *candidates
        .last()
        .expect("a non-empty chain has candidate periods");
    let unconstrained =
        optimize_with_period_bound_scratch(oracle, chain, platform, largest, &mut *scratch)?;
    if unconstrained.reliability < reliability_bound {
        return Err(AlgoError::NoFeasibleMapping);
    }

    // Binary search the smallest candidate period meeting the bound.
    let mut feasible = |period: f64| -> Option<crate::algo1::OptimalMapping> {
        rpo_obs::counter!("period_opt.probes").inc();
        match optimize_with_period_bound_scratch(oracle, chain, platform, period, &mut *scratch) {
            Ok(solution) if solution.reliability >= reliability_bound => Some(solution),
            _ => None,
        }
    };
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    let mut best = unconstrained;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match feasible(candidates[mid]) {
            Some(solution) => {
                best = solution;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Ok(PeriodOptimal {
        period: candidates[hi],
        mapping: best.mapping,
        reliability: best.reliability,
    })
}

/// Warm-started period re-minimization after a platform or workload delta:
/// instead of binary-searching the full candidate ladder from cold, the
/// search **brackets around the previous optimum** `prev_period` with an
/// exponential gallop. Deltas usually move the optimum by only a few
/// candidate positions, so the common case pays `O(log Δ)` Algorithm 2
/// probes (Δ = how far the optimum moved) instead of `O(log n²)` — and each
/// probe additionally reuses `scratch`'s warm admissibility cuts, exactly
/// like the cold search.
///
/// Returns the **same certified optimum** as
/// [`minimize_period_with_reliability_bound_with_scratch`]: feasibility is
/// monotone in the period, both searches select the smallest feasible
/// candidate, they differ only in which probes are evaluated along the way.
///
/// # Errors
///
/// Same as [`minimize_period_with_reliability_bound`].
pub fn repair_minimize_period_with_scratch(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
    prev_period: f64,
    scratch: &mut DpScratch,
) -> Result<PeriodOptimal> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if !(reliability_bound.is_finite() && reliability_bound > 0.0 && reliability_bound <= 1.0) {
        return Err(AlgoError::InvalidBound("reliability bound"));
    }

    let candidates = candidate_periods(oracle, platform.speed(0));
    let len = candidates.len();
    let mut feasible = |period: f64| -> Option<crate::algo1::OptimalMapping> {
        rpo_obs::counter!("period_opt.probes").inc();
        match optimize_with_period_bound_scratch(oracle, chain, platform, period, &mut *scratch) {
            Ok(solution) if solution.reliability >= reliability_bound => Some(solution),
            _ => None,
        }
    };

    // Start at the candidate nearest the previous optimum (degenerate
    // `prev_period` just means a worse start, never a wrong answer).
    let start = if prev_period.is_finite() {
        candidates
            .partition_point(|&c| c < prev_period * (1.0 - CANDIDATE_REL_TOL))
            .min(len - 1)
    } else {
        len - 1
    };

    // Gallop up until a feasible candidate brackets the optimum from above.
    let mut hi = start;
    let mut lo_infeasible: Option<usize> = None;
    let mut solution = feasible(candidates[hi]);
    let mut step = 1;
    while solution.is_none() {
        if hi == len - 1 {
            return Err(AlgoError::NoFeasibleMapping);
        }
        lo_infeasible = Some(hi);
        hi = (hi + step).min(len - 1);
        step *= 2;
        solution = feasible(candidates[hi]);
    }
    // If the start itself was feasible, gallop down for an infeasible floor.
    if lo_infeasible.is_none() {
        let mut step = 1;
        while hi > 0 {
            let probe = hi.saturating_sub(step);
            match feasible(candidates[probe]) {
                Some(better) => {
                    solution = Some(better);
                    hi = probe;
                    step *= 2;
                }
                None => {
                    lo_infeasible = Some(probe);
                    break;
                }
            }
        }
    }
    // Close the bracket: invariant `hi` feasible, `lo` infeasible.
    if let Some(mut lo) = lo_infeasible {
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            match feasible(candidates[mid]) {
                Some(better) => {
                    solution = Some(better);
                    hi = mid;
                }
                None => lo = mid,
            }
        }
    }
    let best = solution.expect("bracket always holds a feasible candidate");
    Ok(PeriodOptimal {
        period: candidates[hi],
        mapping: best.mapping,
        reliability: best.reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize_reliability_with_period_bound;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn returned_mapping_respects_both_period_and_reliability() {
        let c = chain();
        let p = platform(6, 3);
        let bound = 0.9;
        let sol = minimize_period_with_reliability_bound(&c, &p, bound).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!(eval.reliability >= bound);
        assert!(eval.worst_case_period <= sol.period + 1e-12);
    }

    #[test]
    fn trivial_reliability_bound_gives_minimal_period() {
        let c = chain();
        let p = platform(6, 3);
        // Any mapping is acceptable reliability-wise: the optimum is the best
        // achievable period, which (with 6 processors and 4 tasks) is the
        // largest single task work = 40.
        let sol = minimize_period_with_reliability_bound(&c, &p, 1e-12).unwrap();
        assert!((sol.period - 40.0).abs() < 1e-12);
    }

    #[test]
    fn result_is_the_smallest_feasible_candidate() {
        let c = chain();
        let p = platform(6, 3);
        let bound = 0.95;
        let sol = minimize_period_with_reliability_bound(&c, &p, bound).unwrap();
        // Exhaustive check over a fine grid slightly below the optimum: no
        // strictly smaller period may reach the reliability bound.
        let probe = sol.period - 1e-6;
        let below = optimize_reliability_with_period_bound(&c, &p, probe);
        match below {
            Err(AlgoError::NoFeasibleMapping) => {}
            Ok(solution) => assert!(solution.reliability < bound),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn infeasible_reliability_bound_is_reported() {
        let c = chain();
        // Single processor, no replication possible: reliability is bounded
        // away from 1, so a bound of 0.999999999 is unreachable.
        let p = platform(1, 1);
        let unconstrained = crate::optimize_reliability_homogeneous(&c, &p).unwrap();
        let impossible = (unconstrained.reliability + 1.0) / 2.0;
        assert_eq!(
            minimize_period_with_reliability_bound(&c, &p, impossible).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn tighter_reliability_bounds_never_decrease_the_period() {
        let c = chain();
        let p = platform(6, 3);
        let relaxed = minimize_period_with_reliability_bound(&c, &p, 0.5).unwrap();
        let max_rel = crate::optimize_reliability_homogeneous(&c, &p)
            .unwrap()
            .reliability;
        let tight = minimize_period_with_reliability_bound(&c, &p, max_rel * 0.999999).unwrap();
        assert!(tight.period >= relaxed.period - 1e-12);
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let c = chain();
        let p = platform(4, 2);
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            assert_eq!(
                minimize_period_with_reliability_bound(&c, &p, bad).unwrap_err(),
                AlgoError::InvalidBound("reliability bound")
            );
        }
    }

    #[test]
    fn warm_started_binary_search_matches_a_fresh_linear_scan() {
        let c = chain();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        for bound in [0.5, 0.9, 0.95, 0.99] {
            let fast =
                minimize_period_with_reliability_bound_with_oracle(&oracle, &c, &p, bound).unwrap();
            // Reference: probe every candidate in ascending order with a
            // fresh (cold-scratch) Algorithm 2 run and take the first hit.
            let reference = candidate_periods(&oracle, p.speed(0))
                .into_iter()
                .find_map(
                    |period| match optimize_reliability_with_period_bound(&c, &p, period) {
                        Ok(sol) if sol.reliability >= bound => Some((period, sol.reliability)),
                        _ => None,
                    },
                )
                .expect("the relaxed bounds are feasible");
            assert_eq!(fast.period, reference.0, "bound {bound}");
            assert!((fast.reliability - reference.1).abs() < 1e-12);
        }
    }

    #[test]
    fn candidates_below_the_single_task_floor_are_pruned() {
        let c = chain(); // largest task work = 40, unit speed
        let p = platform(4, 2);
        let oracle = IntervalOracle::new(&c, &p);
        let candidates = candidate_periods(&oracle, 1.0);
        assert!(!candidates.is_empty());
        for &candidate in &candidates {
            assert!(
                candidate >= 40.0 * (1.0 - CANDIDATE_REL_TOL),
                "candidate {candidate} is below the single-task floor"
            );
        }
    }

    #[test]
    fn tiny_periods_are_not_mis_merged_by_the_dedup() {
        // Distinct single-task computation times of order 1e-11 sit within
        // an *absolute* 1e-12 of each other; a relative tolerance keeps them
        // apart and the minimizer still resolves the true optimum.
        let scale = 1e-12;
        let c = TaskChain::from_pairs(&[
            (30.0 * scale, 2.0 * scale),
            (10.0 * scale, 8.0 * scale),
            (25.0 * scale, 1.0 * scale),
            (40.0 * scale, 3.0 * scale),
        ])
        .unwrap();
        let p = platform(6, 3);
        let oracle = IntervalOracle::new(&c, &p);
        let candidates = candidate_periods(&oracle, 1.0);
        // Every distinct interval work ≥ the 40-unit floor must survive
        // (40 and 65 each occur twice and must merge to one candidate).
        let expected = [40.0, 65.0, 75.0, 105.0];
        assert_eq!(candidates.len(), expected.len());
        for (candidate, want) in candidates.iter().zip(expected) {
            assert!(
                (candidate - want * scale).abs() < 1e-9 * scale,
                "candidate {candidate} vs expected {}",
                want * scale
            );
        }
        // And the end-to-end minimizer matches the unscaled instance.
        let tiny = minimize_period_with_reliability_bound(&c, &p, 1e-12).unwrap();
        assert!((tiny.period - 40.0 * scale).abs() < 1e-9 * scale);
    }
}
