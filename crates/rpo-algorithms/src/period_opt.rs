//! Converse of Algorithm 2: minimize the period under a reliability bound, on
//! fully homogeneous platforms.
//!
//! The paper observes (Section 5.2) that this problem is also polynomial: it
//! suffices to binary-search the period and repeatedly run Algorithm 2. The
//! worst-case period of any mapping is one of finitely many candidate values
//! (an interval computation time `W(i..j)/s` or a communication time
//! `o_i / b`), so the search is performed over that sorted candidate set and
//! returns a certified optimum.

use rpo_model::{IntervalOracle, Mapping, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::algo2::optimize_reliability_with_period_bound_with_oracle;
use crate::{AlgoError, Result};

/// Result of the period minimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodOptimal {
    /// The minimal achievable worst-case period under the reliability bound.
    pub period: f64,
    /// A mapping achieving it.
    pub mapping: Mapping,
    /// The reliability of that mapping (≥ the requested bound).
    pub reliability: f64,
}

/// Every value the worst-case period of a mapping can take: computation times
/// of all intervals and all boundary communication times, read from the
/// oracle's prefix sums.
fn candidate_periods(oracle: &IntervalOracle, speed: f64) -> Vec<f64> {
    let n = oracle.len();
    let mut candidates = Vec::with_capacity(n * (n + 1) / 2 + n);
    for first in 0..n {
        for last in first..n {
            candidates.push(oracle.work(first, last) / speed);
        }
    }
    for i in 0..n.saturating_sub(1) {
        candidates.push(oracle.output_comm_time(i));
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite candidate periods"));
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    candidates
}

/// Minimizes the worst-case period of a mapping whose reliability is at least
/// `reliability_bound`, on a fully homogeneous platform.
///
/// # Errors
///
/// * [`AlgoError::HeterogeneousPlatform`] if the platform is not homogeneous;
/// * [`AlgoError::InvalidBound`] if the reliability bound is not in `(0, 1]`;
/// * [`AlgoError::NoFeasibleMapping`] if even the unconstrained optimum of
///   Algorithm 1 does not reach the reliability bound.
pub fn minimize_period_with_reliability_bound(
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
) -> Result<PeriodOptimal> {
    let oracle = IntervalOracle::new(chain, platform);
    minimize_period_with_reliability_bound_with_oracle(&oracle, chain, platform, reliability_bound)
}

/// Period minimization against a prebuilt [`IntervalOracle`]: the whole
/// binary search (one Algorithm 2 run per probe) shares a single oracle
/// instead of rebuilding the interval metrics at every probe.
///
/// # Errors
///
/// Same as [`minimize_period_with_reliability_bound`].
pub fn minimize_period_with_reliability_bound_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    reliability_bound: f64,
) -> Result<PeriodOptimal> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if !(reliability_bound.is_finite() && reliability_bound > 0.0 && reliability_bound <= 1.0) {
        return Err(AlgoError::InvalidBound("reliability bound"));
    }

    let candidates = candidate_periods(oracle, platform.speed(0));
    // Check feasibility at the largest candidate (equivalent to no bound).
    let largest = *candidates
        .last()
        .expect("a non-empty chain has candidate periods");
    let unconstrained =
        optimize_reliability_with_period_bound_with_oracle(oracle, chain, platform, largest)?;
    if unconstrained.reliability < reliability_bound {
        return Err(AlgoError::NoFeasibleMapping);
    }

    // Binary search the smallest candidate period meeting the bound.
    let feasible = |period: f64| -> Option<crate::algo1::OptimalMapping> {
        match optimize_reliability_with_period_bound_with_oracle(oracle, chain, platform, period) {
            Ok(solution) if solution.reliability >= reliability_bound => Some(solution),
            _ => None,
        }
    };
    let (mut lo, mut hi) = (0usize, candidates.len() - 1);
    let mut best = unconstrained;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match feasible(candidates[mid]) {
            Some(solution) => {
                best = solution;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Ok(PeriodOptimal {
        period: candidates[hi],
        mapping: best.mapping,
        reliability: best.reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize_reliability_with_period_bound;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn returned_mapping_respects_both_period_and_reliability() {
        let c = chain();
        let p = platform(6, 3);
        let bound = 0.9;
        let sol = minimize_period_with_reliability_bound(&c, &p, bound).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!(eval.reliability >= bound);
        assert!(eval.worst_case_period <= sol.period + 1e-12);
    }

    #[test]
    fn trivial_reliability_bound_gives_minimal_period() {
        let c = chain();
        let p = platform(6, 3);
        // Any mapping is acceptable reliability-wise: the optimum is the best
        // achievable period, which (with 6 processors and 4 tasks) is the
        // largest single task work = 40.
        let sol = minimize_period_with_reliability_bound(&c, &p, 1e-12).unwrap();
        assert!((sol.period - 40.0).abs() < 1e-12);
    }

    #[test]
    fn result_is_the_smallest_feasible_candidate() {
        let c = chain();
        let p = platform(6, 3);
        let bound = 0.95;
        let sol = minimize_period_with_reliability_bound(&c, &p, bound).unwrap();
        // Exhaustive check over a fine grid slightly below the optimum: no
        // strictly smaller period may reach the reliability bound.
        let probe = sol.period - 1e-6;
        let below = optimize_reliability_with_period_bound(&c, &p, probe);
        match below {
            Err(AlgoError::NoFeasibleMapping) => {}
            Ok(solution) => assert!(solution.reliability < bound),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn infeasible_reliability_bound_is_reported() {
        let c = chain();
        // Single processor, no replication possible: reliability is bounded
        // away from 1, so a bound of 0.999999999 is unreachable.
        let p = platform(1, 1);
        let unconstrained = crate::optimize_reliability_homogeneous(&c, &p).unwrap();
        let impossible = (unconstrained.reliability + 1.0) / 2.0;
        assert_eq!(
            minimize_period_with_reliability_bound(&c, &p, impossible).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn tighter_reliability_bounds_never_decrease_the_period() {
        let c = chain();
        let p = platform(6, 3);
        let relaxed = minimize_period_with_reliability_bound(&c, &p, 0.5).unwrap();
        let max_rel = crate::optimize_reliability_homogeneous(&c, &p)
            .unwrap()
            .reliability;
        let tight = minimize_period_with_reliability_bound(&c, &p, max_rel * 0.999999).unwrap();
        assert!(tight.period >= relaxed.period - 1e-12);
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let c = chain();
        let p = platform(4, 2);
        for bad in [0.0, -1.0, 1.5, f64::NAN] {
            assert_eq!(
                minimize_period_with_reliability_bound(&c, &p, bad).unwrap_err(),
                AlgoError::InvalidBound("reliability bound")
            );
        }
    }
}
