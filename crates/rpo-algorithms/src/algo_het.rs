//! `algo_het`: exact reliability optimization on heterogeneous platforms by
//! dynamic programming over processor **classes**.
//!
//! The general heterogeneous problem is NP-complete, but real platforms have
//! few distinct `(speed, failure rate)` classes — and within a class all
//! processors are interchangeable. Exploiting that symmetry, the search
//! space shrinks from concrete processor sets to class-level replica counts,
//! and an exact dynamic program over
//!
//! `F(i, b) = best reliability mapping the first i tasks with per-class
//! remaining budgets b = (b_1 … b_{K_c})`
//!
//! becomes tractable: the state space is `(n + 1) · Π_c (m_c + 1)` and each
//! transition picks the last interval `τ_{j+1} … τ_i` together with a
//! replica *pattern* `q = (q_1 … q_{K_c})`, `1 ≤ Σ q_c ≤ K`, of reliability
//! `1 − Π_c (1 − block_c)^{q_c}` (the heterogeneous Eq. 9 inner term). An
//! optional worst-case period bound restricts the admissible `(interval,
//! pattern)` pairs exactly as in Algorithm 2: incoming/outgoing
//! communication times and `W / s_slowest-used` must all fit the bound.
//!
//! The DP runs when the platform passes [`het_dp_applicable`] (class count
//! `K_c ≤` [`MAX_DP_CLASSES`], state space ≤ [`MAX_DP_STATES`]); otherwise
//! [`algo_het`] falls back to the Section 7.2 greedy pipeline
//! ([`greedy_het_with_oracle`]: Heur-L/Heur-P partitions swept over every
//! interval count + `alloc_het`). When the DP does run, the greedy result is
//! still computed first and used as its **upper-bound pruner**: every factor
//! of the reliability product is ≤ 1, so any DP prefix already below the
//! greedy incumbent can never catch up and is cut.
//!
//! # Kernel layout: gather / compact / sweep
//!
//! The DP body runs through one of two kernels ([`crate::DpKernel`]):
//!
//! * The **chunked kernel** ([`crate::het_kernel`], the default) mirrors
//!   the homogeneous Algorithm 1 kernel's shape. Per DP row it **gathers**
//!   each replica pattern's reliabilities `1 − Π_c (1 − block_c)^{q_c}`
//!   over every admissible interval start into one contiguous scratch row
//!   ([`IntervalOracle::fill_pattern_block_row`] — multiplication-only on
//!   classes passing the factored-exponent guard), walks the **compacted**
//!   dense predecessor-state ranges precomputed per pattern
//!   ([`Pattern::runs`], replacing the per-state index-list walk that
//!   defeats vectorization), and folds each range with a fixed-width
//!   `[f64; 8]` value-only multiply-and-max **sweep**. Winning
//!   `(j, pattern)` choices are recovered post hoc by bit-exact candidate
//!   re-scan in sweep order, so its DP table and lowered mappings are
//!   identical to the scalar kernel's.
//! * The **scalar kernel** (the original per-state list walk with inline
//!   choice recording) remains the differential reference, and is the
//!   pinned default under the `scalar-kernel` feature. It also still runs
//!   whenever a caller requests it explicitly through
//!   [`class_dp_with_kernel`].
//!
//! Both kernels preserve the greedy-incumbent pruning cut, and both gather
//! class blocks through the oracle's contiguous row fills
//! ([`IntervalOracle::fill_class_block_row`] /
//! [`IntervalOracle::fill_pattern_block_row`]). The winning class-level
//! solution is a [`rpo_model::ClassAssignment`] and lowers to a concrete
//! [`Mapping`] deterministically; the reported reliability is recomputed
//! through the oracle's exact Eq. 9 path, so it always agrees with the
//! evaluator.
//!
//! # Adding the latency criterion
//!
//! This module optimizes reliability under a **period** bound only. The
//! paper's full tri-criteria problem (a latency bound too — the case that
//! makes the heterogeneous problem NP-complete) lives in
//! [`crate::algo_het_lat`], which extends this DP in two regimes:
//!
//! * a **latency state**: because the worst-case latency is additive over
//!   intervals with per-interval terms on the oracle's boundary-indexed
//!   compute/communication grid, the DP state grows a latency-so-far
//!   dimension, stored sparsely as per-`(boundary, budgets)` Pareto labels.
//!   Exact whenever the label population stays within
//!   [`crate::algo_het_lat::MAX_LAT_LABELS`];
//! * a **parametric (Lagrangian) sweep** as the fallback beyond that cap:
//!   the scalar DP of this module with each factor damped by
//!   `e^{−μ·latency term}`, bisected over `μ`. Exact when the
//!   latency-unconstrained optimum is already feasible or the constrained
//!   optimum lies on the (latency, log-reliability) convex hull; a
//!   heuristic between hull points — which is why the greedy pipeline's
//!   feasible incumbent is still compared at the end there.

use rpo_model::{
    assignment_from_segments, ClassView, IntervalOracle, Mapping, Platform, TaskChain,
};
use serde::{Deserialize, Serialize};

use crate::algo1::{DpKernel, OptimalMapping};
use crate::alloc_het::{algo_alloc_heterogeneous_with_oracle, AllocationConstraints};
use crate::heur_l::heur_l_partition_with_oracle;
use crate::heur_p::heur_p_partition_with_oracle;
use crate::{AlgoError, Result};

/// Largest class count the exact DP accepts; beyond it [`algo_het`] falls
/// back to the greedy pipeline.
pub const MAX_DP_CLASSES: usize = 4;

/// Largest per-boundary budget-state count `Π_c (m_c + 1)` the DP accepts.
pub const MAX_DP_STATES: usize = 4096;

/// Which strategy produced an [`algo_het`] solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HetMethod {
    /// The exact class-level dynamic program.
    ClassDp,
    /// The Section 7.2 greedy pipeline: the fallback for large class
    /// counts, or — only through floating-point ulps, since the DP is exact
    /// — when its recomputed reliability comes out *strictly* higher than
    /// the DP's. Exact ties report [`HetMethod::ClassDp`].
    Greedy,
}

/// An [`algo_het`] solution: the mapping, its exact Eq. 9 reliability, and
/// the strategy that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HetSolution {
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Its reliability, recomputed exactly through the oracle.
    pub reliability: f64,
    /// Which strategy won.
    pub method: HetMethod,
    /// Exact reliability of the greedy pipeline's own best mapping, when it
    /// found one. `algo_het` always runs the greedy (as fallback and
    /// pruner), so callers comparing DP vs greedy — the experiment sweeps,
    /// the benches — read both results from one solve.
    pub greedy_reliability: Option<f64>,
}

/// Whether the exact class-level DP can run on this instance: few enough
/// classes and a bounded budget-state space.
pub fn het_dp_applicable(oracle: &IntervalOracle) -> bool {
    class_view_within_dp_limits(oracle.class_view())
}

/// [`het_dp_applicable`] from a bare [`Platform`] (no oracle yet): builds a
/// census-only [`ClassView`] over the trivial work prefix, so the class
/// grouping is the one canonical implementation. This is what backend
/// applicability checks use before any oracle exists.
pub fn het_dp_applicable_platform(platform: &Platform) -> bool {
    class_view_within_dp_limits(&ClassView::new(platform, &[0.0]))
}

fn class_view_within_dp_limits(view: &ClassView) -> bool {
    view.len() <= MAX_DP_CLASSES && budget_states(view) <= MAX_DP_STATES
}

/// The DP's per-boundary budget-state count `Π_c (m_c + 1)`.
pub(crate) fn budget_states(view: &ClassView) -> usize {
    view.classes()
        .iter()
        .map(|c| c.members + 1)
        .fold(1usize, |acc, m| acc.saturating_mul(m))
}

pub(crate) fn validate_bound(period_bound: Option<f64>) -> Result<f64> {
    match period_bound {
        None => Ok(f64::INFINITY),
        Some(bound) if bound.is_finite() && bound > 0.0 => Ok(bound),
        Some(_) => Err(AlgoError::InvalidBound("period bound")),
    }
}

/// Mixed-radix strides of the per-class budget digits: state
/// `s = Σ_c b_c · stride_c` with `b_c ∈ 0 ..= m_c`.
pub(crate) fn class_strides(view: &ClassView) -> Vec<usize> {
    let mut strides = vec![1usize; view.len()];
    for c in 1..view.len() {
        strides[c] = strides[c - 1] * (view.class(c - 1).members + 1);
    }
    strides
}

/// `algo_het`: the most reliable mapping of `chain` onto the (possibly
/// heterogeneous) `platform`, under an optional worst-case period bound.
///
/// Exact (class-level DP) whenever [`het_dp_applicable`] holds; otherwise
/// the greedy Section 7.2 pipeline. In both cases the result is never less
/// reliable than [`greedy_het_with_oracle`]'s on the same instance.
///
/// # Errors
///
/// * [`AlgoError::InvalidBound`] if the bound is not a positive finite
///   number;
/// * [`AlgoError::NoFeasibleMapping`] if no mapping fits the bound.
pub fn algo_het(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
) -> Result<HetSolution> {
    let oracle = IntervalOracle::new(chain, platform);
    algo_het_with_oracle(&oracle, chain, platform, period_bound)
}

/// [`algo_het`] against a prebuilt [`IntervalOracle`] (the portfolio shares
/// one oracle across all its backends).
///
/// # Errors
///
/// Same as [`algo_het`].
pub fn algo_het_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
) -> Result<HetSolution> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    validate_bound(period_bound)?;

    // The greedy pipeline first: it is the fallback when the DP cannot run,
    // and the DP's upper-bound pruner when it can.
    let greedy = greedy_het_with_oracle(oracle, chain, platform, period_bound);
    let greedy_reliability = greedy.as_ref().ok().map(|g| g.reliability);
    if !het_dp_applicable(oracle) {
        return greedy.map(|solution| HetSolution {
            mapping: solution.mapping,
            reliability: solution.reliability,
            method: HetMethod::Greedy,
            greedy_reliability,
        });
    }
    let incumbent = greedy_reliability.unwrap_or(0.0);
    let dp = class_dp(oracle, chain, platform, period_bound, incumbent);

    // The DP maximizes factored (ulp-accurate) products; both reliabilities
    // here are recomputed exactly, so picking the larger one guarantees the
    // "never below greedy" invariant bit-for-bit.
    match (dp, greedy) {
        (Some(dp), Ok(greedy)) if greedy.reliability > dp.reliability => Ok(HetSolution {
            mapping: greedy.mapping,
            reliability: greedy.reliability,
            method: HetMethod::Greedy,
            greedy_reliability,
        }),
        (Some(dp), _) => Ok(HetSolution {
            mapping: dp.mapping,
            reliability: dp.reliability,
            method: HetMethod::ClassDp,
            greedy_reliability,
        }),
        (None, Ok(greedy)) => Ok(HetSolution {
            mapping: greedy.mapping,
            reliability: greedy.reliability,
            method: HetMethod::Greedy,
            greedy_reliability,
        }),
        (None, Err(e)) => Err(e),
    }
}

/// The Section 7.2 greedy pipeline as a single entry point: Heur-L and
/// Heur-P partitions for every interval count `1 ..= min(n, p)`, each
/// allocated with `alloc_het`, keeping the most reliable mapping whose
/// worst-case period fits the bound. This is what the portfolio's heuristic
/// backends race — factored out here so [`algo_het`] can use it as fallback
/// and pruner, and the benches as the comparison baseline.
///
/// # Errors
///
/// * [`AlgoError::InvalidBound`] if the bound is not a positive finite
///   number;
/// * [`AlgoError::NoFeasibleMapping`] if no candidate fits the bound.
pub fn greedy_het_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
) -> Result<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    let bound = validate_bound(period_bound)?;
    greedy_het_bounded(oracle, chain, platform, bound, f64::INFINITY)
}

/// The shared greedy-pipeline core: Heur-L and Heur-P partitions for every
/// interval count, each allocated with `alloc_het`, keeping the most
/// reliable mapping whose worst-case period fits `bound` **and** worst-case
/// latency fits `latency_bound` (pass `f64::INFINITY` for the period-only
/// pipeline). Bounds are the callers' responsibility to validate.
pub(crate) fn greedy_het_bounded(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    bound: f64,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    // alloc_het rejects infinite bounds: substitute a finite value no
    // feasible interval can exceed (whole chain on the slowest processor,
    // doubled, plus the largest communication).
    let alloc_bound = if bound.is_finite() {
        bound
    } else {
        let min_speed = oracle
            .classes()
            .iter()
            .map(|c| c.speed)
            .fold(f64::INFINITY, f64::min);
        let max_comm = (0..oracle.len())
            .map(|i| oracle.output_comm_time(i))
            .fold(0.0, f64::max);
        2.0 * oracle.total_work() / min_speed + max_comm
    };

    let constraints = AllocationConstraints::none();
    let mut best: Option<OptimalMapping> = None;
    for num_intervals in 1..=oracle.len().min(oracle.num_processors()) {
        for partition_fn in [heur_l_partition_with_oracle, heur_p_partition_with_oracle] {
            let partition = partition_fn(oracle, num_intervals);
            let Ok(mapping) = algo_alloc_heterogeneous_with_oracle(
                oracle,
                chain,
                platform,
                &partition,
                alloc_bound,
                &constraints,
            ) else {
                continue;
            };
            let evaluation = oracle.evaluate(&mapping);
            if evaluation.worst_case_period <= bound
                && evaluation.worst_case_latency <= latency_bound
                && best
                    .as_ref()
                    .is_none_or(|b| evaluation.reliability > b.reliability)
            {
                best = Some(OptimalMapping {
                    mapping,
                    reliability: evaluation.reliability,
                });
            }
        }
    }
    best.ok_or(AlgoError::NoFeasibleMapping)
}

/// One class-level replica pattern `q = (q_1 … q_{K_c})`.
pub(crate) struct Pattern {
    pub(crate) counts: Vec<usize>,
    /// Mixed-radix offset `Σ q_c · stride_c` — subtracting it from a budget
    /// state spends the pattern.
    pub(crate) offset: usize,
    /// Slowest speed among the classes the pattern uses (decides the
    /// pattern's period requirement on an interval).
    pub(crate) min_speed: f64,
    /// Index of a class achieving [`Pattern::min_speed`] among the used
    /// classes — the class whose boundary-indexed compute grid gives the
    /// pattern's worst-case latency term on an interval.
    pub(crate) min_speed_class: usize,
    /// Budget states with `b_c ≥ q_c` for every class (precomputed once).
    pub(crate) valid_predecessors: Vec<u32>,
    /// [`Pattern::valid_predecessors`] compacted into dense `(start, len)`
    /// ranges of consecutive states. Valid predecessors form contiguous
    /// stride-1 runs along the class-0 budget digit (one run per
    /// combination of upper digits ≥ their `q_c`, merging wherever the gaps
    /// vanish — a pattern drawing nothing from the low classes yields a few
    /// long runs), so the chunked kernel sweeps each range with contiguous
    /// loads instead of the per-state list walk that defeats vectorization.
    pub(crate) runs: Vec<(u32, u32)>,
}

/// Enumerates every replica pattern `1 ≤ Σ q_c ≤ k_max`, `q_c ≤ m_c`, in a
/// fixed (odometer) order, with its valid predecessor states.
pub(crate) fn enumerate_patterns(
    view: &ClassView,
    k_max: usize,
    strides: &[usize],
) -> Vec<Pattern> {
    let kc = view.len();
    let num_states = budget_states(view);
    // Per-state digit decode, reused by every pattern's predecessor filter.
    let digits: Vec<Vec<usize>> = (0..num_states)
        .map(|s| {
            (0..kc)
                .map(|c| s / strides[c] % (view.class(c).members + 1))
                .collect()
        })
        .collect();

    let mut patterns = Vec::new();
    let mut q = vec![0usize; kc];
    'odometer: loop {
        // Advance the odometer (q_c ≤ min(m_c, k_max)).
        let mut c = 0;
        loop {
            if c == kc {
                break 'odometer;
            }
            if q[c] < view.class(c).members.min(k_max) {
                q[c] += 1;
                break;
            }
            q[c] = 0;
            c += 1;
        }
        let total: usize = q.iter().sum();
        if total == 0 || total > k_max {
            continue;
        }
        let offset: usize = q.iter().zip(strides).map(|(&qc, &s)| qc * s).sum();
        let (min_speed_class, min_speed) = q
            .iter()
            .enumerate()
            .filter(|&(_, &qc)| qc > 0)
            .map(|(c, _)| (c, view.class(c).speed))
            .fold((usize::MAX, f64::INFINITY), |acc, cur| {
                if cur.1 < acc.1 {
                    cur
                } else {
                    acc
                }
            });
        let valid_predecessors: Vec<u32> = (0..num_states as u32)
            .filter(|&s| digits[s as usize].iter().zip(&q).all(|(&b, &qc)| b >= qc))
            .collect();
        // Coalesce the (ascending) predecessor list into dense ranges for
        // the chunked kernel's contiguous sweeps.
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &s in &valid_predecessors {
            match runs.last_mut() {
                Some((start, len)) if *start + *len == s => *len += 1,
                _ => runs.push((s, 1)),
            }
        }
        patterns.push(Pattern {
            counts: q.clone(),
            offset,
            min_speed,
            min_speed_class,
            valid_predecessors,
            runs,
        });
    }
    patterns
}

/// No recorded choice sentinel of the DP's packed `(j, pattern)` traceback.
const NO_CHOICE: u64 = u64::MAX;

/// The exact class-level dynamic program, dispatched to the crate-default
/// kernel: the chunked gather/compact/sweep kernel of [`crate::het_kernel`],
/// or the scalar reference inner loop when the `scalar-kernel` feature pins
/// it. Returns `None` when no mapping fits the bound (or everything was
/// pruned below the greedy `incumbent` — in which case the caller's greedy
/// solution is already optimal-or-equal).
fn class_dp(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    incumbent: f64,
) -> Option<OptimalMapping> {
    class_dp_with_kernel(
        oracle,
        chain,
        platform,
        period_bound,
        incumbent,
        DpKernel::crate_default(),
    )
}

/// The class-level DP with an explicit kernel choice: the measurement and
/// differential-testing entry point behind [`algo_het`]'s exact path.
///
/// Both kernels maximize over bit-identical candidate values and recover
/// bit-identical traceback choices, so their lowered mappings are equal —
/// the workspace `het` suite asserts exactly that. `incumbent` is the greedy
/// pruning cut (pass `0.0` to disable pruning).
///
/// # Panics
///
/// Panics if [`het_dp_applicable`] does not hold for the oracle, or the
/// bound is not `None` or a positive finite number (callers go through
/// [`validate_bound`](self) / [`algo_het`] in production).
pub fn class_dp_with_kernel(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    incumbent: f64,
    kernel: DpKernel,
) -> Option<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    assert!(
        het_dp_applicable(oracle),
        "the class-level DP requires het_dp_applicable platforms"
    );
    assert!(
        validate_bound(period_bound).is_ok(),
        "period bound must be None or a positive finite number"
    );
    match kernel {
        DpKernel::Chunked => {
            crate::het_kernel::class_dp_chunked(oracle, chain, platform, period_bound, incumbent)
        }
        DpKernel::Scalar => class_dp_scalar(oracle, chain, platform, period_bound, incumbent),
    }
}

/// The scalar reference inner loop of the class DP (the original per-state
/// list walk), kept as the chunked kernel's differential reference and the
/// `scalar-kernel` feature's pinned implementation.
///
/// The admissibility prelude and block-row gather are mirrored by
/// `algo_het_lat`'s `label_dp` and `penalized_dp`, and by the chunked
/// kernel in [`crate::het_kernel`] — the DPs differ in their value type,
/// so a fix to the shared shape must land in all of them.
fn class_dp_scalar(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    incumbent: f64,
) -> Option<OptimalMapping> {
    let n = oracle.len();
    let view = oracle.class_view();
    let kc = view.len();
    let k_max = oracle.max_replication().min(oracle.num_processors());

    let strides = class_strides(view);
    let num_states = budget_states(view);
    let patterns = enumerate_patterns(view, k_max, &strides);
    assert!(
        patterns.len() < (1 << 32) && n < (1 << 24),
        "packed het traceback supports < 2^32 patterns and n < 2^24"
    );

    let bound = period_bound.unwrap_or(f64::INFINITY);
    // Any DP prefix strictly below the incumbent can never catch up (every
    // later factor is ≤ 1); a hair of slack keeps factored-vs-exact ulp
    // differences from over-pruning.
    let prune_below = incumbent * (1.0 - 1e-9);
    let work_prefix = oracle.work_prefix();
    let max_speed = view.max_speed();
    let in_ok: Vec<bool> = (0..n).map(|j| oracle.input_comm_time(j) <= bound).collect();

    let full = num_states - 1; // every budget digit at its maximum m_c
    let mut f = vec![f64::NEG_INFINITY; (n + 1) * num_states];
    let mut choice = vec![NO_CHOICE; (n + 1) * num_states];
    f[full] = 1.0;

    // Per-class block-row gather buffers and per-class failure powers
    // (1 − block)^q, reused across rows.
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); kc];
    let mut powers: Vec<Vec<f64>> = vec![vec![1.0; k_max + 1]; kc];

    for i in 1..=n {
        if oracle.output_comm_time(i - 1) > bound {
            continue; // no interval ending at task i−1 fits the period
        }
        // Conservative first admissible start: even the fastest class cannot
        // fit longer intervals within the bound.
        let j_lo = if bound.is_finite() {
            work_prefix[..i]
                .partition_point(|&w| w < work_prefix[i] - bound * max_speed)
                .saturating_sub(1)
        } else {
            0
        };
        for (c, row) in rows.iter_mut().enumerate() {
            oracle.fill_class_block_row(c, i - 1, j_lo, row);
        }
        let (done, rest) = f.split_at_mut(i * num_states);
        let row_i = &mut rest[..num_states];
        let choice_base = i * num_states;
        for j in (j_lo..i).rev() {
            if !in_ok[j] {
                continue;
            }
            let work = work_prefix[i] - work_prefix[j];
            if work / max_speed > bound {
                continue; // admissible for no pattern at all
            }
            for (c, row) in rows.iter().enumerate() {
                let all_fail = 1.0 - row[j - j_lo];
                let pow = &mut powers[c];
                for q in 1..=k_max {
                    pow[q] = pow[q - 1] * all_fail;
                }
            }
            let row_j = &done[j * num_states..(j + 1) * num_states];
            for (pattern_index, pattern) in patterns.iter().enumerate() {
                if work / pattern.min_speed > bound {
                    continue;
                }
                let survive: f64 = pattern
                    .counts
                    .iter()
                    .enumerate()
                    .map(|(c, &qc)| powers[c][qc])
                    .product();
                let rel = 1.0 - survive;
                let packed = (j as u64) << 32 | pattern_index as u64;
                for &s in &pattern.valid_predecessors {
                    let s = s as usize;
                    let prev = row_j[s];
                    if prev.is_finite() {
                        let cand = prev * rel;
                        let target = s - pattern.offset;
                        if cand > row_i[target] && cand >= prune_below {
                            row_i[target] = cand;
                            choice[choice_base + target] = packed;
                        }
                    }
                }
            }
        }
    }

    // Best over every remaining-budget state at the final boundary.
    let row_n = &f[n * num_states..];
    let (best_state, best_rel) = row_n
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("totally ordered reliabilities"))
        .map(|(s, &r)| (s, r))?;
    if !best_rel.is_finite() {
        return None;
    }

    // Traceback into class-level segments, then lower deterministically.
    let mut segments: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    let (mut i, mut s) = (n, best_state);
    while i > 0 {
        let packed = choice[i * num_states + s];
        debug_assert!(packed != NO_CHOICE, "reachable state has a recorded choice");
        let j = (packed >> 32) as usize;
        let pattern = &patterns[(packed & 0xFFFF_FFFF) as usize];
        segments.push((j, i - 1, pattern.counts.clone()));
        s += pattern.offset;
        i = j;
    }
    segments.reverse();
    let (partition, assignment) =
        assignment_from_segments(&segments, n).expect("DP segments form a valid partition");
    let mapping = assignment
        .lower(view, &partition, chain, platform)
        .expect("DP respects every class budget");
    // Report the exact Eq. 9 reliability of the lowered mapping (the DP
    // maximized over factored values that can differ by an ulp).
    let reliability = oracle.mapping_reliability(&mapping);
    Some(OptimalMapping {
        mapping,
        reliability,
    })
}

/// Chains longer than this are rejected by [`exhaustive_het`].
pub const MAX_EXHAUSTIVE_HET_TASKS: usize = 12;

/// Class-level segments `(first, last, per-class counts)` of a candidate.
pub(crate) type Segments = Vec<(usize, usize, Vec<usize>)>;

/// Reference brute force for heterogeneous instances: enumerates every
/// interval partition **and** every per-interval class pattern under the
/// shared class budgets, and returns the most reliable mapping fitting the
/// period bound. Exponential — only for validating [`algo_het`] on tiny
/// instances.
///
/// # Errors
///
/// Same as [`algo_het`].
///
/// # Panics
///
/// Panics if the chain exceeds [`MAX_EXHAUSTIVE_HET_TASKS`] tasks.
pub fn exhaustive_het(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
) -> Result<OptimalMapping> {
    let bound = validate_bound(period_bound)?;
    let n = chain.len();
    assert!(
        n <= MAX_EXHAUSTIVE_HET_TASKS,
        "exhaustive het solver limited to {MAX_EXHAUSTIVE_HET_TASKS} tasks, chain has {n}"
    );
    let oracle = IntervalOracle::new(chain, platform);
    let view = oracle.class_view();
    let k_max = oracle.max_replication().min(oracle.num_processors());
    let strides = class_strides(view);
    let patterns = enumerate_patterns(view, k_max, &strides);

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        oracle: &IntervalOracle,
        patterns: &[Pattern],
        bound: f64,
        start: usize,
        budgets: &mut [usize],
        segments: &mut Segments,
        reliability: f64,
        best: &mut Option<(f64, Segments)>,
    ) {
        let n = oracle.len();
        if start == n {
            if best.as_ref().is_none_or(|(b, _)| reliability > *b) {
                *best = Some((reliability, segments.clone()));
            }
            return;
        }
        if oracle.input_comm_time(start) > bound {
            return;
        }
        for last in start..n {
            if oracle.output_comm_time(last) > bound {
                continue;
            }
            let work = oracle.work(start, last);
            for pattern in patterns {
                if work / pattern.min_speed > bound {
                    continue;
                }
                if pattern
                    .counts
                    .iter()
                    .zip(budgets.iter())
                    .any(|(&q, &b)| q > b)
                {
                    continue;
                }
                let mut survive = 1.0;
                for (c, &q) in pattern.counts.iter().enumerate() {
                    let block = oracle.class_block_reliability(c, start, last);
                    for _ in 0..q {
                        survive *= 1.0 - block;
                    }
                }
                for (b, &q) in budgets.iter_mut().zip(&pattern.counts) {
                    *b -= q;
                }
                segments.push((start, last, pattern.counts.clone()));
                recurse(
                    oracle,
                    patterns,
                    bound,
                    last + 1,
                    budgets,
                    segments,
                    reliability * (1.0 - survive),
                    best,
                );
                segments.pop();
                for (b, &q) in budgets.iter_mut().zip(&pattern.counts) {
                    *b += q;
                }
            }
        }
    }

    let mut budgets: Vec<usize> = view.classes().iter().map(|c| c.members).collect();
    let mut best = None;
    recurse(
        &oracle,
        &patterns,
        bound,
        0,
        &mut budgets,
        &mut Vec::new(),
        1.0,
        &mut best,
    );
    let (_, segments) = best.ok_or(AlgoError::NoFeasibleMapping)?;
    let (partition, assignment) = assignment_from_segments(&segments, n)?;
    let mapping = assignment.lower(view, &partition, chain, platform)?;
    let reliability = oracle.mapping_reliability(&mapping);
    Ok(OptimalMapping {
        mapping,
        reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    /// Two classes: three fast-but-flaky processors, three slow-but-reliable.
    fn class_platform() -> Platform {
        PlatformBuilder::new()
            .processor(4.0, 1e-3)
            .processor(4.0, 1e-3)
            .processor(4.0, 1e-3)
            .processor(1.0, 1e-4)
            .processor(1.0, 1e-4)
            .processor(1.0, 1e-4)
            .bandwidth(1.0)
            .link_failure_rate(1e-5)
            .max_replication(3)
            .build()
            .unwrap()
    }

    #[test]
    fn dp_is_exact_on_the_class_fixture() {
        let c = chain();
        let p = class_platform();
        for bound in [None, Some(15.0), Some(30.0), Some(110.0)] {
            let dp = algo_het(&c, &p, bound).unwrap();
            let brute = exhaustive_het(&c, &p, bound).unwrap();
            assert!(
                (dp.reliability - brute.reliability).abs()
                    <= 1e-12 * brute.reliability.max(dp.reliability),
                "bound {bound:?}: dp {} vs exhaustive {}",
                dp.reliability,
                brute.reliability
            );
        }
    }

    #[test]
    fn dp_never_loses_to_greedy() {
        let c = chain();
        let p = class_platform();
        let oracle = IntervalOracle::new(&c, &p);
        for bound in [None, Some(15.0), Some(40.0), Some(1000.0)] {
            let het = algo_het_with_oracle(&oracle, &c, &p, bound).unwrap();
            let greedy = greedy_het_with_oracle(&oracle, &c, &p, bound).unwrap();
            assert!(
                het.reliability >= greedy.reliability,
                "bound {bound:?}: algo_het {} below greedy {}",
                het.reliability,
                greedy.reliability
            );
        }
    }

    #[test]
    fn returned_mapping_respects_the_period_bound() {
        let c = chain();
        let p = class_platform();
        for bound in [15.0, 30.0, 110.0] {
            let sol = algo_het(&c, &p, Some(bound)).unwrap();
            let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
            assert!(
                eval.worst_case_period <= bound,
                "period {} exceeds bound {bound}",
                eval.worst_case_period
            );
            assert!((sol.reliability - eval.reliability).abs() < 1e-15);
        }
    }

    #[test]
    fn homogeneous_platform_recovers_algorithms_1_and_2() {
        let c = chain();
        let p = PlatformBuilder::new()
            .identical_processors(6, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(3)
            .build()
            .unwrap();
        let het = algo_het(&c, &p, None).unwrap();
        let algo1 = crate::optimize_reliability_homogeneous(&c, &p).unwrap();
        assert!((het.reliability - algo1.reliability).abs() < 1e-12);
        for bound in [45.0, 70.0, 105.0] {
            let het = algo_het(&c, &p, Some(bound)).unwrap();
            let algo2 = crate::optimize_reliability_with_period_bound(&c, &p, bound).unwrap();
            assert!(
                (het.reliability - algo2.reliability).abs() < 1e-12,
                "bound {bound}: {} vs {}",
                het.reliability,
                algo2.reliability
            );
        }
    }

    #[test]
    fn many_classes_fall_back_to_greedy() {
        let c = chain();
        let mut builder = PlatformBuilder::new()
            .bandwidth(1.0)
            .link_failure_rate(1e-5)
            .max_replication(2);
        for u in 0..5 {
            builder = builder.processor(1.0 + u as f64 * 0.5, 1e-4);
        }
        let p = builder.build().unwrap();
        let oracle = IntervalOracle::new(&c, &p);
        assert_eq!(oracle.classes().len(), 5);
        assert!(!het_dp_applicable(&oracle));
        let sol = algo_het_with_oracle(&oracle, &c, &p, Some(100.0)).unwrap();
        assert_eq!(sol.method, HetMethod::Greedy);
        let greedy = greedy_het_with_oracle(&oracle, &c, &p, Some(100.0)).unwrap();
        assert_eq!(sol.reliability, greedy.reliability);
    }

    #[test]
    fn infeasible_and_invalid_bounds_are_reported() {
        let c = chain(); // largest task work 40, fastest class speed 4
        let p = class_platform();
        assert_eq!(
            algo_het(&c, &p, Some(5.0)).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                algo_het(&c, &p, Some(bad)).unwrap_err(),
                AlgoError::InvalidBound("period bound")
            );
        }
    }

    #[test]
    fn solving_twice_lowers_to_the_identical_mapping() {
        let c = chain();
        let p = class_platform();
        let a = algo_het(&c, &p, Some(30.0)).unwrap();
        let b = algo_het(&c, &p, Some(30.0)).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.method, HetMethod::ClassDp);
    }
}
