//! Optimal algorithms and heuristics for the multiprocessor interval-mapping
//! problem of pipelined real-time systems.
//!
//! This crate is the paper's primary contribution:
//!
//! * **Polynomial optimal algorithms on homogeneous platforms**
//!   * [`algo1`] — Algorithm 1: mono-criterion reliability optimization
//!     (dynamic programming, `O(n² p K)`);
//!   * [`algo2`] — Algorithm 2: reliability optimization under a period bound;
//!   * [`period_opt`] — the converse problem (minimal period under a
//!     reliability bound) by binary search over candidate periods;
//!   * [`alloc`] — Algo-Alloc (Theorem 4): optimal greedy allocation of
//!     processors to a fixed interval partition;
//!   * [`batch_kernel`] — the batched SoA mega-kernel: the Algorithm 1/2
//!     recurrence over many same-shape instances in lockstep, one instance
//!     per SIMD lane.
//! * **Heterogeneous solvers**
//!   * [`algo_het`] — exact reliability optimization by class-level dynamic
//!     programming (tractable whenever the platform has few distinct
//!     processor classes; greedy fallback otherwise);
//!   * [`het_kernel`] — the chunked gather/compact/sweep kernel behind
//!     `algo_het`'s class DP (the scalar inner loop stays available behind
//!     the `scalar-kernel` feature as the differential reference);
//!   * [`algo_het_lat`] — the tri-criteria extension: exact reliability
//!     optimization under period **and latency** bounds, by a label DP over
//!     `(boundary, budgets, latency-so-far)` states with a Lagrangian
//!     penalty sweep as fallback;
//!   * [`alloc_het`] — the Section 7.2 period-aware greedy allocation of
//!     heterogeneous processors to a fixed partition.
//! * **Heuristics for the NP-complete cases** (latency bound on homogeneous
//!   platforms, large-class-count heterogeneous platforms)
//!   * [`heur_l`] — Algorithm 3: intervals cut at the smallest communication
//!     costs (latency-oriented);
//!   * [`heur_p`] — Algorithm 4: work-balanced intervals by dynamic
//!     programming (period-oriented);
//!   * [`heuristic`] — the complete two-step heuristics used in the
//!     experiments (interval computation for every possible interval count,
//!     then allocation, then feasibility filtering).
//! * **Exact solvers for small instances**
//!   * [`exact::exhaustive`] — provably optimal homogeneous tri-criteria
//!     solver by exhaustive partition enumeration + Algo-Alloc;
//!   * [`exact::ilp`] — the Section 5.4 integer linear program, solved with
//!     the `rpo-lp` branch-and-bound (the CPLEX substitute);
//!   * [`exact::brute_force`] — reference brute-force over partitions *and*
//!     allocations for tiny instances (used to validate everything else).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algo1;
pub mod algo2;
pub mod algo_het;
pub mod algo_het_lat;
pub mod alloc;
pub mod alloc_het;
pub mod batch_kernel;
pub mod energy_aware;
pub mod exact;
pub mod het_kernel;
pub mod heur_l;
pub mod heur_p;
pub mod heuristic;
pub mod period_opt;

pub use algo1::{
    optimize_reliability_homogeneous, optimize_reliability_homogeneous_with_oracle,
    optimize_reliability_homogeneous_with_scratch, reliability_dp_with_kernel,
    reliability_dp_with_scratch, repair_reliability_dp_with_scratch, DpKernel, DpScratch,
    OptimalMapping, WarmPath, LANES,
};
pub use algo2::{
    optimize_reliability_with_period_bound, optimize_reliability_with_period_bound_with_oracle,
    optimize_with_period_bound_scratch,
};
pub use algo_het::{
    algo_het, algo_het_with_oracle, class_dp_with_kernel, exhaustive_het, greedy_het_with_oracle,
    het_dp_applicable, het_dp_applicable_platform, HetMethod, HetSolution,
};
pub use algo_het_lat::{
    algo_het_lat, algo_het_lat_with_oracle, algo_het_lat_with_scratch, exhaustive_het_lat,
    greedy_het_lat_with_oracle, HetLatFrontPoint, HetLatMethod, HetLatSolution, MAX_LAT_LABELS,
};
pub use alloc::{algo_alloc, algo_alloc_with_oracle, exhaustive_alloc};
pub use alloc_het::{algo_alloc_heterogeneous, algo_alloc_heterogeneous_with_oracle};
pub use batch_kernel::{solve_batch, solve_batch_with_inner, BatchInner, BatchLane, BatchScratch};
pub use energy_aware::{run_energy_aware_heuristic, EnergyAwareConfig, EnergyAwareSolution};
pub use heur_l::{heur_l_partition, heur_l_partition_with_oracle};
pub use heur_p::{heur_p_partition, heur_p_partition_with_oracle};
pub use heuristic::{
    run_heuristic, run_heuristic_with_oracle, HeuristicConfig, HeuristicSolution, IntervalHeuristic,
};
pub use period_opt::{
    minimize_period_batch, minimize_period_with_reliability_bound,
    minimize_period_with_reliability_bound_with_oracle,
    minimize_period_with_reliability_bound_with_scratch, repair_minimize_period_with_scratch,
    PeriodLane,
};

/// Errors reported by the algorithms of this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoError {
    /// The algorithm requires a homogeneous platform.
    HeterogeneousPlatform,
    /// There are fewer processors than intervals, so no allocation exists.
    NotEnoughProcessors {
        /// Number of intervals to cover.
        intervals: usize,
        /// Number of available processors.
        processors: usize,
    },
    /// No mapping satisfies the requested bounds.
    NoFeasibleMapping,
    /// A bound argument was not a finite positive number.
    InvalidBound(&'static str),
    /// The underlying model rejected a constructed mapping (internal error).
    Model(rpo_model::ModelError),
}

impl std::fmt::Display for AlgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoError::HeterogeneousPlatform => {
                write!(f, "this algorithm is only optimal on homogeneous platforms")
            }
            AlgoError::NotEnoughProcessors {
                intervals,
                processors,
            } => write!(
                f,
                "cannot allocate {intervals} intervals on only {processors} processors"
            ),
            AlgoError::NoFeasibleMapping => write!(f, "no mapping satisfies the bounds"),
            AlgoError::InvalidBound(name) => write!(f, "{name} must be a positive finite number"),
            AlgoError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for AlgoError {}

impl From<rpo_model::ModelError> for AlgoError {
    fn from(e: rpo_model::ModelError) -> Self {
        AlgoError::Model(e)
    }
}

/// Result alias for the algorithms of this crate.
pub type Result<T> = std::result::Result<T, AlgoError>;

/// Debug-checks that `oracle` was built for this `(chain, platform)` pair —
/// a mismatched oracle would silently produce wrong metrics, not panics.
#[inline]
pub(crate) fn debug_assert_oracle_matches(
    oracle: &rpo_model::IntervalOracle,
    chain: &rpo_model::TaskChain,
    platform: &rpo_model::Platform,
) {
    debug_assert!(
        oracle.len() == chain.len() && oracle.num_processors() == platform.num_processors(),
        "IntervalOracle was built for a different (chain, platform) instance"
    );
    let _ = (oracle, chain, platform);
}
