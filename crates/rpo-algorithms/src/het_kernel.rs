//! The chunked kernel of the heterogeneous class DP: the gather/compact/
//! sweep treatment of [`crate::algo1`]'s lane-chunked kernel, applied to
//! [`crate::algo_het`]'s budget-state recurrence.
//!
//! The scalar class DP walks, per `(boundary j, pattern q)` transition, the
//! pattern's `valid_predecessors` index list — a gather-scatter loop whose
//! indirect loads, per-candidate finiteness test and inline prune-and-record
//! branches defeat vectorization. Worse, its vectorizable axis is the state
//! list, which fragments into mixed-radix runs of length `m_0 + 1 − q_0`
//! (a handful of elements) — too short for SIMD. This kernel restructures
//! the recurrence around the **boundary axis** instead, in three phases:
//!
//! 1. **Gather** — per DP row `i` and pattern `q`, one call to
//!    [`IntervalOracle::fill_pattern_block_row`] fills a contiguous scratch
//!    row with the pattern's replicated reliabilities
//!    `1 − Π_c (1 − block_c(j, i−1))^{q_c}` for every start `j` from the
//!    pattern's own first admissible boundary (each pattern's `min_speed`
//!    bounds how long an interval it can fit in the period), using the same
//!    factored class-block expressions (and the same multiplication order)
//!    as the scalar DP's per-`j` power table, so every candidate value is
//!    **bit-identical** to the scalar kernel's. Boundaries cut by the input
//!    communication time are NaN-poisoned in place of the scalar kernel's
//!    per-`j` branch: a NaN candidate loses every max select.
//! 2. **Compact** — the DP table is stored **state-major** (`f[s][0..=n]`
//!    contiguous per budget state), and the valid predecessor states of
//!    each pattern are precomputed once per solve as dense `(start, len)`
//!    mixed-radix ranges ([`Pattern::runs`]). Together they turn every
//!    `(pattern, state)` transition into two contiguous same-length rows:
//!    the predecessor's boundary row and the pattern's gathered
//!    reliability row.
//! 3. **Sweep** — one value-only multiply-and-max *reduction* along the
//!    boundary axis per `(pattern, state)` pair ([`col_max_mul`]), in
//!    fixed-width `[f64; 8]` accumulator chunks (plain multiply-and-select
//!    bodies LLVM auto-vectorizes). The reduction length is the admissible
//!    boundary span — tens to hundreds of lanes-worth of work, not a
//!    run-length handful. No traceback bookkeeping, finiteness test, or
//!    prune branch survives in the hot loop: `−∞` predecessors lose every
//!    `cand > acc` select naturally (a `−∞ · 0.0 = NaN` candidate also
//!    loses), the max over the candidate multiset is order-independent, and
//!    the greedy-incumbent prune is applied as a post-hoc column filter — a
//!    state's final value is the max over its candidates whenever that max
//!    clears the cut, exactly the value the scalar per-candidate cut
//!    produces, and `−∞` otherwise.
//!
//! # Traceback
//!
//! The hot loop records no choices. After the sweep, the winning
//! `(j, pattern)` chain is recovered post hoc by re-scanning candidates in
//! the **scalar kernel's sweep order** (descending `j`, ascending pattern)
//! and taking the first bit-exact equality with the state's final value —
//! the same first-winner the scalar kernel's strict-improvement updates
//! record, so the recovered segments (and the lowered mapping) are
//! identical. The scalar path stays available behind the `scalar-kernel`
//! feature as the differential reference; `tests/het.rs` asserts the
//! equivalence on seeded random instances.

use rpo_model::{assignment_from_segments, IntervalOracle, Platform, TaskChain};

use crate::algo1::{OptimalMapping, LANES};
use crate::algo_het::{budget_states, class_strides, enumerate_patterns, validate_bound, Pattern};

/// The chunked class-level DP: same contract as the scalar
/// `algo_het::class_dp_scalar` (`None` = nothing feasible under the bound
/// survived the `incumbent` cut), same DP table bit for bit, same lowered
/// mapping.
pub(crate) fn class_dp_chunked(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: Option<f64>,
    incumbent: f64,
) -> Option<OptimalMapping> {
    let n = oracle.len();
    let view = oracle.class_view();
    let kc = view.len();
    let k_max = oracle.max_replication().min(oracle.num_processors());

    let strides = class_strides(view);
    let num_states = budget_states(view);
    let patterns = enumerate_patterns(view, k_max, &strides);
    let _span = rpo_obs::span!(
        "dp.het_kernel",
        rows = n,
        states = num_states,
        patterns = patterns.len()
    );

    let bound = validate_bound(period_bound).expect("caller validates the bound");
    // Any DP prefix strictly below the incumbent can never catch up (every
    // later factor is ≤ 1); a hair of slack keeps factored-vs-exact ulp
    // differences from over-pruning. Applied post hoc per column: a state
    // max below the cut becomes −∞, exactly as if every candidate had been
    // rejected by the scalar kernel's per-candidate test.
    let prune_below = incumbent * (1.0 - 1e-9);
    let work_prefix = oracle.work_prefix();
    let max_speed = view.max_speed();
    let in_ok: Vec<bool> = (0..n).map(|j| oracle.input_comm_time(j) <= bound).collect();

    let full = num_states - 1; // every budget digit at its maximum m_c
    let stride = n + 1; // boundary row length of the state-major table
    let mut f = vec![f64::NEG_INFINITY; num_states * stride];
    f[full * stride] = 1.0;

    // Per-pattern gathered reliability rows and per-pattern exact first
    // admissible boundaries, reused across DP rows.
    let mut prels: Vec<Vec<f64>> = vec![Vec::new(); patterns.len()];
    let mut pattern_lo = vec![0usize; patterns.len()];

    for i in 1..=n {
        if oracle.output_comm_time(i - 1) > bound {
            continue; // no interval ending at task i−1 fits the period
        }
        gather_rows(
            oracle,
            &patterns,
            work_prefix,
            bound,
            &in_ok,
            i,
            &mut prels,
            &mut pattern_lo,
        );
        for ((pattern, prow), &start) in patterns.iter().zip(&prels).zip(&pattern_lo) {
            if start >= i {
                continue; // the pattern admits no interval ending at i−1
            }
            for &(lo, len) in &pattern.runs {
                for s in lo as usize..lo as usize + len as usize {
                    let acc = col_max_mul(&f[s * stride + start..s * stride + i], prow);
                    let dst = &mut f[(s - pattern.offset) * stride + i];
                    if acc > *dst {
                        *dst = acc;
                    }
                }
            }
        }
        // Post-hoc prune filter: see the module docs for why this equals
        // the scalar kernel's per-candidate cut.
        for s in 0..num_states {
            let value = &mut f[s * stride + i];
            if *value < prune_below {
                *value = f64::NEG_INFINITY;
            }
        }
    }

    // Best over every remaining-budget state at the final boundary — the
    // same iteration (and tie resolution) as the scalar kernel's.
    let (best_state, best_rel) =
        (0..num_states)
            .map(|s| (s, f[s * stride + n]))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("totally ordered reliabilities")
            })?;
    if !best_rel.is_finite() {
        return None;
    }

    // Post-hoc traceback: re-scan candidates in the scalar sweep order,
    // first bit-exact equality wins (= the scalar kernel's recorded
    // strict-improvement winner), then lower deterministically.
    let mut segments: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    let mut digits = vec![0usize; kc];
    let (mut i, mut s) = (n, best_state);
    while i > 0 {
        let target = f[s * stride + i];
        let j_lo = row_start(work_prefix, i, bound, max_speed);
        gather_rows(
            oracle,
            &patterns,
            work_prefix,
            bound,
            &in_ok,
            i,
            &mut prels,
            &mut pattern_lo,
        );
        // A pattern can reach state s only when spending it does not push
        // any budget digit past its class size.
        for (c, digit) in digits.iter_mut().enumerate() {
            *digit = s / strides[c] % (view.class(c).members + 1);
        }
        let mut found = None;
        'scan: for j in (j_lo..i).rev() {
            if !in_ok[j] {
                continue;
            }
            for ((pattern, prow), &lo_p) in patterns.iter().zip(&prels).zip(&pattern_lo) {
                if j < lo_p {
                    continue; // the pattern admits no interval starting at j
                }
                if digits
                    .iter()
                    .enumerate()
                    .any(|(c, &b)| b + pattern.counts[c] > view.class(c).members)
                {
                    continue; // no predecessor state spends this pattern into s
                }
                if f[(s + pattern.offset) * stride + j] * prow[j - lo_p] == target {
                    found = Some((j, pattern));
                    break 'scan;
                }
            }
        }
        let (j, pattern) = found.expect("every reachable DP state has a winning candidate");
        segments.push((j, i - 1, pattern.counts.clone()));
        s += pattern.offset;
        i = j;
    }
    segments.reverse();
    let (partition, assignment) =
        assignment_from_segments(&segments, n).expect("DP segments form a valid partition");
    let mapping = assignment
        .lower(view, &partition, chain, platform)
        .expect("DP respects every class budget");
    // Report the exact Eq. 9 reliability of the lowered mapping (the DP
    // maximized over factored values that can differ by an ulp).
    let reliability = oracle.mapping_reliability(&mapping);
    Some(OptimalMapping {
        mapping,
        reliability,
    })
}

/// The gather phase of DP row `i`: per pattern, the exact first admissible
/// boundary (the conservative `row_start` estimate advanced with the scalar
/// kernel's own `work / min_speed > bound` test — monotone in `j`, so the
/// scan settles in a step or two) and the contiguous replicated-reliability
/// row from that boundary, with input-communication-cut boundaries
/// NaN-poisoned so they lose every select of the sweep reduction.
#[allow(clippy::too_many_arguments)]
fn gather_rows(
    oracle: &IntervalOracle,
    patterns: &[Pattern],
    work_prefix: &[f64],
    bound: f64,
    in_ok: &[bool],
    i: usize,
    prels: &mut [Vec<f64>],
    pattern_lo: &mut [usize],
) {
    for ((pattern, prow), lo_p) in patterns
        .iter()
        .zip(prels.iter_mut())
        .zip(pattern_lo.iter_mut())
    {
        let mut start = row_start(work_prefix, i, bound, pattern.min_speed);
        while start < i && (work_prefix[i] - work_prefix[start]) / pattern.min_speed > bound {
            start += 1;
        }
        *lo_p = start;
        if start >= i {
            continue;
        }
        oracle.fill_pattern_block_row(&pattern.counts, i - 1, start, prow);
        for (slot, j) in (start..i).enumerate() {
            if !in_ok[j] {
                prow[slot] = f64::NAN;
            }
        }
    }
}

/// Conservative first admissible interval start of DP row `i` for a class
/// of the given speed (the exact per-pattern start is settled by the
/// division test in [`gather_rows`]; the scalar kernel re-checks the same
/// division per candidate).
#[inline]
fn row_start(work_prefix: &[f64], i: usize, bound: f64, speed: f64) -> usize {
    if bound.is_finite() {
        work_prefix[..i]
            .partition_point(|&w| w < work_prefix[i] - bound * speed)
            .saturating_sub(1)
    } else {
        0
    }
}

/// The value-only multiply-and-max reduction along one dense boundary row:
/// `max_t (src[t] · rel[t])` in fixed-width `[f64; LANES]` accumulator
/// chunks (plain multiply-and-select bodies LLVM auto-vectorizes), with a
/// scalar tail for the remainder. `−∞` predecessors and `NaN`-poisoned
/// boundaries (and the `NaN` a `−∞ · 0.0` candidate produces) lose every
/// select, and the max over the candidate multiset is order-independent,
/// so the result is bit-identical to the scalar kernel's sequential
/// strict-improvement fold.
#[inline]
fn col_max_mul(src: &[f64], rel: &[f64]) -> f64 {
    debug_assert_eq!(src.len(), rel.len());
    let len = src.len();
    let mut acc = [f64::NEG_INFINITY; LANES];
    let mut t = 0;
    while t + LANES <= len {
        let values: [f64; LANES] = src[t..t + LANES].try_into().expect("lane-width window");
        let rels: [f64; LANES] = rel[t..t + LANES].try_into().expect("lane-width window");
        for lane in 0..LANES {
            let cand = values[lane] * rels[lane];
            if cand > acc[lane] {
                acc[lane] = cand;
            }
        }
        t += LANES;
    }
    let mut best = f64::NEG_INFINITY;
    for lane_max in acc {
        if lane_max > best {
            best = lane_max;
        }
    }
    while t < len {
        let cand = src[t] * rel[t];
        if cand > best {
            best = cand;
        }
        t += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_max_mul_matches_the_scalar_fold_across_widths() {
        for len in [0, 1, 3, LANES - 1, LANES, LANES + 1, 3 * LANES + 2] {
            let src: Vec<f64> = (0..len)
                .map(|t| {
                    if t % 3 == 0 {
                        f64::NEG_INFINITY
                    } else {
                        0.9 - 0.01 * t as f64
                    }
                })
                .collect();
            let rel: Vec<f64> = (0..len).map(|t| 0.75 + 0.002 * t as f64).collect();
            let mut reference = f64::NEG_INFINITY;
            for (&s, &r) in src.iter().zip(&rel) {
                let cand = s * r;
                if cand > reference {
                    reference = cand;
                }
            }
            assert_eq!(col_max_mul(&src, &rel), reference, "len {len}");
        }
    }

    #[test]
    fn poisoned_candidates_lose_every_select() {
        // −∞ predecessors against rel = 0.0 produce NaN candidates, and
        // NaN-poisoned boundaries against finite predecessors do too — both
        // must leave the reduction at −∞ (the scalar kernel skips them via
        // its finiteness test and its input-communication branch).
        let poisoned = [f64::NEG_INFINITY, 1.0, f64::NEG_INFINITY, 0.5];
        let rels = [0.0, f64::NAN, 0.9, f64::NAN];
        assert_eq!(col_max_mul(&poisoned, &rels), f64::NEG_INFINITY);
        let mixed = [f64::NEG_INFINITY, 0.8, 0.9];
        let rels = [0.9, 0.5, f64::NAN];
        assert_eq!(col_max_mul(&mixed, &rels), 0.4);
    }
}
