//! Precomputed partition profiles: the exhaustive exact solver factored for
//! bound sweeps.
//!
//! The experiments of Section 8 evaluate the optimal solution for *many*
//! period/latency bound pairs on the *same* instance. On a homogeneous
//! platform, the three quantities that decide feasibility and optimality of a
//! partition — its worst-case period requirement, its latency, and its
//! optimal reliability after Algo-Alloc — do not depend on the bounds, so
//! they can be computed once per partition and reused for every bound pair.
//! A sweep point then reduces to a linear scan over the `2^{n−1}` profiles.

use rpo_model::{IntervalOracle, IntervalPartition, Platform, TaskChain};
use serde::{Deserialize, Serialize};

use crate::algo1::OptimalMapping;
use crate::alloc::algo_alloc_plan_with_oracle;
use crate::exact::exhaustive::MAX_EXHAUSTIVE_TASKS;
use crate::{AlgoError, Result};

/// The bound-independent summary of one interval partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionProfile {
    /// Cut-point bitmask: bit `i` set means "cut after task `i`".
    pub cut_mask: u64,
    /// Worst-case period requirement of the partition (max over intervals of
    /// `max(o_in/b, W/s, o_out/b)`).
    pub period_requirement: f64,
    /// Worst-case latency of the partition (`Σ W/s + o_out/b`); identical to
    /// the expected latency on a homogeneous platform.
    pub latency: f64,
    /// Optimal reliability achievable for this partition (Algo-Alloc).
    pub reliability: f64,
    /// Number of intervals.
    pub num_intervals: usize,
}

/// All partition profiles of one (chain, homogeneous platform) instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSet {
    profiles: Vec<PartitionProfile>,
    chain_len: usize,
}

impl ProfileSet {
    /// Builds the profiles of every interval partition of `chain` on the
    /// homogeneous `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::HeterogeneousPlatform`] on a heterogeneous
    /// platform.
    ///
    /// # Panics
    ///
    /// Panics if the chain exceeds
    /// [`MAX_EXHAUSTIVE_TASKS`](crate::exact::exhaustive::MAX_EXHAUSTIVE_TASKS)
    /// tasks.
    pub fn build(chain: &TaskChain, platform: &Platform) -> Result<Self> {
        let oracle = IntervalOracle::new(chain, platform);
        Self::build_with_oracle(&oracle, platform)
    }

    /// [`ProfileSet::build`] against a prebuilt [`IntervalOracle`].
    ///
    /// # Errors
    ///
    /// Same as [`ProfileSet::build`].
    ///
    /// # Panics
    ///
    /// Panics if the chain exceeds
    /// [`MAX_EXHAUSTIVE_TASKS`](crate::exact::exhaustive::MAX_EXHAUSTIVE_TASKS)
    /// tasks.
    pub fn build_with_oracle(oracle: &IntervalOracle, platform: &Platform) -> Result<Self> {
        debug_assert!(
            oracle.num_processors() == platform.num_processors(),
            "IntervalOracle was built for a different platform"
        );
        if !oracle.is_homogeneous() {
            return Err(AlgoError::HeterogeneousPlatform);
        }
        let n = oracle.len();
        assert!(
            n <= MAX_EXHAUSTIVE_TASKS,
            "profile enumeration limited to {MAX_EXHAUSTIVE_TASKS} tasks, chain has {n}"
        );
        let p = oracle.num_processors();
        let k_max = oracle.max_replication();
        let speed = platform.speed(0);
        // One dense block table amortizes the per-interval `exp`s over all
        // 2^{n−1} partition profiles.
        let table = oracle.class_block_table(0);

        let mut profiles = Vec::with_capacity(1usize << (n - 1));
        for mask in 0u64..(1u64 << (n - 1)) {
            let cuts: Vec<usize> = (0..n - 1).filter(|&i| mask & (1 << i) != 0).collect();
            let partition =
                IntervalPartition::from_cut_points(&cuts, n).expect("masks yield valid partitions");
            if partition.len() > p {
                continue;
            }
            let period_requirement = partition
                .intervals()
                .iter()
                .map(|itv| oracle.period_requirement(itv.first, itv.last, speed))
                .fold(0.0, f64::max);
            let latency = partition
                .intervals()
                .iter()
                .map(|itv| oracle.latency_term(itv.first, itv.last, speed))
                .sum();
            let (_, reliability) =
                crate::exact::exhaustive::allocate_from_table(&table, &partition, p, k_max);
            profiles.push(PartitionProfile {
                cut_mask: mask,
                period_requirement,
                latency,
                reliability,
                num_intervals: partition.len(),
            });
        }
        Ok(ProfileSet {
            profiles,
            chain_len: n,
        })
    }

    /// Number of profiled partitions.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the set is empty (only possible before construction).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The raw profiles.
    pub fn profiles(&self) -> &[PartitionProfile] {
        &self.profiles
    }

    /// Optimal reliability under the given bounds, or `None` if no partition
    /// is feasible. Equivalent to (but much faster than re-running)
    /// [`crate::exact::optimal_homogeneous`].
    pub fn best_reliability_under(&self, period_bound: f64, latency_bound: f64) -> Option<f64> {
        self.profiles
            .iter()
            .filter(|p| p.period_requirement <= period_bound && p.latency <= latency_bound)
            .map(|p| p.reliability)
            .max_by(|a, b| a.partial_cmp(b).expect("finite reliabilities"))
    }

    /// Best profile under the given bounds, or `None` if no partition is
    /// feasible.
    pub fn best_profile_under(
        &self,
        period_bound: f64,
        latency_bound: f64,
    ) -> Option<&PartitionProfile> {
        self.profiles
            .iter()
            .filter(|p| p.period_requirement <= period_bound && p.latency <= latency_bound)
            .max_by(|a, b| {
                a.reliability
                    .partial_cmp(&b.reliability)
                    .expect("finite reliabilities")
            })
    }

    /// Reconstructs the optimal mapping under the given bounds.
    ///
    /// # Errors
    ///
    /// Returns [`AlgoError::NoFeasibleMapping`] if no partition is feasible.
    pub fn best_mapping_under(
        &self,
        chain: &TaskChain,
        platform: &Platform,
        period_bound: f64,
        latency_bound: f64,
    ) -> Result<OptimalMapping> {
        let profile = self
            .best_profile_under(period_bound, latency_bound)
            .ok_or(AlgoError::NoFeasibleMapping)?;
        let cuts: Vec<usize> = (0..self.chain_len - 1)
            .filter(|&i| profile.cut_mask & (1 << i) != 0)
            .collect();
        let partition = IntervalPartition::from_cut_points(&cuts, self.chain_len)
            .expect("stored masks are valid");
        let oracle = IntervalOracle::new(chain, platform);
        let plan = algo_alloc_plan_with_oracle(&oracle, &partition)?;
        let mapping = plan.into_mapping(&partition, chain, platform)?;
        Ok(OptimalMapping {
            mapping,
            reliability: profile.reliability,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_homogeneous;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[
            (30.0, 2.0),
            (10.0, 8.0),
            (25.0, 1.0),
            (40.0, 3.0),
            (15.0, 6.0),
        ])
        .unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn profile_count_is_all_partitions_fitting_on_the_platform() {
        let c = chain();
        let p = platform(10, 3);
        let set = ProfileSet::build(&c, &p).unwrap();
        assert_eq!(set.len(), 16); // 2^(5-1), every partition fits on 10 processors
        assert!(!set.is_empty());
        let small = ProfileSet::build(&c, &platform(2, 3)).unwrap();
        // Partitions with more than 2 intervals are dropped.
        assert_eq!(small.len(), 1 + 4); // single interval + the four 2-interval partitions
    }

    #[test]
    fn sweep_answers_match_the_exhaustive_solver() {
        let c = chain();
        let p = platform(6, 2);
        let set = ProfileSet::build(&c, &p).unwrap();
        for period in [35.0, 45.0, 70.0, 120.0, f64::INFINITY] {
            for latency in [120.0, 130.0, 150.0, f64::INFINITY] {
                let fast = set.best_reliability_under(period, latency);
                let slow = optimal_homogeneous(&c, &p, period, latency)
                    .ok()
                    .map(|s| s.reliability);
                match (fast, slow) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-13,
                        "bounds ({period}, {latency}): profiles {a} vs exhaustive {b}"
                    ),
                    other => panic!("feasibility mismatch under ({period}, {latency}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn reconstructed_mapping_matches_profile_and_bounds() {
        let c = chain();
        let p = platform(6, 2);
        let set = ProfileSet::build(&c, &p).unwrap();
        let sol = set.best_mapping_under(&c, &p, 70.0, 130.0).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!((eval.reliability - sol.reliability).abs() < 1e-13);
        assert!(eval.worst_case_period <= 70.0 + 1e-12);
        assert!(eval.worst_case_latency <= 130.0 + 1e-12);
    }

    #[test]
    fn infeasible_bounds_give_none() {
        let c = chain();
        let p = platform(6, 2);
        let set = ProfileSet::build(&c, &p).unwrap();
        assert_eq!(set.best_reliability_under(10.0, f64::INFINITY), None);
        assert_eq!(set.best_reliability_under(f64::INFINITY, 50.0), None);
        assert!(matches!(
            set.best_mapping_under(&c, &p, 10.0, 10.0),
            Err(AlgoError::NoFeasibleMapping)
        ));
    }

    #[test]
    fn heterogeneous_platform_rejected() {
        let c = chain();
        let het = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            ProfileSet::build(&c, &het).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
    }
}
