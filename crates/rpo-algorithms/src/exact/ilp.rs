//! The Section 5.4 integer linear program, solved with `rpo-lp`.
//!
//! Variables `a_{i,j,k} ∈ {0, 1}` select the interval `τ_i … τ_j` replicated
//! on `k` processors. Constraints enforce that every task belongs to exactly
//! one selected interval, that at most `p` processors are used, and that the
//! latency and period bounds hold; the objective maximizes the logarithm of
//! the mapping reliability (a sum over selected intervals).
//!
//! Two deliberate deviations from the paper's printed formulation, both needed
//! for consistency with the evaluation model of Eq. (5) and Eq. (9) (and with
//! the other solvers of this crate, against which the ILP is cross-checked):
//!
//! * the latency coefficient of an interval includes its outgoing
//!   communication time `o_j / b` (the printed constraint only sums the
//!   computation times);
//! * the reliability of an interval includes its boundary communication
//!   reliabilities (the printed objective only uses the computation term).

use rpo_lp::{ConstraintOp, IlpStatus, Objective, Problem};
use rpo_model::{Interval, IntervalOracle, MappedInterval, Mapping, Platform, TaskChain};

use crate::algo1::OptimalMapping;
use crate::{AlgoError, Result};

/// One candidate decision `a_{i,j,k}`: interval `first..=last` on `replicas`
/// processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpVariable {
    /// First task of the interval (0-based).
    pub first: usize,
    /// Last task of the interval (0-based, inclusive).
    pub last: usize,
    /// Number of replicas.
    pub replicas: usize,
}

/// The ILP together with the meaning of its columns.
#[derive(Debug, Clone)]
pub struct MappingIlp {
    /// The 0-1 program to hand to `rpo_lp::solve_ilp`.
    pub problem: Problem,
    /// The interval/replication decision encoded by each column.
    pub variables: Vec<IlpVariable>,
}

/// Builds the Section 5.4 ILP for a homogeneous platform and the given
/// worst-case period and latency bounds (`f64::INFINITY` disables a bound).
///
/// Variables whose interval violates the period bound on its own are simply
/// not generated (they could never be part of a feasible solution).
///
/// # Errors
///
/// Returns [`AlgoError::HeterogeneousPlatform`] or [`AlgoError::InvalidBound`]
/// on invalid inputs.
pub fn build_ilp(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> Result<MappingIlp> {
    let oracle = IntervalOracle::new(chain, platform);
    build_ilp_with_oracle(&oracle, platform, period_bound, latency_bound)
}

/// [`build_ilp`] against a prebuilt [`IntervalOracle`]: period admissibility,
/// per-column reliabilities and the latency coefficients are all O(1) oracle
/// reads (one dense block table per instance instead of three `exp`s per
/// column).
///
/// # Errors
///
/// Same as [`build_ilp`].
pub fn build_ilp_with_oracle(
    oracle: &IntervalOracle,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> Result<MappingIlp> {
    debug_assert!(
        oracle.num_processors() == platform.num_processors(),
        "IntervalOracle was built for a different platform"
    );
    if !oracle.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if period_bound <= 0.0 || period_bound.is_nan() {
        return Err(AlgoError::InvalidBound("period bound"));
    }
    if latency_bound <= 0.0 || latency_bound.is_nan() {
        return Err(AlgoError::InvalidBound("latency bound"));
    }

    let n = oracle.len();
    let p = oracle.num_processors();
    let k_max = oracle.max_replication().min(p);
    let speed = platform.speed(0);
    let blocks = oracle.class_block_table(0);

    // Generate the admissible columns.
    let mut variables = Vec::new();
    let mut objective = Vec::new();
    for first in 0..n {
        for last in first..n {
            if oracle.period_requirement(first, last, speed) > period_bound {
                continue;
            }
            for replicas in 1..=k_max {
                let reliability = blocks.replicated(first, last, replicas);
                variables.push(IlpVariable {
                    first,
                    last,
                    replicas,
                });
                objective.push(reliability.ln());
            }
        }
    }

    let mut problem = Problem::new(Objective::Maximize, objective);
    for column in 0..variables.len() {
        problem.set_binary(column);
    }

    // Each task belongs to exactly one selected interval.
    for task in 0..n {
        let terms: Vec<(usize, f64)> = variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.first <= task && task <= v.last)
            .map(|(column, _)| (column, 1.0))
            .collect();
        if terms.is_empty() {
            // Some task cannot be placed in any admissible interval: the
            // program is trivially infeasible; encode that explicitly.
            problem.add_sparse_constraint(&[], ConstraintOp::Ge, 1.0);
        } else {
            problem.add_sparse_constraint(&terms, ConstraintOp::Eq, 1.0);
        }
    }

    // At most p processors in total.
    let processor_terms: Vec<(usize, f64)> = variables
        .iter()
        .enumerate()
        .map(|(column, v)| (column, v.replicas as f64))
        .collect();
    problem.add_sparse_constraint(&processor_terms, ConstraintOp::Le, p as f64);

    // Latency bound: sum of computation and outgoing-communication times of
    // the selected intervals.
    if latency_bound.is_finite() {
        let latency_terms: Vec<(usize, f64)> = variables
            .iter()
            .enumerate()
            .map(|(column, v)| (column, oracle.latency_term(v.first, v.last, speed)))
            .collect();
        problem.add_sparse_constraint(&latency_terms, ConstraintOp::Le, latency_bound);
    }

    Ok(MappingIlp { problem, variables })
}

/// Solves the tri-criteria problem on a homogeneous platform through the
/// Section 5.4 ILP and reconstructs the selected mapping.
///
/// # Errors
///
/// * the input errors of [`build_ilp`];
/// * [`AlgoError::NoFeasibleMapping`] if the program is infeasible (or the
///   branch-and-bound node limit is hit before finding any solution).
pub fn optimal_by_ilp(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    let oracle = IntervalOracle::new(chain, platform);
    optimal_by_ilp_with_oracle(&oracle, chain, platform, period_bound, latency_bound)
}

/// [`optimal_by_ilp`] against a prebuilt [`IntervalOracle`].
///
/// # Errors
///
/// Same as [`optimal_by_ilp`].
pub fn optimal_by_ilp_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    crate::debug_assert_oracle_matches(oracle, chain, platform);
    let ilp = build_ilp_with_oracle(oracle, platform, period_bound, latency_bound)?;
    let solution = rpo_lp::solve_ilp(&ilp.problem);
    match solution.status {
        IlpStatus::Optimal | IlpStatus::NodeLimit if !solution.x.is_empty() => {}
        _ => return Err(AlgoError::NoFeasibleMapping),
    }

    // Decode the selected columns into a mapping.
    let mut selected: Vec<IlpVariable> = ilp
        .variables
        .iter()
        .zip(&solution.x)
        .filter(|(_, &value)| value > 0.5)
        .map(|(v, _)| *v)
        .collect();
    selected.sort_by_key(|v| v.first);

    let mut next_processor = 0;
    let mapped = selected
        .iter()
        .map(|v| {
            let processors: Vec<usize> = (next_processor..next_processor + v.replicas).collect();
            next_processor += v.replicas;
            MappedInterval::new(
                Interval {
                    first: v.first,
                    last: v.last,
                },
                processors,
            )
        })
        .collect();
    let mapping = Mapping::new(mapped, chain, platform)?;
    let reliability = oracle.mapping_reliability(&mapping);
    Ok(OptimalMapping {
        mapping,
        reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_homogeneous;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn ilp_matches_exhaustive_solver() {
        let c = chain();
        let p = platform(5, 2);
        for (period, latency) in [
            (f64::INFINITY, f64::INFINITY),
            (70.0, f64::INFINITY),
            (f64::INFINITY, 115.0),
            (45.0, 120.0),
        ] {
            let ilp = optimal_by_ilp(&c, &p, period, latency).unwrap();
            let reference = optimal_homogeneous(&c, &p, period, latency).unwrap();
            assert!(
                (ilp.reliability - reference.reliability).abs() < 1e-10,
                "bounds ({period}, {latency}): ilp {} vs exhaustive {}",
                ilp.reliability,
                reference.reliability
            );
        }
    }

    #[test]
    fn ilp_mapping_respects_bounds() {
        let c = chain();
        let p = platform(6, 3);
        let sol = optimal_by_ilp(&c, &p, 45.0, 120.0).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!(eval.worst_case_period <= 45.0 + 1e-9);
        assert!(eval.worst_case_latency <= 120.0 + 1e-9);
    }

    #[test]
    fn infeasible_period_bound_detected() {
        let c = chain();
        let p = platform(6, 3);
        assert_eq!(
            optimal_by_ilp(&c, &p, 39.0, f64::INFINITY).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn infeasible_latency_bound_detected() {
        let c = chain();
        let p = platform(6, 3);
        assert_eq!(
            optimal_by_ilp(&c, &p, f64::INFINITY, 100.0).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn variable_generation_prunes_period_violations() {
        let c = chain();
        let p = platform(6, 3);
        let all = build_ilp(&c, &p, f64::INFINITY, f64::INFINITY).unwrap();
        let pruned = build_ilp(&c, &p, 45.0, f64::INFINITY).unwrap();
        assert!(pruned.variables.len() < all.variables.len());
        assert!(pruned
            .variables
            .iter()
            .all(|v| c.interval_work(v.first, v.last) <= 45.0));
    }

    #[test]
    fn heterogeneous_platform_rejected() {
        let c = chain();
        let het = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            build_ilp(&c, &het, 100.0, 100.0).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
    }
}
