//! Exact solvers for the tri-criteria problem on homogeneous platforms.
//!
//! The (reliability, latency) problem is NP-complete even on homogeneous
//! platforms (Theorem 3), so exact solving is only practical on small
//! instances. Three exact solvers are provided, in decreasing order of speed:
//!
//! * [`exhaustive::optimal_homogeneous`] enumerates the `2^{n−1}` interval
//!   partitions, filters them by the period and latency bounds (which do not
//!   depend on the processor assignment on a homogeneous platform) and
//!   allocates processors optimally with Algo-Alloc — certified optimal and
//!   fast enough for the paper's instance sizes (`n = 15`);
//! * [`ilp::optimal_by_ilp`] builds the Section 5.4 integer linear program and
//!   solves it with the `rpo-lp` branch-and-bound (the CPLEX substitute);
//! * [`brute_force`] additionally enumerates the replica-count vectors and is
//!   used only to validate the other two on tiny instances.

pub mod exhaustive;
pub mod ilp;
pub mod profiles;

pub use exhaustive::{brute_force, optimal_homogeneous, optimal_homogeneous_with_oracle};
pub use ilp::{build_ilp, build_ilp_with_oracle, optimal_by_ilp, optimal_by_ilp_with_oracle};
pub use profiles::{PartitionProfile, ProfileSet};
