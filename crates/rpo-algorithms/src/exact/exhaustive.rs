//! Exhaustive exact solver for homogeneous platforms, with all interval
//! metrics served by the [`IntervalOracle`].

use rpo_model::oracle::replicate_block;
use rpo_model::{BlockReliabilityTable, IntervalOracle, IntervalPartition, Platform, TaskChain};

use crate::algo1::OptimalMapping;
use crate::alloc::{greedy_replicas, AllocationPlan};
use crate::{debug_assert_oracle_matches, AlgoError, Result};

/// Chains longer than this are rejected (the enumeration is `O(2^{n−1})`).
pub const MAX_EXHAUSTIVE_TASKS: usize = 26;

fn check_inputs(chain: &TaskChain, platform: &Platform, period: f64, latency: f64) -> Result<()> {
    if !platform.is_homogeneous() {
        return Err(AlgoError::HeterogeneousPlatform);
    }
    if period <= 0.0 || period.is_nan() {
        return Err(AlgoError::InvalidBound("period bound"));
    }
    if latency <= 0.0 || latency.is_nan() {
        return Err(AlgoError::InvalidBound("latency bound"));
    }
    assert!(
        chain.len() <= MAX_EXHAUSTIVE_TASKS,
        "exhaustive solver limited to {MAX_EXHAUSTIVE_TASKS} tasks, chain has {}",
        chain.len()
    );
    Ok(())
}

/// Iterates over every interval partition of the chain (as cut-point masks).
fn partitions(chain: &TaskChain) -> impl Iterator<Item = IntervalPartition> + '_ {
    let n = chain.len();
    (0u64..(1u64 << (n - 1))).map(move |mask| {
        let cuts: Vec<usize> = (0..n - 1).filter(|&i| mask & (1 << i) != 0).collect();
        IntervalPartition::from_cut_points(&cuts, n).expect("masks yield valid partitions")
    })
}

/// Whether a partition respects the period and latency bounds on a homogeneous
/// platform (these do not depend on the processor assignment).
fn partition_feasible(
    oracle: &IntervalOracle,
    speed: f64,
    partition: &IntervalPartition,
    period_bound: f64,
    latency_bound: f64,
) -> bool {
    let period_ok = partition
        .intervals()
        .iter()
        .all(|itv| oracle.period_requirement(itv.first, itv.last, speed) <= period_bound);
    if !period_ok {
        return false;
    }
    let latency: f64 = partition
        .intervals()
        .iter()
        .map(|itv| oracle.latency_term(itv.first, itv.last, speed))
        .sum();
    latency <= latency_bound
}

/// Certified-optimal solver for the tri-criteria problem on homogeneous
/// platforms: maximize reliability subject to worst-case period and latency
/// bounds (use `f64::INFINITY` for an absent bound).
///
/// Every interval partition is enumerated; feasible ones receive their optimal
/// processor allocation from Algo-Alloc (Theorem 4), and the most reliable
/// result is returned.
///
/// # Errors
///
/// * [`AlgoError::HeterogeneousPlatform`], [`AlgoError::InvalidBound`] on bad
///   inputs;
/// * [`AlgoError::NoFeasibleMapping`] if no partition meets the bounds.
///
/// # Panics
///
/// Panics if the chain exceeds [`MAX_EXHAUSTIVE_TASKS`] tasks.
pub fn optimal_homogeneous(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    let oracle = IntervalOracle::new(chain, platform);
    optimal_homogeneous_with_oracle(&oracle, chain, platform, period_bound, latency_bound)
}

/// [`optimal_homogeneous`] against a prebuilt [`IntervalOracle`].
///
/// # Errors
///
/// Same as [`optimal_homogeneous`].
///
/// # Panics
///
/// Panics if the chain exceeds [`MAX_EXHAUSTIVE_TASKS`] tasks.
pub fn optimal_homogeneous_with_oracle(
    oracle: &IntervalOracle,
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    debug_assert_oracle_matches(oracle, chain, platform);
    check_inputs(chain, platform, period_bound, latency_bound)?;
    let p = oracle.num_processors();
    let k_max = oracle.max_replication();
    let speed = platform.speed(0);
    // One dense block table amortizes the per-interval `exp`s over all
    // 2^{n−1} partitions: the sweep below is multiplication-only.
    let table = oracle.class_block_table(0);

    let mut best: Option<OptimalMapping> = None;
    for partition in partitions(chain) {
        if partition.len() > p
            || !partition_feasible(oracle, speed, &partition, period_bound, latency_bound)
        {
            continue;
        }
        let (replicas, reliability) = allocate_from_table(&table, &partition, p, k_max);
        if best.as_ref().is_none_or(|b| reliability > b.reliability) {
            let mapping = AllocationPlan { replicas }.into_mapping(&partition, chain, platform)?;
            best = Some(OptimalMapping {
                mapping,
                reliability,
            });
        }
    }
    best.ok_or(AlgoError::NoFeasibleMapping)
}

/// Algo-Alloc + reliability product for one partition, reading every block
/// reliability from the precomputed dense table. Requires
/// `partition.len() ≤ p`.
pub(crate) fn allocate_from_table(
    table: &BlockReliabilityTable,
    partition: &IntervalPartition,
    p: usize,
    k_max: usize,
) -> (Vec<usize>, f64) {
    let blocks: Vec<f64> = partition
        .intervals()
        .iter()
        .map(|itv| table.get(itv.first, itv.last))
        .collect();
    let replicas = greedy_replicas(&blocks, p, k_max);
    let reliability = blocks
        .iter()
        .zip(&replicas)
        .map(|(&block, &q)| replicate_block(block, q))
        .product();
    (replicas, reliability)
}

/// Reference brute force: enumerates partitions **and** replica-count vectors
/// (instead of relying on Algo-Alloc), evaluates each candidate mapping with
/// the full evaluator and returns the most reliable one meeting the bounds.
/// Exponential in both `n` and the number of intervals; only for validating
/// the other solvers on tiny instances.
pub fn brute_force(
    chain: &TaskChain,
    platform: &Platform,
    period_bound: f64,
    latency_bound: f64,
) -> Result<OptimalMapping> {
    check_inputs(chain, platform, period_bound, latency_bound)?;
    let oracle = IntervalOracle::new(chain, platform);
    let p = platform.num_processors();
    let k_max = platform.max_replication();

    let mut best: Option<OptimalMapping> = None;
    for partition in partitions(chain) {
        let m = partition.len();
        if m > p {
            continue;
        }
        // Enumerate replica counts in {1..K}^m with sum <= p.
        let mut counts = vec![1usize; m];
        'vectors: loop {
            if counts.iter().sum::<usize>() <= p {
                let plan = crate::alloc::AllocationPlan {
                    replicas: counts.clone(),
                };
                let mapping = plan.into_mapping(&partition, chain, platform)?;
                let eval = oracle.evaluate(&mapping);
                if eval.worst_case_period <= period_bound
                    && eval.worst_case_latency <= latency_bound
                    && best
                        .as_ref()
                        .is_none_or(|b| eval.reliability > b.reliability)
                {
                    best = Some(OptimalMapping {
                        mapping,
                        reliability: eval.reliability,
                    });
                }
            }
            let mut idx = 0;
            loop {
                if idx == m {
                    break 'vectors;
                }
                if counts[idx] < k_max {
                    counts[idx] += 1;
                    break;
                }
                counts[idx] = 1;
                idx += 1;
            }
        }
    }
    best.ok_or(AlgoError::NoFeasibleMapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpo_model::{MappingEvaluation, PlatformBuilder};

    fn chain() -> TaskChain {
        TaskChain::from_pairs(&[(30.0, 2.0), (10.0, 8.0), (25.0, 1.0), (40.0, 3.0)]).unwrap()
    }

    fn platform(p: usize, k: usize) -> Platform {
        PlatformBuilder::new()
            .identical_processors(p, 1.0, 1e-3)
            .bandwidth(1.0)
            .link_failure_rate(1e-4)
            .max_replication(k)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_brute_force_with_and_without_bounds() {
        let c = chain();
        let p = platform(5, 2);
        for (period, latency) in [
            (f64::INFINITY, f64::INFINITY),
            (70.0, f64::INFINITY),
            (f64::INFINITY, 115.0),
            (45.0, 120.0),
        ] {
            let fast = optimal_homogeneous(&c, &p, period, latency).unwrap();
            let slow = brute_force(&c, &p, period, latency).unwrap();
            assert!(
                (fast.reliability - slow.reliability).abs() < 1e-13,
                "bounds ({period}, {latency}): {} vs {}",
                fast.reliability,
                slow.reliability
            );
        }
    }

    #[test]
    fn unconstrained_matches_algorithm_1() {
        let c = chain();
        let p = platform(6, 3);
        let exhaustive = optimal_homogeneous(&c, &p, f64::INFINITY, f64::INFINITY).unwrap();
        let dp = crate::optimize_reliability_homogeneous(&c, &p).unwrap();
        assert!((exhaustive.reliability - dp.reliability).abs() < 1e-13);
    }

    #[test]
    fn period_only_matches_algorithm_2() {
        let c = chain();
        let p = platform(6, 3);
        for period in [40.0, 50.0, 70.0, 110.0] {
            let exhaustive = optimal_homogeneous(&c, &p, period, f64::INFINITY).unwrap();
            let dp = crate::optimize_reliability_with_period_bound(&c, &p, period).unwrap();
            assert!(
                (exhaustive.reliability - dp.reliability).abs() < 1e-13,
                "period {period}: {} vs {}",
                exhaustive.reliability,
                dp.reliability
            );
        }
    }

    #[test]
    fn returned_mapping_respects_bounds() {
        let c = chain();
        let p = platform(6, 3);
        let sol = optimal_homogeneous(&c, &p, 45.0, 120.0).unwrap();
        let eval = MappingEvaluation::evaluate(&c, &p, &sol.mapping);
        assert!(eval.worst_case_period <= 45.0 + 1e-12);
        assert!(eval.worst_case_latency <= 120.0 + 1e-12);
        assert!((eval.reliability - sol.reliability).abs() < 1e-13);
    }

    #[test]
    fn infeasible_bounds_are_reported() {
        let c = chain();
        let p = platform(6, 3);
        assert_eq!(
            optimal_homogeneous(&c, &p, 39.0, f64::INFINITY).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
        assert_eq!(
            optimal_homogeneous(&c, &p, f64::INFINITY, 100.0).unwrap_err(),
            AlgoError::NoFeasibleMapping
        );
    }

    #[test]
    fn latency_bound_trades_reliability() {
        let c = chain();
        let p = platform(8, 2);
        let loose = optimal_homogeneous(&c, &p, f64::INFINITY, f64::INFINITY).unwrap();
        // Tight latency forbids splitting (every cut adds communication time),
        // so fewer intervals and fewer total replicas are available.
        let tight = optimal_homogeneous(&c, &p, f64::INFINITY, 105.5).unwrap();
        assert!(tight.mapping.num_intervals() <= loose.mapping.num_intervals());
        assert!(tight.reliability <= loose.reliability + 1e-15);
    }

    #[test]
    fn bad_inputs_rejected() {
        let c = chain();
        let het = PlatformBuilder::new()
            .processor(1.0, 1e-3)
            .processor(2.0, 1e-3)
            .max_replication(2)
            .build()
            .unwrap();
        assert_eq!(
            optimal_homogeneous(&c, &het, 10.0, 10.0).unwrap_err(),
            AlgoError::HeterogeneousPlatform
        );
        let hom = platform(4, 2);
        assert_eq!(
            optimal_homogeneous(&c, &hom, 0.0, 10.0).unwrap_err(),
            AlgoError::InvalidBound("period bound")
        );
        assert_eq!(
            optimal_homogeneous(&c, &hom, 10.0, f64::NAN).unwrap_err(),
            AlgoError::InvalidBound("latency bound")
        );
    }
}
